//! Incomplete-fix detection (the paper's §6 observation that refcount
//! fixes routinely patch one error path or one call site and leave the
//! sibling sites buggy).
//!
//! The crate owns the *diff-side* half of `refminer fixcheck`:
//!
//! * a minimal unified-diff model ([`FixDiff`], [`FileDiff`],
//!   [`Hunk`]) with a parser that accepts standard `diff -u` /
//!   `diff -ru` output, including `a/`/`b/` and directory path
//!   prefixes;
//! * [`FileDiff::reverse_apply`], which reconstructs the *pre-fix*
//!   text of a file from its post-fix text so both sides of the fix
//!   can be audited without needing the old tree on disk;
//! * [`render_file_diff`], a matching renderer (used by the evaluator
//!   and the smoke script to derive a fix diff from two trees) that
//!   round-trips through the parser and `reverse_apply`;
//! * [`infer_intents`], which reads the changed lines through the
//!   refcount-API knowledge base to name the acquire/release pair the
//!   fix is about; and
//! * [`check_incomplete`], which abstracts each fixed finding into a
//!   [`BugTemplate`] and sweeps the post-fix findings for clone sites
//!   the fix left behind.
//!
//! Tree scanning, auditing and rendering stay in `refminer` (core);
//! this crate deliberately depends only on the checker/sweep layers so
//! core can orchestrate it without a dependency cycle.

use refminer_checkers::Finding;
use refminer_json::{obj, ToJson, Value};
use refminer_rcapi::{ApiKb, RcDir};
use refminer_sweep::{abstract_template, sweep, BugTemplate, CloneMatch};

/// One `@@` hunk: a contiguous run of context/removed/added lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hunk {
    /// 1-based first line of the hunk in the old file (0 when the old
    /// range is empty, per unified-diff convention).
    pub old_start: usize,
    /// Number of old-file lines the hunk covers.
    pub old_len: usize,
    /// 1-based first line of the hunk in the new file (0 when empty).
    pub new_start: usize,
    /// Number of new-file lines the hunk covers.
    pub new_len: usize,
    /// Hunk body: `(' ', line)` context, `('-', line)` removed,
    /// `('+', line)` added.
    pub lines: Vec<(char, String)>,
}

/// All hunks touching one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileDiff {
    /// Old-side path with `a/` stripped; `/dev/null` for added files.
    pub old_path: String,
    /// New-side path with `b/` stripped; `/dev/null` for deleted files.
    pub new_path: String,
    /// Hunks in file order.
    pub hunks: Vec<Hunk>,
}

/// A parsed fix diff: one entry per touched file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FixDiff {
    /// Per-file diffs in input order.
    pub files: Vec<FileDiff>,
}

impl FileDiff {
    /// The path to look the file up under: the new-side path unless
    /// the file was deleted by the fix.
    pub fn path(&self) -> &str {
        if self.new_path == "/dev/null" {
            &self.old_path
        } else {
            &self.new_path
        }
    }

    /// True when the fix created this file (it has no pre-fix text).
    pub fn is_added(&self) -> bool {
        self.old_path == "/dev/null"
    }

    /// True when the fix deleted this file.
    pub fn is_deleted(&self) -> bool {
        self.new_path == "/dev/null"
    }

    /// Reconstructs the pre-fix text of the file from its post-fix
    /// text by applying the hunks in reverse: context and added lines
    /// are verified against `post`, removed lines are re-inserted.
    ///
    /// Errors when the diff does not match `post` (wrong tree, stale
    /// diff), naming the first mismatching line.
    pub fn reverse_apply(&self, post: &str) -> Result<String, String> {
        let post_lines: Vec<&str> = post.lines().collect();
        let mut out: Vec<String> = Vec::new();
        let mut cursor = 0usize; // index into post_lines
        for hunk in &self.hunks {
            // Unified-diff convention: a zero-length range's start is
            // the line *before* the hunk, so the 0-based insertion
            // index equals the start; non-empty ranges are 1-based.
            let at = if hunk.new_len == 0 {
                hunk.new_start
            } else {
                hunk.new_start.saturating_sub(1)
            };
            if at < cursor || at > post_lines.len() {
                return Err(format!(
                    "hunk @@ +{},{} is out of order or past the end of {}",
                    hunk.new_start,
                    hunk.new_len,
                    self.path()
                ));
            }
            out.extend(post_lines[cursor..at].iter().map(|s| s.to_string()));
            cursor = at;
            for (tag, text) in &hunk.lines {
                match tag {
                    ' ' | '+' => {
                        let got = post_lines.get(cursor).copied().unwrap_or_default();
                        if got != text {
                            return Err(format!(
                                "diff does not apply to {}: line {} is {:?}, diff expects {:?}",
                                self.path(),
                                cursor + 1,
                                got,
                                text
                            ));
                        }
                        if *tag == ' ' {
                            out.push(text.clone());
                        }
                        cursor += 1;
                    }
                    '-' => out.push(text.clone()),
                    other => {
                        return Err(format!("unexpected hunk line tag {other:?}"));
                    }
                }
            }
        }
        out.extend(post_lines[cursor..].iter().map(|s| s.to_string()));
        let mut text = out.join("\n");
        if post.ends_with('\n') || (post.is_empty() && !text.is_empty()) {
            text.push('\n');
        }
        Ok(text)
    }
}

/// Strips the conventional `a/` / `b/` prefix from a diff path.
fn strip_ab(path: &str) -> &str {
    path.strip_prefix("a/")
        .or_else(|| path.strip_prefix("b/"))
        .unwrap_or(path)
}

/// Takes the path out of a `---` / `+++` header line: everything up to
/// the first tab (GNU diff appends a timestamp after one).
fn header_path(rest: &str) -> String {
    let trimmed = rest.trim_start();
    let end = trimmed.find('\t').unwrap_or(trimmed.len());
    strip_ab(trimmed[..end].trim_end()).to_string()
}

/// Parses an `@@ -a,b +c,d @@` range header. The `,len` parts default
/// to 1 when omitted, per the format.
fn parse_hunk_header(line: &str) -> Option<(usize, usize, usize, usize)> {
    let body = line.strip_prefix("@@ ")?;
    let end = body.find(" @@")?;
    let mut parts = body[..end].split(' ');
    let old = parts.next()?.strip_prefix('-')?;
    let new = parts.next()?.strip_prefix('+')?;
    let parse_range = |s: &str| -> Option<(usize, usize)> {
        match s.split_once(',') {
            Some((a, b)) => Some((a.parse().ok()?, b.parse().ok()?)),
            None => Some((s.parse().ok()?, 1)),
        }
    };
    let (os, ol) = parse_range(old)?;
    let (ns, nl) = parse_range(new)?;
    Some((os, ol, ns, nl))
}

/// Parses unified-diff text into a [`FixDiff`].
///
/// Accepts plain `diff -u` output, recursive `diff -ru` output
/// (`diff`/`Only in` noise lines are skipped), and git-style diffs
/// with `a/`/`b/` prefixes. Hunk bodies are consumed by the counts in
/// the `@@` header, so removed lines that themselves start with `---`
/// cannot be mistaken for a new file header.
///
/// Errors when the text contains no hunks at all, or a hunk body is
/// truncated or malformed.
pub fn parse_diff(text: &str) -> Result<FixDiff, String> {
    let mut files: Vec<FileDiff> = Vec::new();
    let mut lines = text.lines().peekable();
    while let Some(line) = lines.next() {
        let Some(old_rest) = line.strip_prefix("--- ") else {
            // `diff -ru file file` separators, `Only in`, index lines,
            // commit-message prose before the first header: all noise.
            continue;
        };
        let Some(new_line) = lines.peek() else {
            return Err("diff ends after a `---` header".to_string());
        };
        let Some(new_rest) = new_line.strip_prefix("+++ ") else {
            continue; // a `---` that is not a file header (e.g. prose)
        };
        let file = FileDiff {
            old_path: header_path(old_rest),
            new_path: header_path(new_rest),
            hunks: Vec::new(),
        };
        lines.next(); // consume the `+++` line
        let mut file = file;
        while let Some(peeked) = lines.peek() {
            if !peeked.starts_with("@@ ") {
                break;
            }
            let header = lines.next().unwrap();
            let Some((os, ol, ns, nl)) = parse_hunk_header(header) else {
                return Err(format!("malformed hunk header: {header}"));
            };
            let mut hunk = Hunk {
                old_start: os,
                old_len: ol,
                new_start: ns,
                new_len: nl,
                lines: Vec::new(),
            };
            let (mut old_left, mut new_left) = (ol, nl);
            while old_left > 0 || new_left > 0 {
                let Some(body) = lines.next() else {
                    return Err(format!(
                        "truncated hunk in {}: {} old / {} new lines missing",
                        file.path(),
                        old_left,
                        new_left
                    ));
                };
                if body.starts_with('\\') {
                    continue; // "\ No newline at end of file"
                }
                let (tag, text) = match body.chars().next() {
                    Some(' ') | None => (' ', body.get(1..).unwrap_or("")),
                    Some('-') => ('-', &body[1..]),
                    Some('+') => ('+', &body[1..]),
                    Some(other) => {
                        return Err(format!(
                            "unexpected line in hunk of {}: starts with {other:?}",
                            file.path()
                        ));
                    }
                };
                match tag {
                    ' ' => {
                        if old_left == 0 || new_left == 0 {
                            return Err(format!(
                                "hunk in {} has more lines than its header claims",
                                file.path()
                            ));
                        }
                        old_left -= 1;
                        new_left -= 1;
                    }
                    '-' => {
                        if old_left == 0 {
                            return Err(format!(
                                "hunk in {} removes more lines than its header claims",
                                file.path()
                            ));
                        }
                        old_left -= 1;
                    }
                    _ => {
                        if new_left == 0 {
                            return Err(format!(
                                "hunk in {} adds more lines than its header claims",
                                file.path()
                            ));
                        }
                        new_left -= 1;
                    }
                }
                hunk.lines.push((tag, text.to_string()));
            }
            // Trailing "\ No newline" marker after the last body line.
            if lines.peek().is_some_and(|l| l.starts_with('\\')) {
                lines.next();
            }
            file.hunks.push(hunk);
        }
        if file.hunks.is_empty() {
            return Err(format!("no hunks after header for {}", file.path()));
        }
        files.push(file);
    }
    if files.is_empty() {
        return Err("not a unified diff: no `---`/`+++` file headers found".to_string());
    }
    Ok(FixDiff { files })
}

/// Renders the difference between `old` and `new` as a single-hunk
/// unified diff (no context narrowing beyond the common prefix and
/// suffix), or `None` when the texts are identical. The output parses
/// with [`parse_diff`] and reverse-applies back to `old`.
pub fn render_file_diff(path: &str, old: &str, new: &str) -> Option<String> {
    if old == new {
        return None;
    }
    let old_lines: Vec<&str> = old.lines().collect();
    let new_lines: Vec<&str> = new.lines().collect();
    let mut prefix = 0;
    while prefix < old_lines.len()
        && prefix < new_lines.len()
        && old_lines[prefix] == new_lines[prefix]
    {
        prefix += 1;
    }
    let mut suffix = 0;
    while suffix < old_lines.len() - prefix
        && suffix < new_lines.len() - prefix
        && old_lines[old_lines.len() - 1 - suffix] == new_lines[new_lines.len() - 1 - suffix]
    {
        suffix += 1;
    }
    let old_mid = &old_lines[prefix..old_lines.len() - suffix];
    let new_mid = &new_lines[prefix..new_lines.len() - suffix];
    let range = |len: usize| if len == 0 { prefix } else { prefix + 1 };
    let mut out = String::new();
    out.push_str(&format!("--- a/{path}\n+++ b/{path}\n"));
    out.push_str(&format!(
        "@@ -{},{} +{},{} @@\n",
        range(old_mid.len()),
        old_mid.len(),
        range(new_mid.len()),
        new_mid.len()
    ));
    for line in old_mid {
        out.push_str(&format!("-{line}\n"));
    }
    for line in new_mid {
        out.push_str(&format!("+{line}\n"));
    }
    Some(out)
}

/// True when a diff path and a project-relative unit path name the
/// same file: equal, or one is a `/`-boundary suffix of the other
/// (so `rev01/drivers/x.c` from `diff -ru` matches the unit
/// `drivers/x.c`, and a bare `x.c` diff matches too).
pub fn paths_match(diff_path: &str, unit_path: &str) -> bool {
    if diff_path == unit_path {
        return true;
    }
    let suffix_of = |longer: &str, shorter: &str| {
        longer.ends_with(shorter)
            && longer.as_bytes().get(longer.len() - shorter.len() - 1) == Some(&b'/')
    };
    suffix_of(diff_path, unit_path) || suffix_of(unit_path, diff_path)
}

/// What the fix is about, read straight from its changed lines: a
/// refcount API named on a `+`/`-` line, with the acquire APIs the
/// knowledge base pairs it with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixIntent {
    /// Diff path of the file the call appears in.
    pub file: String,
    /// The refcount API the changed line calls.
    pub api: String,
    /// Its direction in the knowledge base.
    pub dir: RcDir,
    /// Acquire APIs this intent covers: the API itself when it is an
    /// increment, otherwise every increment that accepts it as the
    /// paired release.
    pub acquires: Vec<String>,
}

impl ToJson for FixIntent {
    fn to_json(&self) -> Value {
        obj([
            ("file", self.file.to_json()),
            ("api", self.api.to_json()),
            (
                "dir",
                Value::Str(
                    match self.dir {
                        RcDir::Inc => "inc",
                        RcDir::Dec => "dec",
                    }
                    .to_string(),
                ),
            ),
            ("acquires", self.acquires.to_json()),
        ])
    }
}

/// Maximal identifier tokens that are followed by `(` — i.e. call
/// sites — on one source line.
fn called_names(line: &str) -> Vec<&str> {
    let bytes = line.as_bytes();
    let mut names = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let mut j = i;
            while j < bytes.len() && bytes[j] == b' ' {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'(' {
                names.push(&line[start..i]);
            }
        } else {
            i += 1;
        }
    }
    names
}

/// Infers which acquire/release pairs a fix diff is about by scanning
/// its added and removed lines for refcount-API calls. Deduplicated
/// by `(file, api)`, in diff order.
pub fn infer_intents(diff: &FixDiff, kb: &ApiKb) -> Vec<FixIntent> {
    let mut intents: Vec<FixIntent> = Vec::new();
    for file in &diff.files {
        for hunk in &file.hunks {
            for (tag, text) in &hunk.lines {
                if *tag == ' ' {
                    continue;
                }
                for name in called_names(text) {
                    let Some(dir) = kb.direction_of(name) else {
                        continue;
                    };
                    if intents
                        .iter()
                        .any(|i| i.file == file.path() && i.api == name)
                    {
                        continue;
                    }
                    let mut acquires = match dir {
                        RcDir::Inc => vec![name.to_string()],
                        RcDir::Dec => kb
                            .apis()
                            .filter(|a| {
                                a.dir == RcDir::Inc
                                    && kb.accepted_decs(&a.name).iter().any(|d| d == name)
                            })
                            .map(|a| a.name.clone())
                            .collect(),
                    };
                    // KB iteration order is an implementation detail
                    // (and varies with discovery merge order across
                    // `--jobs`); the rendered intent must not.
                    acquires.sort();
                    acquires.dedup();
                    intents.push(FixIntent {
                        file: file.path().to_string(),
                        api: name.to_string(),
                        dir,
                        acquires,
                    });
                }
            }
        }
    }
    intents
}

/// True when `intent` plausibly covers a finding: same file (modulo
/// diff path prefixes) and an API in the same acquire/release family.
pub fn intent_covers(intent: &FixIntent, finding: &Finding, kb: &ApiKb) -> bool {
    paths_match(&intent.file, &finding.file)
        && (finding.api == intent.api
            || intent.acquires.contains(&finding.api)
            || kb.accepted_decs(&finding.api).contains(&intent.api))
}

/// One fixed finding whose anti-pattern survives elsewhere in the
/// post-fix tree.
#[derive(Debug, Clone)]
pub struct IncompleteFix {
    /// The finding the fix resolved (from the pre-fix audit).
    pub origin: Finding,
    /// The template abstracted from the pre-fix source.
    pub template: BugTemplate,
    /// The diff API the fix targeted, when an intent attributed it.
    pub intent: Option<String>,
    /// Clone sites still present after the fix, ranked by score.
    pub matches: Vec<CloneMatch>,
}

impl ToJson for IncompleteFix {
    fn to_json(&self) -> Value {
        obj([
            ("origin", self.origin.to_json()),
            ("template", self.template.to_json()),
            (
                "intent",
                match &self.intent {
                    Some(api) => Value::Str(api.clone()),
                    None => Value::Null,
                },
            ),
            ("matches", self.matches.to_json()),
        ])
    }
}

/// For every finding a fix resolved, abstracts it into a template
/// (from its *pre-fix* source, where the buggy shape still exists)
/// and sweeps the post-fix findings for sibling sites the fix left
/// behind. Findings whose template cannot be abstracted, or whose
/// sweep comes back empty, still appear — with empty `matches` — so
/// callers can report a complete fix positively.
pub fn check_incomplete<F, G>(
    fixed: &[Finding],
    intents: &[FixIntent],
    post_findings: &[Finding],
    kb: &ApiKb,
    mut pre_source_of: F,
    mut post_source_of: G,
) -> Vec<IncompleteFix>
where
    F: FnMut(&str) -> Option<String>,
    G: FnMut(&str) -> Option<String>,
{
    let mut out = Vec::new();
    for origin in fixed {
        let intent = intents
            .iter()
            .find(|i| intent_covers(i, origin, kb))
            .map(|i| i.api.clone());
        let Some(source) = pre_source_of(&origin.file) else {
            continue;
        };
        let Some(template) = abstract_template(origin, &source, kb) else {
            continue;
        };
        let matches = sweep(&template, post_findings, kb, &mut post_source_of);
        out.push(IncompleteFix {
            origin: origin.clone(),
            template,
            intent,
            matches,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const POST: &str = "int f(void)\n{\n\tint x = 1;\n\treturn x;\n}\n";
    const PRE: &str = "int f(void)\n{\n\tint x = 0;\n\treturn x;\n}\n";

    fn simple_diff() -> String {
        render_file_diff("drivers/foo/bar.c", PRE, POST).expect("texts differ")
    }

    #[test]
    fn render_parse_reverse_round_trip() {
        let text = simple_diff();
        let diff = parse_diff(&text).expect("parses");
        assert_eq!(diff.files.len(), 1);
        assert_eq!(diff.files[0].path(), "drivers/foo/bar.c");
        let pre = diff.files[0].reverse_apply(POST).expect("applies");
        assert_eq!(pre, PRE);
    }

    #[test]
    fn render_is_none_for_identical_texts() {
        assert!(render_file_diff("a.c", PRE, PRE).is_none());
    }

    #[test]
    fn parses_gnu_recursive_diff_output() {
        let text = "diff -ru rev00/drivers/x.c rev01/drivers/x.c\n\
                    --- rev00/drivers/x.c\t2026-01-01 00:00:00\n\
                    +++ rev01/drivers/x.c\t2026-01-02 00:00:00\n\
                    @@ -2,2 +2,3 @@\n \
                    line_two();\n\
                    -old_line();\n\
                    +new_line();\n\
                    +added_line();\n\
                    Only in rev01/drivers: extra.c\n";
        let diff = parse_diff(text).expect("parses");
        assert_eq!(diff.files.len(), 1);
        assert_eq!(diff.files[0].old_path, "rev00/drivers/x.c");
        assert_eq!(diff.files[0].new_path, "rev01/drivers/x.c");
        let hunk = &diff.files[0].hunks[0];
        assert_eq!((hunk.old_start, hunk.old_len), (2, 2));
        assert_eq!((hunk.new_start, hunk.new_len), (2, 3));
        assert_eq!(hunk.lines.len(), 4);
    }

    #[test]
    fn counted_body_protects_dashes_in_content() {
        // A removed line that itself starts with `---` must stay hunk
        // body, not open a new file.
        let text = "--- a/x.c\n+++ b/x.c\n@@ -1,2 +1,1 @@\n \
                    keep\n\
                    ----three-dashes-comment\n";
        let diff = parse_diff(text).expect("parses");
        assert_eq!(diff.files.len(), 1);
        assert_eq!(diff.files[0].hunks[0].lines[1].1, "---three-dashes-comment");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(parse_diff("").is_err());
        assert!(parse_diff("just some prose\nno diff here\n").is_err());
        assert!(parse_diff("--- a/x.c\n+++ b/x.c\n").is_err(), "no hunks");
        assert!(
            parse_diff("--- a/x.c\n+++ b/x.c\n@@ -1,5 +1,5 @@\n context\n").is_err(),
            "truncated hunk"
        );
        assert!(parse_diff("--- a/x.c\n+++ b/x.c\n@@ garbage @@\n").is_err());
    }

    #[test]
    fn reverse_apply_rejects_mismatched_tree() {
        let text = simple_diff();
        let diff = parse_diff(&text).unwrap();
        let err = diff.files[0]
            .reverse_apply("int f(void)\n{\n\treturn 2;\n}\n")
            .unwrap_err();
        assert!(err.contains("does not apply"), "got: {err}");
    }

    #[test]
    fn reverse_apply_pure_insertion_hunk() {
        // Pure addition: old range is empty, start names the line
        // before the insertion.
        let old = "a\nb\n";
        let new = "a\nmid\nb\n";
        let text = render_file_diff("x.c", old, new).unwrap();
        let diff = parse_diff(&text).unwrap();
        assert_eq!(diff.files[0].hunks[0].old_len, 0);
        assert_eq!(diff.files[0].reverse_apply(new).unwrap(), old);
    }

    #[test]
    fn reverse_apply_pure_deletion_hunk() {
        let old = "a\nmid\nb\n";
        let new = "a\nb\n";
        let text = render_file_diff("x.c", old, new).unwrap();
        let diff = parse_diff(&text).unwrap();
        assert_eq!(diff.files[0].hunks[0].new_len, 0);
        assert_eq!(diff.files[0].reverse_apply(new).unwrap(), old);
    }

    #[test]
    fn paths_match_handles_prefixes() {
        assert!(paths_match("drivers/x.c", "drivers/x.c"));
        assert!(paths_match("rev01/drivers/x.c", "drivers/x.c"));
        assert!(paths_match("drivers/x.c", "tree/drivers/x.c"));
        assert!(!paths_match("otherdrivers/x.c", "drivers/x.c"));
        assert!(!paths_match("drivers/y.c", "drivers/x.c"));
    }

    #[test]
    fn infers_release_intent_with_paired_acquires() {
        let kb = ApiKb::builtin();
        let text = "--- a/drivers/of/unit.c\n+++ b/drivers/of/unit.c\n\
                    @@ -10,2 +10,3 @@\n \
                    if (!np)\n \
                    \treturn -ENODEV;\n\
                    +\tof_node_put(np);\n";
        let diff = parse_diff(text).expect("parses");
        let intents = infer_intents(&diff, &kb);
        assert_eq!(intents.len(), 1);
        assert_eq!(intents[0].api, "of_node_put");
        assert_eq!(intents[0].dir, RcDir::Dec);
        assert!(
            intents[0]
                .acquires
                .iter()
                .any(|a| a == "of_find_node_by_name"),
            "of_node_put should pair with of_find_node_by_name, got {:?}",
            intents[0].acquires
        );
    }

    #[test]
    fn neutral_diff_has_no_intents() {
        let kb = ApiKb::builtin();
        let text = "--- a/drivers/of/unit.c\n+++ b/drivers/of/unit.c\n\
                    @@ -10,1 +10,2 @@\n \
                    int x;\n\
                    +\tpr_info(\"hello\");\n";
        let diff = parse_diff(text).expect("parses");
        assert!(infer_intents(&diff, &kb).is_empty());
    }

    #[test]
    fn called_names_tokenizer() {
        assert_eq!(
            called_names("\tret = of_find_node_by_name(NULL, name);"),
            vec!["of_find_node_by_name"]
        );
        assert_eq!(
            called_names("of_node_put(np); kfree (p);"),
            vec!["of_node_put", "kfree"]
        );
        assert!(called_names("int of_node_put_count;").is_empty());
    }
}

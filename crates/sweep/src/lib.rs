//! # refminer-sweep
//!
//! The "one bug, hundreds behind" propagation search: given one
//! confirmed finding, abstract it into a [`BugTemplate`] — anti-pattern
//! family, acquire/release API pair, and the structural context of the
//! buggy function captured as a [`StructSig`] — then sweep every other
//! finding of a full audit for *clone sites*: functions that
//! instantiate the same template with different identifiers.
//!
//! The sweep never re-discovers bugs on its own; it *ranks and groups*
//! what the two analysis engines already reported, so a clone match
//! inherits the engines' corroboration and the report layer's
//! feasibility suppression. That is what keeps the sweep at zero
//! spurious matches on the FP-trap corpus: a trap suppressed by the
//! feasibility engine never enters the candidate pool.

use std::collections::HashMap;

use refminer_checkers::{AntiPattern, EngineId, Finding, Impact};
use refminer_cparse::{parse_str, TranslationUnit};
use refminer_cpg::{CheckFact, FunctionGraph, StoreTarget};
use refminer_json::{obj, ToJson, Value};
use refminer_rcapi::ApiKb;

/// The structural context of a bug site, as a fixed set of boolean
/// facts computed from the function's code property graph. Clone
/// ranking is the fraction of these bits two sites agree on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StructSig {
    /// The acquired object is NULL-guarded somewhere in the function.
    pub null_guard: bool,
    /// Some path returns an error constant (`-EINVAL`, `ERR_PTR`,
    /// `NULL`).
    pub error_return: bool,
    /// The function has classified error-handling blocks.
    pub error_blocks: bool,
    /// An accepted release API for the acquire is called somewhere.
    pub paired_dec: bool,
    /// Some path returns the object itself (ownership transfer to the
    /// caller).
    pub returns_object: bool,
    /// The object is stored into a field or through a pointer
    /// (ownership escape).
    pub stores_object: bool,
    /// The object is dereferenced.
    pub derefs_object: bool,
    /// The acquire site sits inside a loop.
    pub in_loop: bool,
    /// The object is passed as the *sole* argument to a helper outside
    /// the API knowledge base — the custom-release / ownership-transfer
    /// shape (the paper's Listing 5 lookalikes). A candidate exhibiting
    /// this when the template does not is vetoed outright, not merely
    /// scored down: the helper may drop the reference, so the seed's
    /// bug does not generalize to it.
    pub release_like: bool,
}

/// Number of facts in a [`StructSig`].
pub const SIG_BITS: u32 = 9;

/// Minimum similarity score (percent) for a candidate to count as a
/// clone match.
pub const MIN_SCORE: u32 = 50;

impl StructSig {
    fn bits(&self) -> [bool; SIG_BITS as usize] {
        [
            self.null_guard,
            self.error_return,
            self.error_blocks,
            self.paired_dec,
            self.returns_object,
            self.stores_object,
            self.derefs_object,
            self.in_loop,
            self.release_like,
        ]
    }

    /// How many of the [`SIG_BITS`] facts two signatures agree on.
    pub fn matched(&self, other: &StructSig) -> u32 {
        self.bits()
            .iter()
            .zip(other.bits())
            .filter(|(a, b)| **a == *b)
            .count() as u32
    }

    /// Similarity as an integer percentage, rounded to nearest
    /// (JSON-stable). At the [`MIN_SCORE`] boundary this makes the
    /// reported number honest about which side it falls on: 5 of 9
    /// bits is 55.6% → 56 (a match), 4 of 9 is 44.4% → 44 (not one),
    /// so "score ≥ 50" is exactly the "at least half the bits agree"
    /// contract — with 9 bits that means ≥5 matched.
    pub fn score(&self, other: &StructSig) -> u32 {
        (self.matched(other) * 200 + SIG_BITS) / (2 * SIG_BITS)
    }
}

impl ToJson for StructSig {
    fn to_json(&self) -> Value {
        obj([
            ("null_guard", self.null_guard.to_json()),
            ("error_return", self.error_return.to_json()),
            ("error_blocks", self.error_blocks.to_json()),
            ("paired_dec", self.paired_dec.to_json()),
            ("returns_object", self.returns_object.to_json()),
            ("stores_object", self.stores_object.to_json()),
            ("derefs_object", self.derefs_object.to_json()),
            ("in_loop", self.in_loop.to_json()),
            ("release_like", self.release_like.to_json()),
        ])
    }
}

/// The seed finding a template was abstracted from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedSite {
    /// Source file of the seed finding.
    pub file: String,
    /// Containing function.
    pub function: String,
    /// 1-based line.
    pub line: u32,
}

impl ToJson for SeedSite {
    fn to_json(&self) -> Value {
        obj([
            ("file", self.file.to_json()),
            ("function", self.function.to_json()),
            ("line", self.line.to_json()),
        ])
    }
}

/// One confirmed finding abstracted away from its identifiers: the
/// anti-pattern, its root-cause family, the acquire/release API pair,
/// and the structural shape of the buggy function.
#[derive(Debug, Clone)]
pub struct BugTemplate {
    /// The seed finding's anti-pattern.
    pub pattern: AntiPattern,
    /// The root-cause family (§5 headings) clone candidates must share.
    pub family: &'static str,
    /// The bug-caused API.
    pub api: String,
    /// Release APIs accepted for `api` per the knowledge base.
    pub accepted_decs: Vec<String>,
    /// Projected impact of the seed.
    pub impact: Impact,
    /// Where the template came from.
    pub origin: SeedSite,
    /// The engines that stood behind the seed finding.
    pub engines: Vec<EngineId>,
    /// Structural signature of the seed function.
    pub sig: StructSig,
}

impl ToJson for BugTemplate {
    fn to_json(&self) -> Value {
        obj([
            ("pattern", self.pattern.to_json()),
            ("family", Value::Str(self.family.to_string())),
            ("api", self.api.to_json()),
            ("accepted_decs", self.accepted_decs.to_json()),
            ("impact", self.impact.to_json()),
            ("origin", self.origin.to_json()),
            (
                "engines",
                Value::Arr(
                    self.engines
                        .iter()
                        .map(|e| Value::Str(e.name().to_string()))
                        .collect(),
                ),
            ),
            ("sig", self.sig.to_json()),
        ])
    }
}

/// A clone site the sweep matched against a template.
#[derive(Debug, Clone)]
pub struct CloneMatch {
    /// The matched finding, engines attribution included.
    pub finding: Finding,
    /// Structural similarity to the template, in percent.
    pub score: u32,
    /// The candidate's own signature (for explanation output).
    pub sig: StructSig,
}

impl ToJson for CloneMatch {
    fn to_json(&self) -> Value {
        obj([
            ("score", self.score.to_json()),
            ("finding", self.finding.to_json()),
            ("sig", self.sig.to_json()),
        ])
    }
}

/// Computes the structural signature of one function with respect to an
/// acquire API and (optionally) the acquired object variable.
pub fn struct_sig(g: &FunctionGraph, api: &str, object: Option<&str>, kb: &ApiKb) -> StructSig {
    let decs = kb.accepted_decs(api);
    let mut sig = StructSig {
        error_blocks: !g.error_nodes.is_empty(),
        ..StructSig::default()
    };
    sig.in_loop = g
        .nodes_calling(api)
        .iter()
        .any(|&n| !g.cfg.nodes[n].loops.is_empty());
    for i in g.cfg.node_ids() {
        let facts = &g.facts[i];
        if facts.is_return && facts.returns_error {
            sig.error_return = true;
        }
        if decs.iter().any(|d| facts.calls_named(d)) {
            sig.paired_dec = true;
        }
        let Some(obj) = object else { continue };
        if facts.returns_var.as_deref() == Some(obj) {
            sig.returns_object = true;
        }
        if facts.derefs_var(obj) {
            sig.derefs_object = true;
        }
        if facts
            .checks
            .iter()
            .any(|c| matches!(c, CheckFact::NullOnTrue(v) if v == obj))
        {
            sig.null_guard = true;
        }
        if facts.assigns.iter().any(|a| {
            a.rhs_root.as_deref() == Some(obj)
                && matches!(
                    a.target,
                    StoreTarget::Field { .. } | StoreTarget::Indirect(_)
                )
        }) {
            sig.stores_object = true;
        }
        if facts.calls.iter().any(|c| {
            c.name != api
                && !decs.contains(&c.name)
                && c.args.len() == 1
                && c.arg_root(0) == Some(obj)
        }) {
            sig.release_like = true;
        }
    }
    sig
}

/// Abstracts one confirmed finding into a [`BugTemplate`], given the
/// source text of the file it lives in. Returns `None` when the seed
/// function cannot be found in the source (stale report).
pub fn abstract_template(finding: &Finding, source: &str, kb: &ApiKb) -> Option<BugTemplate> {
    let tu = parse_str(&finding.file, source);
    let func = tu.function(&finding.function)?;
    let g = FunctionGraph::build(func);
    let sig = struct_sig(&g, &finding.api, finding.object.as_deref(), kb);
    Some(BugTemplate {
        pattern: finding.pattern,
        family: finding.pattern.root_cause(),
        api: finding.api.clone(),
        accepted_decs: kb.accepted_decs(&finding.api),
        impact: finding.impact,
        origin: SeedSite {
            file: finding.file.clone(),
            function: finding.function.clone(),
            line: finding.line,
        },
        engines: finding.engines.clone(),
        sig,
    })
}

/// Whether a candidate finding's API instantiates the template's API
/// slot: the same API, or one sharing an accepted release API (the
/// paper's "same pair, different wrapper" clones).
fn api_related(template: &BugTemplate, api: &str, kb: &ApiKb) -> bool {
    if api == template.api {
        return true;
    }
    let decs = kb.accepted_decs(api);
    !template.accepted_decs.is_empty() && decs.iter().any(|d| template.accepted_decs.contains(d))
}

/// Sweeps a full audit's findings for clone sites of `template`.
///
/// Candidates must share the template's root-cause family and
/// instantiate its API slot; each surviving candidate is re-analyzed
/// structurally (via `source_of`, a path → source-text lookup) and kept
/// when its [`StructSig`] agrees with the template's on at least
/// [`MIN_SCORE`] percent of the bits. The seed site itself is excluded.
///
/// Matches come back ranked: score descending, then canonical
/// `(file, line)` order — deterministic for byte-stable reports.
pub fn sweep<F>(
    template: &BugTemplate,
    findings: &[Finding],
    kb: &ApiKb,
    mut source_of: F,
) -> Vec<CloneMatch>
where
    F: FnMut(&str) -> Option<String>,
{
    let mut parsed: HashMap<String, Option<TranslationUnit>> = HashMap::new();
    let mut out = Vec::new();
    for f in findings {
        if f.file == template.origin.file && f.line == template.origin.line {
            continue;
        }
        if f.pattern.root_cause() != template.family {
            continue;
        }
        if !api_related(template, &f.api, kb) {
            continue;
        }
        let tu = parsed
            .entry(f.file.clone())
            .or_insert_with(|| source_of(&f.file).map(|s| parse_str(&f.file, &s)));
        let Some(tu) = tu else { continue };
        let Some(func) = tu.function(&f.function) else {
            continue;
        };
        let g = FunctionGraph::build(func);
        let sig = struct_sig(&g, &f.api, f.object.as_deref(), kb);
        // Ownership-transfer veto: a candidate handing the object to a
        // custom-release-shaped helper the seed never used is
        // structurally *explained*, not cloned — listing it would be a
        // spurious match, however many other bits agree.
        if sig.release_like && !template.sig.release_like {
            continue;
        }
        let score = template.sig.score(&sig);
        if score >= MIN_SCORE {
            out.push(CloneMatch {
                finding: f.clone(),
                score,
                sig,
            });
        }
    }
    out.sort_by(|a, b| {
        b.score.cmp(&a.score).then_with(|| {
            (a.finding.file.as_str(), a.finding.line)
                .cmp(&(b.finding.file.as_str(), b.finding.line))
        })
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_checkers::Feasibility;

    fn mk_finding(file: &str, function: &str, line: u32, api: &str, object: &str) -> Finding {
        Finding {
            pattern: AntiPattern::P4,
            impact: Impact::Leak,
            file: file.into(),
            function: function.into(),
            line,
            api: api.into(),
            object: Some(object.into()),
            message: "reference never released".into(),
            feasibility: Feasibility::Assumed,
            checkers: vec!["HiddenApiChecker".into()],
            engines: vec![EngineId::Template],
        }
    }

    const SEED_SRC: &str = r#"
static int alpha_probe(struct platform_device *pdev)
{
        struct device_node *np = of_find_compatible_node(NULL, NULL, "a,b");

        if (!np)
                return -ENODEV;
        use_node(np->name);
        return 0;
}
"#;

    const CLONE_SRC: &str = r#"
static int beta_attach(struct platform_device *pdev)
{
        struct device_node *dn = of_find_compatible_node(NULL, NULL, "c,d");

        if (!dn)
                return -ENODEV;
        use_node(dn->name);
        return 0;
}
"#;

    const UNRELATED_SRC: &str = r#"
static struct device_node *gamma_lookup(void)
{
        struct device_node *np = of_find_compatible_node(NULL, NULL, "e,f");

        return np;
}
"#;

    #[test]
    fn template_captures_structural_context() {
        let kb = ApiKb::builtin();
        let seed = mk_finding("a.c", "alpha_probe", 4, "of_find_compatible_node", "np");
        let t = abstract_template(&seed, SEED_SRC, &kb).expect("template");
        assert_eq!(t.family, "hidden refcounting");
        assert!(t.sig.null_guard);
        assert!(t.sig.error_return);
        assert!(t.sig.derefs_object);
        assert!(!t.sig.paired_dec);
        assert!(!t.sig.returns_object);
        // `use_node(np->name)` is a sole-argument helper rooted at np.
        assert!(t.sig.release_like);
        assert!(t.accepted_decs.contains(&"of_node_put".to_string()));
        let json = t.to_json().to_string();
        assert!(json.contains("\"origin\""));
        assert!(json.contains("\"engines\":[\"template\"]"));
    }

    #[test]
    fn sweep_finds_identifier_renamed_clone_and_ranks_it() {
        let kb = ApiKb::builtin();
        let seed = mk_finding("a.c", "alpha_probe", 4, "of_find_compatible_node", "np");
        let t = abstract_template(&seed, SEED_SRC, &kb).unwrap();
        let findings = vec![
            seed.clone(),
            mk_finding("b.c", "beta_attach", 4, "of_find_compatible_node", "dn"),
            mk_finding("c.c", "gamma_lookup", 4, "of_find_compatible_node", "np"),
        ];
        let matches = sweep(&t, &findings, &kb, |path| match path {
            "a.c" => Some(SEED_SRC.to_string()),
            "b.c" => Some(CLONE_SRC.to_string()),
            "c.c" => Some(UNRELATED_SRC.to_string()),
            _ => None,
        });
        // The seed itself is excluded; the renamed clone outranks the
        // ownership-transferring lookalike.
        assert!(matches.iter().all(|m| m.finding.function != "alpha_probe"));
        assert_eq!(matches[0].finding.function, "beta_attach");
        assert_eq!(matches[0].score, 100);
        if let Some(second) = matches.get(1) {
            assert!(second.score < 100);
        }
    }

    #[test]
    fn sweep_skips_other_families_and_unrelated_apis() {
        let kb = ApiKb::builtin();
        let seed = mk_finding("a.c", "alpha_probe", 4, "of_find_compatible_node", "np");
        let t = abstract_template(&seed, SEED_SRC, &kb).unwrap();
        let mut other_family = mk_finding("d.c", "delta", 9, "sock_put", "sk");
        other_family.pattern = AntiPattern::P8;
        let findings = vec![other_family];
        let matches = sweep(&t, &findings, &kb, |_| None);
        assert!(matches.is_empty());
    }

    #[test]
    fn api_relation_accepts_shared_release() {
        let kb = ApiKb::builtin();
        let seed = mk_finding("a.c", "alpha_probe", 4, "of_find_compatible_node", "np");
        let t = abstract_template(&seed, SEED_SRC, &kb).unwrap();
        // of_find_node_by_name pairs with of_node_put too.
        assert!(api_related(&t, "of_find_node_by_name", &kb));
        assert!(!api_related(&t, "pm_runtime_get_sync", &kb));
    }

    #[test]
    fn ownership_transfer_candidates_are_vetoed() {
        // A seed that never hands the object off alone must not match a
        // Listing 5-style lookalike whose helper may drop the reference
        // internally — even though every other bit lines up.
        const PLAIN_SEED: &str = r#"
static int delta_probe(struct platform_device *pdev)
{
        struct device_node *np = of_find_compatible_node(NULL, NULL, "a,b");
        u32 v;
        if (!np)
                return -ENODEV;
        if (read_cfg(np, &v))
                return -EIO;
        return 0;
}
"#;
        const TEARDOWN_SRC: &str = r#"
static int epsilon_probe(struct platform_device *pdev)
{
        struct device_node *np = of_find_node_by_name(NULL, "ports");
        if (!np)
                return -ENODEV;
        if (setup_hw(np) < 0) {
                teardown(np);
                return -EIO;
        }
        teardown(np);
        return 0;
}
"#;
        let kb = ApiKb::builtin();
        let seed = mk_finding("a.c", "delta_probe", 4, "of_find_compatible_node", "np");
        let t = abstract_template(&seed, PLAIN_SEED, &kb).unwrap();
        assert!(!t.sig.release_like);
        let lookalike = mk_finding("e.c", "epsilon_probe", 4, "of_find_node_by_name", "np");
        let matches = sweep(&t, &[lookalike], &kb, |path| match path {
            "e.c" => Some(TEARDOWN_SRC.to_string()),
            _ => None,
        });
        assert!(matches.is_empty(), "teardown lookalike must be vetoed");
    }

    #[test]
    fn sig_score_is_symmetric_and_bounded() {
        let a = StructSig {
            null_guard: true,
            error_return: true,
            ..StructSig::default()
        };
        let b = StructSig::default();
        assert_eq!(a.score(&b), b.score(&a));
        assert_eq!(a.score(&a), 100);
        assert!(a.score(&b) < 100);
    }

    /// The MIN_SCORE boundary in bits: 5 of 9 matched bits rounds to
    /// 56 and clears the floor, 4 of 9 rounds to 44 and does not —
    /// "score ≥ 50" is exactly "at least half the bits agree".
    #[test]
    fn score_floor_boundary_at_four_and_five_bits() {
        // All-true vs a signature with exactly N bits flipped back.
        let all = StructSig {
            null_guard: true,
            error_return: true,
            error_blocks: true,
            paired_dec: true,
            returns_object: true,
            stores_object: true,
            derefs_object: true,
            in_loop: true,
            release_like: true,
        };
        let five_matched = StructSig {
            null_guard: false,
            error_return: false,
            error_blocks: false,
            paired_dec: false,
            ..all
        };
        let four_matched = StructSig {
            returns_object: false,
            ..five_matched
        };
        assert_eq!(all.matched(&five_matched), 5);
        assert_eq!(all.score(&five_matched), 56);
        assert!(all.score(&five_matched) >= MIN_SCORE);
        assert_eq!(all.matched(&four_matched), 4);
        assert_eq!(all.score(&four_matched), 44);
        assert!(all.score(&four_matched) < MIN_SCORE);
    }
}

//! Aligned ASCII tables for terminal output and experiment logs.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (text).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple table builder.
///
/// # Examples
///
/// ```
/// use refminer_report::{Align, Table};
///
/// let mut t = Table::new(vec!["Subsystem", "Bugs"]);
/// t.align(1, Align::Right);
/// t.row(vec!["drivers".into(), "182".into()]);
/// t.row(vec!["arch".into(), "156".into()]);
/// let text = t.render();
/// assert!(text.contains("drivers"));
/// assert!(text.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = vec![Align::Left; headers.len()];
        Table {
            headers,
            rows: Vec::new(),
            aligns,
            title: None,
        }
    }

    /// Sets a title printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Table {
        self.title = Some(title.into());
        self
    }

    /// Sets the alignment of column `i`.
    pub fn align(&mut self, i: usize, a: Align) -> &mut Table {
        if i < self.aligns.len() {
            self.aligns[i] = a;
        }
        self
    }

    /// Right-aligns every column except the first.
    pub fn numeric(mut self) -> Table {
        for i in 1..self.aligns.len() {
            self.aligns[i] = Align::Right;
        }
        self
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Table {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Appends a separator row (rendered as a rule).
    pub fn rule(&mut self) -> &mut Table {
        self.rows.push(vec!["\u{0}".to_string()]);
        self
    }

    /// Number of data rows (rules excluded).
    pub fn len(&self) -> usize {
        self.rows.iter().filter(|r| r[0] != "\u{0}").count()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            if row[0] == "\u{0}" {
                continue;
            }
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            out.push_str(title);
            out.push('\n');
        }
        let rule: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, &w) in widths.iter().enumerate().take(cols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let padded = match self.aligns[i] {
                    Align::Left => format!(" {cell:<w$} "),
                    Align::Right => format!(" {cell:>w$} "),
                };
                line.push_str(&padded);
                if i + 1 < cols {
                    line.push('|');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&rule);
        out.push('\n');
        for row in &self.rows {
            if row[0] == "\u{0}" {
                out.push_str(&rule);
            } else {
                out.push_str(&fmt_row(row));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the table as GitHub-flavored Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if let Some(title) = &self.title {
            out.push_str(&format!("### {title}\n\n"));
        }
        let escape = |s: &str| s.replace('|', "\\|");
        out.push('|');
        for h in &self.headers {
            out.push_str(&format!(" {} |", escape(h)));
        }
        out.push('\n');
        out.push('|');
        for a in &self.aligns {
            out.push_str(match a {
                Align::Left => "---|",
                Align::Right => "---:|",
            });
        }
        out.push('\n');
        for row in &self.rows {
            if row[0] == "\u{0}" {
                continue; // Markdown has no mid-table rules.
            }
            out.push('|');
            for i in 0..self.headers.len() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                out.push_str(&format!(" {} |", escape(cell)));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-style quoting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let quote = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            if row[0] == "\u{0}" {
                continue;
            }
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name", "count"]).numeric();
        t.row(vec!["drivers".into(), "588".into()]);
        t.row(vec!["net".into(), "152".into()]);
        t
    }

    #[test]
    fn renders_aligned_columns() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // Numbers right-aligned: `588` and `152` end at the same column.
        let c588 = lines[2].find("588").unwrap() + 3;
        let c152 = lines[3].find("152").unwrap() + 3;
        assert_eq!(c588, c152);
    }

    #[test]
    fn csv_output() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next().unwrap(), "name,count");
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["x,y".into()]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    fn rules_and_len() {
        let mut t = sample();
        t.rule();
        t.row(vec!["total".into(), "740".into()]);
        assert_eq!(t.len(), 3);
        let text = t.render();
        // Header rule + inserted rule.
        assert!(text.matches("--+--").count() >= 2);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["only".into()]);
        assert!(t.render().contains("only"));
    }
}

#[cfg(test)]
mod markdown_tests {
    use super::*;

    #[test]
    fn markdown_output() {
        let mut t = Table::new(vec!["name", "count"]).numeric();
        t.row(vec!["drivers".into(), "588".into()]);
        t.rule();
        t.row(vec!["with|pipe".into(), "1".into()]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| name | count |");
        assert_eq!(lines[1], "|---|---:|");
        assert_eq!(lines[2], "| drivers | 588 |");
        // Rules are dropped; pipes escaped.
        assert_eq!(lines[3], "| with\\|pipe | 1 |");
    }

    #[test]
    fn markdown_title() {
        let t = Table::new(vec!["a"]).with_title("Table X");
        assert!(t.to_markdown().starts_with("### Table X"));
    }
}

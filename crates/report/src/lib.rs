//! # refminer-report
//!
//! Terminal rendering for the experiment harness: aligned ASCII tables
//! (with CSV export) and text charts used to regenerate the paper's
//! tables and figures.

mod chart;
mod table;

pub use chart::{bar_chart, series_plot};
pub use table::{Align, Table};

//! Text charts: horizontal bar charts and line-series plots for
//! rendering the paper's figures in a terminal.

/// Renders a horizontal bar chart.
///
/// # Examples
///
/// ```
/// use refminer_report::bar_chart;
///
/// let text = bar_chart(
///     &[("drivers".to_string(), 588.0), ("net".to_string(), 152.0)],
///     40,
/// );
/// assert!(text.contains("drivers"));
/// assert!(text.contains('█'));
/// ```
pub fn bar_chart(data: &[(String, f64)], width: usize) -> String {
    let max = data.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
    let label_w = data
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, value) in data {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        let bar: String = "█".repeat(bar_len.max(usize::from(*value > 0.0)));
        out.push_str(&format!("{label:<label_w$} |{bar} {value}\n"));
    }
    out
}

/// Renders an x/y line-series plot as a dot grid, y increasing upward.
///
/// Multiple series are drawn with distinct glyphs. Intended for
/// trend/lifetime figures where the *shape* matters, not pixel
/// precision.
pub fn series_plot(series: &[(&str, Vec<(f64, f64)>)], width: usize, height: usize) -> String {
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut xmin, mut xmax) = (f64::MAX, f64::MIN);
    let (mut ymin, mut ymax) = (f64::MAX, f64::MIN);
    for (x, y) in &all {
        xmin = xmin.min(*x);
        xmax = xmax.max(*x);
        ymin = ymin.min(*y);
        ymax = ymax.max(*y);
    }
    if (xmax - xmin).abs() < f64::EPSILON {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < f64::EPSILON {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (x, y) in pts {
            let cx = (((x - xmin) / (xmax - xmin)) * (width - 1) as f64).round() as usize;
            let cy = (((y - ymin) / (ymax - ymin)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("y: {ymin:.0} .. {ymax:.0}\n"));
    for row in grid {
        out.push('|');
        out.push_str(&row.into_iter().collect::<String>());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!("x: {xmin:.0} .. {xmax:.0}"));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {name}", GLYPHS[i % GLYPHS.len()]))
        .collect();
    out.push_str(&format!("   [{}]\n", legend.join(", ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let text = bar_chart(&[("a".into(), 100.0), ("b".into(), 50.0)], 20);
        let lines: Vec<&str> = text.lines().collect();
        let bars: Vec<usize> = lines
            .iter()
            .map(|l| l.chars().filter(|&c| c == '█').count())
            .collect();
        assert_eq!(bars[0], 20);
        assert_eq!(bars[1], 10);
    }

    #[test]
    fn zero_values_have_no_bar() {
        let text = bar_chart(&[("a".into(), 10.0), ("b".into(), 0.0)], 10);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[1].chars().filter(|&c| c == '█').count(), 0);
    }

    #[test]
    fn series_plot_draws_points() {
        let text = series_plot(&[("bugs", vec![(2005.0, 1.0), (2022.0, 120.0)])], 40, 10);
        assert!(text.contains('*'));
        assert!(text.contains("2005"));
        assert!(text.contains("2022"));
    }

    #[test]
    fn empty_series_handled() {
        assert!(series_plot(&[], 10, 5).contains("no data"));
    }

    #[test]
    fn multiple_series_glyphs() {
        let text = series_plot(&[("a", vec![(0.0, 0.0)]), ("b", vec![(1.0, 1.0)])], 20, 5);
        assert!(text.contains('*'));
        assert!(text.contains('o'));
    }
}

//! Persistence for trained embeddings: the word2vec text format
//! (`word v1 v2 ... vD` per line, dimension header), so models train
//! once and reload across runs/tools.

use std::io::{self, BufRead, BufReader, Read, Write};

use crate::model::Word2Vec;

impl Word2Vec {
    /// Writes the embeddings in the word2vec text format.
    ///
    /// The first line is `<vocab_size> <dim>`; each following line is
    /// the word and its vector components.
    pub fn write_text(&self, w: &mut dyn Write) -> io::Result<()> {
        let vocab = self.vocab();
        writeln!(w, "{} {}", vocab.len(), self.dim())?;
        for i in 0..vocab.len() {
            let word = vocab.word(i);
            write!(w, "{word}")?;
            for v in self.vector(word).expect("in-vocab word has a vector") {
                write!(w, " {v}")?;
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// Serializes to a string (convenience over [`Word2Vec::write_text`]).
    pub fn to_text(&self) -> String {
        let mut buf = Vec::new();
        self.write_text(&mut buf).expect("writing to memory");
        String::from_utf8(buf).expect("text format is UTF-8")
    }

    /// Reads a model from the word2vec text format.
    ///
    /// Word frequencies are not stored in the format; the loaded model
    /// supports lookup/similarity but not further training.
    pub fn read_text(r: &mut dyn Read) -> io::Result<Word2Vec> {
        let mut lines = BufReader::new(r).lines();
        let header = lines
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty model file"))??;
        let mut parts = header.split_whitespace();
        let count: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("missing vocab size"))?;
        let dim: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("missing dimension"))?;
        let mut words = Vec::with_capacity(count);
        let mut vectors: Vec<f32> = Vec::with_capacity(count * dim);
        for line in lines {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let word = parts.next().ok_or_else(|| bad("missing word"))?;
            words.push(word.to_string());
            let mut n = 0;
            for p in parts {
                let v: f32 = p.parse().map_err(|_| bad("malformed component"))?;
                vectors.push(v);
                n += 1;
            }
            if n != dim {
                return Err(bad("wrong vector length"));
            }
        }
        if words.len() != count {
            return Err(bad("wrong vocabulary size"));
        }
        Ok(Word2Vec::from_parts(words, vectors, dim))
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("word2vec text: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::W2vConfig;

    fn model() -> Word2Vec {
        let corpus = "find get put node\nfind put node get\n".repeat(30);
        Word2Vec::train_text(
            &corpus,
            &W2vConfig {
                dim: 8,
                epochs: 3,
                min_count: 1,
                subsample: 0.0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn round_trips_exactly() {
        let m = model();
        let text = m.to_text();
        let loaded = Word2Vec::read_text(&mut text.as_bytes()).expect("valid");
        assert_eq!(loaded.vocab().len(), m.vocab().len());
        for i in 0..m.vocab().len() {
            let w = m.vocab().word(i);
            assert_eq!(loaded.vector(w), m.vector(w), "vector mismatch for {w}");
        }
        // Similarities survive the round trip.
        let a = m.similarity("find", "put").unwrap();
        let b = loaded.similarity("find", "put").unwrap();
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn header_shape() {
        let m = model();
        let text = m.to_text();
        let header = text.lines().next().unwrap();
        assert_eq!(header, format!("{} 8", m.vocab().len()));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Word2Vec::read_text(&mut "".as_bytes()).is_err());
        assert!(Word2Vec::read_text(&mut "x".as_bytes()).is_err());
        assert!(Word2Vec::read_text(&mut "1 3\nword 0.5 0.5".as_bytes()).is_err());
        assert!(Word2Vec::read_text(&mut "2 2\nword 0.5 0.5".as_bytes()).is_err());
        assert!(Word2Vec::read_text(&mut "1 2\nword 0.5 abc".as_bytes()).is_err());
    }

    #[test]
    fn loaded_model_supports_most_similar() {
        let m = model();
        let loaded = Word2Vec::read_text(&mut m.to_text().as_bytes()).unwrap();
        let top = loaded.most_similar("find", 2);
        assert_eq!(top.len(), 2);
    }
}

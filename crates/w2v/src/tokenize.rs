//! Tokenization of commit logs and patch text for embedding training.

/// Tokenizes commit-log text into lowercase word tokens.
///
/// C identifiers are split on underscores so that API names contribute
/// their keyword parts (`of_find_node_by_name` → `of find node by
/// name`), matching how Table 3 compares *keywords* rather than whole
/// names. `for_each` is fused into the single token `foreach` first,
/// mirroring the paper's keyword list.
///
/// # Examples
///
/// ```
/// use refminer_w2v::tokenize;
///
/// let toks = tokenize("Fix refcount leak in of_find_node_by_name()");
/// assert!(toks.contains(&"refcount".to_string()));
/// assert!(toks.contains(&"find".to_string()));
/// let toks = tokenize("for_each_child_of_node(parent, child)");
/// assert!(toks.contains(&"foreach".to_string()));
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let lowered = text.to_ascii_lowercase().replace("for_each", "foreach");
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in lowered.chars() {
        if c.is_ascii_alphanumeric() {
            cur.push(c);
        } else if !cur.is_empty() {
            push_token(&mut out, std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        push_token(&mut out, cur);
    }
    out
}

fn push_token(out: &mut Vec<String>, tok: String) {
    // Drop single characters and pure numbers; they carry no keyword
    // signal and bloat the vocabulary.
    if tok.len() < 2 || tok.chars().all(|c| c.is_ascii_digit()) {
        return;
    }
    out.push(tok);
}

/// Tokenizes a multi-line document into sentences (one per line),
/// dropping empty ones.
pub fn tokenize_lines(text: &str) -> Vec<Vec<String>> {
    text.lines()
        .map(tokenize)
        .filter(|s| !s.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_identifiers() {
        assert_eq!(tokenize("of_node_put(np)"), vec!["of", "node", "put", "np"]);
    }

    #[test]
    fn fuses_for_each() {
        let toks = tokenize("use for_each_matching_node here");
        assert!(!toks.contains(&"foreachmatchingnode".to_string()));
        assert!(toks.contains(&"foreach".to_string()));
        assert!(toks.contains(&"matching".to_string()));
    }

    #[test]
    fn drops_numbers_and_singles() {
        assert_eq!(tokenize("v5 1 x 42 ab"), vec!["v5", "ab"]);
    }

    #[test]
    fn lines_become_sentences() {
        let s = tokenize_lines("first line\n\nsecond line\n");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], vec!["first", "line"]);
    }
}

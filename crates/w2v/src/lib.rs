//! # refminer-w2v
//!
//! A from-scratch word2vec (CBOW with negative sampling) used to
//! reproduce the paper's Table 3: the semantic similarity between the
//! key words of refcounting API names ("get", "put", "hold", ...) and
//! the key words of bug-causing API names ("find", "foreach", "parse",
//! ...), trained on commit logs (§5.2.2, CBOW per Mikolov et al.).
//!
//! Training is deterministic for a given seed (`ChaCha8` RNG), so the
//! regenerated Table 3 is bit-for-bit reproducible.

mod io;
mod model;
mod tokenize;
mod vocab;

pub use model::{W2vConfig, Word2Vec};
pub use tokenize::{tokenize, tokenize_lines};
pub use vocab::Vocab;

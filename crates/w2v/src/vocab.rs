//! Vocabulary construction and the negative-sampling table.

use std::collections::HashMap;

/// A fixed vocabulary with frequency data.
#[derive(Debug, Clone)]
pub struct Vocab {
    /// Word → index.
    index: HashMap<String, usize>,
    /// Index → word.
    words: Vec<String>,
    /// Index → corpus frequency.
    counts: Vec<u64>,
    /// Total token count (after min-count filtering).
    total: u64,
}

impl Vocab {
    /// Builds a vocabulary from sentences, dropping words occurring
    /// fewer than `min_count` times.
    pub fn build(sentences: &[Vec<String>], min_count: u64) -> Vocab {
        let mut freq: HashMap<&str, u64> = HashMap::new();
        for s in sentences {
            for w in s {
                *freq.entry(w.as_str()).or_default() += 1;
            }
        }
        let mut pairs: Vec<(&str, u64)> =
            freq.into_iter().filter(|(_, c)| *c >= min_count).collect();
        // Deterministic order: by descending count, then lexicographic.
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let mut index = HashMap::new();
        let mut words = Vec::new();
        let mut counts = Vec::new();
        let mut total = 0;
        for (w, c) in pairs {
            index.insert(w.to_string(), words.len());
            words.push(w.to_string());
            counts.push(c);
            total += c;
        }
        Vocab {
            index,
            words,
            counts,
            total,
        }
    }

    /// Builds a vocabulary from an ordered word list with unit counts
    /// (used when loading persisted models, where frequencies are not
    /// stored).
    pub(crate) fn from_words(words: Vec<String>) -> Vocab {
        let index = words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i))
            .collect();
        let total = words.len() as u64;
        let counts = vec![1; words.len()];
        Vocab {
            index,
            words,
            counts,
            total,
        }
    }

    /// Looks up a word's index.
    pub fn get(&self, word: &str) -> Option<usize> {
        self.index.get(word).copied()
    }

    /// The word at an index.
    pub fn word(&self, i: usize) -> &str {
        &self.words[i]
    }

    /// Corpus frequency of the word at an index.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Number of words in the vocabulary.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Total (filtered) token count.
    pub fn total_tokens(&self) -> u64 {
        self.total
    }

    /// Builds the unigram^0.75 negative-sampling table of `size`
    /// entries (word2vec's standard construction).
    pub fn negative_table(&self, size: usize) -> Vec<usize> {
        let mut table = Vec::with_capacity(size);
        if self.is_empty() {
            return table;
        }
        let pow = 0.75f64;
        let norm: f64 = self.counts.iter().map(|&c| (c as f64).powf(pow)).sum();
        let mut i = 0usize;
        let mut cum = (self.counts[0] as f64).powf(pow) / norm;
        for t in 0..size {
            table.push(i);
            if (t as f64 + 1.0) / size as f64 > cum && i + 1 < self.len() {
                i += 1;
                cum += (self.counts[i] as f64).powf(pow) / norm;
            }
        }
        table
    }

    /// The keep-probability for subsampling frequent words
    /// (`t = 1e-3` by convention).
    pub fn keep_probability(&self, i: usize, t: f64) -> f64 {
        let f = self.counts[i] as f64 / self.total as f64;
        if f <= t {
            1.0
        } else {
            ((t / f).sqrt() + t / f).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sentences() -> Vec<Vec<String>> {
        let to_v = |s: &str| s.split(' ').map(str::to_string).collect::<Vec<_>>();
        vec![
            to_v("fix refcount leak leak leak"),
            to_v("fix uaf bug"),
            to_v("fix leak again"),
        ]
    }

    #[test]
    fn builds_sorted_by_frequency() {
        let v = Vocab::build(&sentences(), 1);
        // `leak` (4) and `fix` (3) are most frequent.
        assert_eq!(v.word(0), "leak");
        assert_eq!(v.word(1), "fix");
        assert_eq!(v.count(0), 4);
    }

    #[test]
    fn min_count_filters() {
        let v = Vocab::build(&sentences(), 2);
        assert!(v.get("uaf").is_none());
        assert!(v.get("leak").is_some());
    }

    #[test]
    fn negative_table_biases_frequent() {
        let v = Vocab::build(&sentences(), 1);
        let table = v.negative_table(1000);
        assert_eq!(table.len(), 1000);
        let leak_hits = table
            .iter()
            .filter(|&&i| i == v.get("leak").unwrap())
            .count();
        let bug_hits = table
            .iter()
            .filter(|&&i| i == v.get("bug").unwrap())
            .count();
        assert!(leak_hits > bug_hits);
    }

    #[test]
    fn keep_probability_bounds() {
        let v = Vocab::build(&sentences(), 1);
        for i in 0..v.len() {
            let p = v.keep_probability(i, 1e-3);
            assert!(p > 0.0 && p <= 1.0);
        }
    }
}

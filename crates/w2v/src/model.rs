//! The CBOW word2vec model with negative sampling.

use refminer_prng::{ChaCha8Rng, Rng, SeedableRng};

use crate::tokenize::tokenize_lines;
use crate::vocab::Vocab;

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct W2vConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Context window half-width.
    pub window: usize,
    /// Negative samples per positive.
    pub negatives: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate (decays linearly to 1e-4 of itself).
    pub learning_rate: f32,
    /// Minimum word frequency to enter the vocabulary.
    pub min_count: u64,
    /// Frequent-word subsampling threshold (0 disables).
    pub subsample: f64,
    /// RNG seed (training is deterministic given the seed).
    pub seed: u64,
}

impl Default for W2vConfig {
    fn default() -> Self {
        W2vConfig {
            dim: 64,
            window: 5,
            negatives: 5,
            epochs: 5,
            learning_rate: 0.05,
            min_count: 2,
            subsample: 1e-3,
            seed: 0x5eed,
        }
    }
}

/// A trained CBOW model.
///
/// # Examples
///
/// ```
/// use refminer_w2v::{W2vConfig, Word2Vec};
///
/// let corpus = "\
/// fix refcount leak in of_find_node_by_name\n\
/// add missing of_node_put after of_find_node_by_name\n\
/// fix refcount leak add missing of_node_put\n";
/// let cfg = W2vConfig { dim: 16, epochs: 20, min_count: 1, ..Default::default() };
/// let model = Word2Vec::train_text(corpus, &cfg);
/// assert!(model.similarity("find", "put").is_some());
/// ```
pub struct Word2Vec {
    vocab: Vocab,
    /// Input embeddings, row-major `vocab.len() × dim`.
    syn0: Vec<f32>,
    dim: usize,
}

impl Word2Vec {
    /// Trains on raw text (one sentence per line).
    pub fn train_text(text: &str, cfg: &W2vConfig) -> Word2Vec {
        let sentences = tokenize_lines(text);
        Self::train(&sentences, cfg)
    }

    /// Trains on pre-tokenized sentences.
    pub fn train(sentences: &[Vec<String>], cfg: &W2vConfig) -> Word2Vec {
        let vocab = Vocab::build(sentences, cfg.min_count);
        let dim = cfg.dim;
        let n = vocab.len();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        // Standard word2vec init: inputs uniform in ±0.5/dim, outputs 0.
        let mut syn0: Vec<f32> = (0..n * dim)
            .map(|_| (rng.gen::<f32>() - 0.5) / dim as f32)
            .collect();
        let mut syn1: Vec<f32> = vec![0.0; n * dim];
        if n == 0 {
            return Word2Vec { vocab, syn0, dim };
        }
        let neg_table = vocab.negative_table(1_000_000.min(100 * n.max(100)));
        // Index sentences once.
        let indexed: Vec<Vec<usize>> = sentences
            .iter()
            .map(|s| s.iter().filter_map(|w| vocab.get(w)).collect())
            .filter(|s: &Vec<usize>| s.len() >= 2)
            .collect();
        let total_words: usize = indexed.iter().map(Vec::len).sum();
        let total_steps = (total_words * cfg.epochs).max(1);
        let mut step = 0usize;
        let mut neu1 = vec![0.0f32; dim];
        let mut neu1e = vec![0.0f32; dim];
        for _epoch in 0..cfg.epochs {
            for sentence in &indexed {
                // Subsample frequent words per epoch.
                let kept: Vec<usize> = sentence
                    .iter()
                    .copied()
                    .filter(|&w| {
                        cfg.subsample <= 0.0
                            || rng.gen::<f64>() < vocab.keep_probability(w, cfg.subsample)
                    })
                    .collect();
                if kept.len() < 2 {
                    step += sentence.len();
                    continue;
                }
                for (pos, &center) in kept.iter().enumerate() {
                    step += 1;
                    let progress = step as f32 / total_steps as f32;
                    let lr = (cfg.learning_rate * (1.0 - progress)).max(cfg.learning_rate * 1e-4);
                    // Dynamic window, as in the reference implementation.
                    let b = rng.gen_range(0..cfg.window.max(1));
                    let lo = pos.saturating_sub(cfg.window - b);
                    let hi = (pos + cfg.window - b + 1).min(kept.len());
                    neu1.iter_mut().for_each(|v| *v = 0.0);
                    neu1e.iter_mut().for_each(|v| *v = 0.0);
                    let mut cw = 0usize;
                    for (i, &ctx) in kept[lo..hi].iter().enumerate() {
                        if lo + i == pos {
                            continue;
                        }
                        for d in 0..dim {
                            neu1[d] += syn0[ctx * dim + d];
                        }
                        cw += 1;
                    }
                    if cw == 0 {
                        continue;
                    }
                    let inv = 1.0 / cw as f32;
                    neu1.iter_mut().for_each(|v| *v *= inv);
                    // One positive + k negative targets.
                    for k in 0..=cfg.negatives {
                        let (target, label) = if k == 0 {
                            (center, 1.0f32)
                        } else {
                            let t = neg_table[rng.gen_range(0..neg_table.len())];
                            if t == center {
                                continue;
                            }
                            (t, 0.0f32)
                        };
                        let row = &syn1[target * dim..(target + 1) * dim];
                        let dot: f32 = neu1.iter().zip(row).map(|(a, b)| a * b).sum();
                        let pred = sigmoid(dot);
                        let g = (label - pred) * lr;
                        for d in 0..dim {
                            neu1e[d] += g * syn1[target * dim + d];
                        }
                        for d in 0..dim {
                            syn1[target * dim + d] += g * neu1[d];
                        }
                    }
                    // Propagate the error back to every context word.
                    for (i, &ctx) in kept[lo..hi].iter().enumerate() {
                        if lo + i == pos {
                            continue;
                        }
                        for d in 0..dim {
                            syn0[ctx * dim + d] += neu1e[d];
                        }
                    }
                }
            }
        }
        Word2Vec { vocab, syn0, dim }
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// The embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Rebuilds a model from raw parts (deserialization). Frequencies
    /// are unknown, so the vocabulary is loaded with unit counts.
    pub(crate) fn from_parts(words: Vec<String>, syn0: Vec<f32>, dim: usize) -> Word2Vec {
        assert_eq!(words.len() * dim, syn0.len(), "vector table shape");
        Word2Vec {
            vocab: Vocab::from_words(words),
            syn0,
            dim,
        }
    }

    /// The embedding of a word, if in vocabulary.
    pub fn vector(&self, word: &str) -> Option<&[f32]> {
        let i = self.vocab.get(word)?;
        Some(&self.syn0[i * self.dim..(i + 1) * self.dim])
    }

    /// Cosine similarity of two words (`None` if either is OOV).
    pub fn similarity(&self, a: &str, b: &str) -> Option<f32> {
        let va = self.vector(a)?;
        let vb = self.vector(b)?;
        Some(cosine(va, vb))
    }

    /// Solves the analogy `a - b + c ≈ ?`, returning the `topn`
    /// candidates (excluding the query words themselves).
    ///
    /// # Examples
    ///
    /// ```
    /// use refminer_w2v::{W2vConfig, Word2Vec};
    ///
    /// let corpus = "get put node\nhold release lock\n".repeat(40);
    /// let m = Word2Vec::train_text(&corpus, &W2vConfig {
    ///     dim: 16, epochs: 4, min_count: 1, subsample: 0.0,
    ///     ..Default::default()
    /// });
    /// let answers = m.analogy("get", "put", "hold", 2);
    /// assert!(!answers.is_empty());
    /// ```
    pub fn analogy(&self, a: &str, b: &str, c: &str, topn: usize) -> Vec<(String, f32)> {
        let (Some(va), Some(vb), Some(vc)) = (self.vector(a), self.vector(b), self.vector(c))
        else {
            return Vec::new();
        };
        let target: Vec<f32> = va
            .iter()
            .zip(vb)
            .zip(vc)
            .map(|((x, y), z)| x - y + z)
            .collect();
        let mut scored: Vec<(usize, f32)> = (0..self.vocab.len())
            .filter(|&i| {
                let w = self.vocab.word(i);
                w != a && w != b && w != c
            })
            .map(|i| {
                let w = &self.syn0[i * self.dim..(i + 1) * self.dim];
                (i, cosine(&target, w))
            })
            .collect();
        scored.sort_by(|x, y| y.1.total_cmp(&x.1));
        scored
            .into_iter()
            .take(topn)
            .map(|(i, s)| (self.vocab.word(i).to_string(), s))
            .collect()
    }

    /// The `topn` nearest words to `word`, by cosine similarity.
    pub fn most_similar(&self, word: &str, topn: usize) -> Vec<(String, f32)> {
        let Some(v) = self.vector(word) else {
            return Vec::new();
        };
        let me = self.vocab.get(word).expect("vector implies index");
        let mut scored: Vec<(usize, f32)> = (0..self.vocab.len())
            .filter(|&i| i != me)
            .map(|i| {
                let w = &self.syn0[i * self.dim..(i + 1) * self.dim];
                (i, cosine(v, w))
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored
            .into_iter()
            .take(topn)
            .map(|(i, s)| (self.vocab.word(i).to_string(), s))
            .collect()
    }
}

fn sigmoid(x: f32) -> f32 {
    if x > 8.0 {
        1.0
    } else if x < -8.0 {
        0.0
    } else {
        1.0 / (1.0 + (-x).exp())
    }
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus() -> String {
        // Two tight clusters: (find get put node) co-occur; (lock mutex
        // spin irq) co-occur; clusters never mix.
        let mut text = String::new();
        for _ in 0..60 {
            text.push_str("find get node put node get find put\n");
            text.push_str("lock mutex spin irq mutex lock irq spin\n");
        }
        text
    }

    fn cfg() -> W2vConfig {
        W2vConfig {
            dim: 24,
            window: 4,
            epochs: 12,
            min_count: 1,
            subsample: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn clusters_separate() {
        let m = Word2Vec::train_text(&tiny_corpus(), &cfg());
        let same = m.similarity("find", "get").unwrap();
        let cross = m.similarity("find", "mutex").unwrap();
        assert!(
            same > cross,
            "within-cluster {same} should exceed cross-cluster {cross}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Word2Vec::train_text(&tiny_corpus(), &cfg());
        let b = Word2Vec::train_text(&tiny_corpus(), &cfg());
        assert_eq!(a.vector("find").unwrap(), b.vector("find").unwrap());
    }

    #[test]
    fn oov_is_none() {
        let m = Word2Vec::train_text(&tiny_corpus(), &cfg());
        assert!(m.vector("nonexistent").is_none());
        assert!(m.similarity("find", "nonexistent").is_none());
    }

    #[test]
    fn most_similar_ranks_cluster_first() {
        let m = Word2Vec::train_text(&tiny_corpus(), &cfg());
        let top = m.most_similar("find", 3);
        assert_eq!(top.len(), 3);
        let names: Vec<&str> = top.iter().map(|(w, _)| w.as_str()).collect();
        // All three nearest neighbours come from the same cluster.
        for n in &names {
            assert!(
                ["get", "put", "node"].contains(n),
                "unexpected neighbour {n}, top = {names:?}"
            );
        }
    }

    #[test]
    fn self_similarity_is_one() {
        let m = Word2Vec::train_text(&tiny_corpus(), &cfg());
        let s = m.similarity("find", "find").unwrap();
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_corpus_is_safe() {
        let m = Word2Vec::train_text("", &cfg());
        assert!(m.vocab().is_empty());
        assert!(m.vector("anything").is_none());
    }
}

#[cfg(test)]
mod analogy_tests {
    use super::*;

    #[test]
    fn analogy_excludes_query_words() {
        let corpus = "find get put node\nlock unlock mutex irq\n".repeat(40);
        let m = Word2Vec::train_text(
            &corpus,
            &W2vConfig {
                dim: 16,
                epochs: 4,
                min_count: 1,
                subsample: 0.0,
                ..Default::default()
            },
        );
        let answers = m.analogy("get", "put", "lock", 3);
        assert_eq!(answers.len(), 3);
        for (w, _) in &answers {
            assert!(w != "get" && w != "put" && w != "lock");
        }
    }

    #[test]
    fn analogy_oov_is_empty() {
        let m = Word2Vec::train_text(
            "alpha beta\n",
            &W2vConfig {
                min_count: 1,
                ..Default::default()
            },
        );
        assert!(m.analogy("alpha", "missing", "beta", 2).is_empty());
    }
}

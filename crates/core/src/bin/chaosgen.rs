//! The `chaosgen` tool: write a synthetic tree with seeded corruption
//! to disk, for exercising `refminer` against hostile input.
//!
//! ```text
//! chaosgen [OPTIONS] <OUTDIR>
//!
//! OPTIONS:
//!     --seed <N>      chaos seed (default 0xC4A05)
//!     --scale <F>     tree scale factor (default 0.05)
//!     --ratio <F>     fraction of files to corrupt (default 0.25)
//!     --kinds <K,..>  restrict mutation kinds (names as in chaos.json)
//!     -h, --help      print this help
//! ```
//!
//! The output directory receives the corrupted tree plus two ground
//! truth manifests: `manifest.json` (injected bugs) and `chaos.json`
//! (corrupted files and their mutation kinds).

use std::path::PathBuf;
use std::process::ExitCode;

use refminer::corpus::{apply_chaos, generate_tree, ChaosConfig, MutationKind, TreeConfig};

fn usage() -> ! {
    eprintln!("usage: chaosgen [--seed N] [--scale F] [--ratio F] [--kinds k1,k2] <OUTDIR>");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut seed: u64 = 0xC4A05;
    let mut scale: f64 = 0.05;
    let mut ratio: f64 = 0.25;
    let mut kinds: Vec<MutationKind> = Vec::new();
    let mut out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => usage(),
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                scale = v.parse().unwrap_or_else(|_| usage());
            }
            "--ratio" => {
                let v = args.next().unwrap_or_else(|| usage());
                ratio = v.parse().unwrap_or_else(|_| usage());
            }
            "--kinds" => {
                let v = args.next().unwrap_or_else(|| usage());
                for name in v.split(',') {
                    match MutationKind::parse(name) {
                        Some(k) => kinds.push(k),
                        None => {
                            eprintln!("unknown mutation kind `{name}`");
                            usage();
                        }
                    }
                }
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`");
                usage();
            }
            other => {
                if out.is_some() {
                    usage();
                }
                out = Some(PathBuf::from(other));
            }
        }
    }
    let out = out.unwrap_or_else(|| usage());

    let tree = generate_tree(&TreeConfig {
        scale,
        ..Default::default()
    });
    let chaos = apply_chaos(&tree, &ChaosConfig { seed, ratio, kinds });
    // Write the uncorrupted manifest first (for recall checks), then
    // the corrupted files and the chaos record on top.
    if let Err(e) = tree.write_to(&out) {
        eprintln!("chaosgen: cannot write tree to {}: {e}", out.display());
        return ExitCode::from(2);
    }
    if let Err(e) = chaos.write_to(&out) {
        eprintln!("chaosgen: cannot write chaos corpus: {e}");
        return ExitCode::from(2);
    }
    eprintln!(
        "chaosgen: {} files ({} corrupted) under {}",
        chaos.files.len(),
        chaos.records.len(),
        out.display()
    );
    ExitCode::SUCCESS
}

//! The `refminer` command-line tool: audit a C source tree for
//! refcounting bugs with the nine anti-pattern checkers.
//!
//! ```text
//! refminer [OPTIONS] <PATH>
//! refminer eval [OPTIONS] <PATH>     score the audit against <PATH>/manifest.json
//! refminer eval --fixcheck <ROOT>    replay a histgen fix history through fixcheck
//! refminer diff [OPTIONS] <A> <B>    incremental audit: findings delta between two revisions
//! refminer sweep --at F:L <PATH>     sweep the tree for clones of one confirmed finding
//! refminer fixcheck <ROOT> <DIFF>    audit both sides of a fix diff; report what it left behind
//! refminer history <ROOT>            findings/KLoC per subsystem across a release corpus
//! refminer serve [OPTIONS] <PATH>    resident audit daemon (JSON-RPC over TCP/Unix socket)
//! refminer rpc <TARGET> <METHOD> …   one RPC against a running daemon
//!
//! OPTIONS:
//!     --pattern <P1..P9>[,..]  only report these anti-patterns (report filter)
//!     --only-pattern <P1..>[,..] only *run* these patterns' checkers
//!     --engines <template,delta> which analysis engines run (default both)
//!     --subsystem <PREFIX>     only audit units under this path prefix
//!     --impact <leak|uaf|npd>  only report these impacts
//!     --no-feasibility         keep findings on infeasible paths
//!     --json                   emit findings (or the eval report) as JSON
//!     --csv                    emit findings as CSV
//!     --no-discovery           skip API/smartloop discovery
//!     --stats                  print per-pattern/per-impact summaries, plus
//!                              the trace summary (per-stage times, slowest
//!                              units, per-checker time, cache hit rates)
//!     --trace <FILE>           write a structured span/counter log (JSON
//!                              lines) covering every pipeline stage
//!     --strict                 exit 3 if any unit was degraded/skipped
//!     --max-file-bytes <N>     skip files larger than N bytes
//!     --jobs <N>               worker threads (0 = one per CPU, default)
//!     --cache-dir <DIR>        persist per-unit results across runs
//!     -h, --help               print this help
//! ```
//!
//! `--pattern` filters the report after the fact; `--only-pattern`
//! narrows which checkers run at all (and keys the result cache, so
//! narrowed runs never poison full-run entries).
//!
//! Exit codes: 0 no findings, 1 findings, 2 usage/scan error, 3 strict
//! mode and at least one unit was not fully analyzed.

use std::path::PathBuf;
use std::process::ExitCode;

use refminer::checkers::{AntiPattern, Impact};
use refminer::corpus::Manifest;
use refminer::report::Table;
use refminer::serve::protocol::{encode_request, Method, QueryFilter, Request};
use refminer::serve::{
    render_diagnostics_line, render_finding_line, rpc_roundtrip, run_serve, ServeConfig,
    ServeOptions, WatchOptions,
};
use refminer::sweep::abstract_template;
use refminer::{
    audit_traced, audit_with_cache, diff_audit, evaluate_engines, render_diff_lines, AuditCache,
    AuditConfig, AuditLimits, DiffOptions, EngineSet, Project, ScanOptions, TraceHandle,
};
use refminer_json::{obj, ToJson, Value};

struct Options {
    eval: bool,
    sweep_eval: bool,
    fixcheck_eval: bool,
    path: PathBuf,
    patterns: Option<Vec<AntiPattern>>,
    only_patterns: Option<Vec<AntiPattern>>,
    engines: EngineSet,
    subsystem: Option<String>,
    impacts: Option<Vec<Impact>>,
    feasibility: bool,
    json: bool,
    csv: bool,
    discovery: bool,
    stats: bool,
    strict: bool,
    trace: Option<PathBuf>,
    max_file_bytes: Option<u64>,
    jobs: usize,
    cache_dir: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: refminer [eval [--sweep|--fixcheck]] [--pattern P4,P8] [--only-pattern P4,P8] \
         [--engines template,delta] [--subsystem PREFIX] [--impact leak,uaf,npd] [--no-feasibility] \
         [--json|--csv] [--no-discovery] [--stats] [--strict] [--trace FILE] \
         [--max-file-bytes N] [--jobs N] [--cache-dir DIR] <PATH>"
    );
    std::process::exit(2);
}

fn parse_pattern(s: &str) -> Option<AntiPattern> {
    AntiPattern::all()
        .into_iter()
        .find(|p| p.id().eq_ignore_ascii_case(s))
}

fn parse_impact(s: &str) -> Option<Impact> {
    match s.to_ascii_lowercase().as_str() {
        "leak" => Some(Impact::Leak),
        "uaf" => Some(Impact::Uaf),
        "npd" => Some(Impact::Npd),
        _ => None,
    }
}

fn parse_args() -> Options {
    let mut opts = Options {
        eval: false,
        sweep_eval: false,
        fixcheck_eval: false,
        path: PathBuf::new(),
        patterns: None,
        only_patterns: None,
        engines: EngineSet::default(),
        subsystem: None,
        impacts: None,
        feasibility: true,
        json: false,
        csv: false,
        discovery: true,
        stats: false,
        strict: false,
        trace: None,
        max_file_bytes: None,
        jobs: 0,
        cache_dir: None,
    };
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("eval") {
        opts.eval = true;
        args.next();
    }
    let mut path: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => usage(),
            "--json" => opts.json = true,
            "--csv" => opts.csv = true,
            "--sweep" if opts.eval => opts.sweep_eval = true,
            "--fixcheck" if opts.eval => opts.fixcheck_eval = true,
            "--no-discovery" => opts.discovery = false,
            "--no-feasibility" => opts.feasibility = false,
            "--stats" => opts.stats = true,
            "--strict" => opts.strict = true,
            "--jobs" => {
                let value = args.next().unwrap_or_else(|| usage());
                match value.parse::<usize>() {
                    Ok(n) => opts.jobs = n,
                    Err(_) => {
                        eprintln!("--jobs needs a non-negative integer, got `{value}`");
                        usage();
                    }
                }
            }
            "--cache-dir" => {
                let value = args.next().unwrap_or_else(|| usage());
                opts.cache_dir = Some(PathBuf::from(value));
            }
            "--trace" => {
                let value = args.next().unwrap_or_else(|| usage());
                opts.trace = Some(PathBuf::from(value));
            }
            "--max-file-bytes" => {
                let value = args.next().unwrap_or_else(|| usage());
                match value.parse::<u64>() {
                    Ok(n) if n > 0 => opts.max_file_bytes = Some(n),
                    _ => {
                        eprintln!("--max-file-bytes needs a positive integer, got `{value}`");
                        usage();
                    }
                }
            }
            "--pattern" => {
                let value = args.next().unwrap_or_else(|| usage());
                let parsed: Option<Vec<AntiPattern>> =
                    value.split(',').map(parse_pattern).collect();
                match parsed {
                    Some(v) => opts.patterns = Some(v),
                    None => {
                        eprintln!("unknown anti-pattern in `{value}`");
                        usage();
                    }
                }
            }
            "--only-pattern" => {
                let value = args.next().unwrap_or_else(|| usage());
                let parsed: Option<Vec<AntiPattern>> =
                    value.split(',').map(parse_pattern).collect();
                match parsed {
                    Some(v) if !v.is_empty() => opts.only_patterns = Some(v),
                    _ => {
                        eprintln!("unknown anti-pattern in `{value}`");
                        usage();
                    }
                }
            }
            "--engines" => {
                let value = args.next().unwrap_or_else(|| usage());
                match EngineSet::parse(&value) {
                    Ok(set) => opts.engines = set,
                    Err(e) => {
                        eprintln!("--engines: {e}");
                        usage();
                    }
                }
            }
            "--subsystem" => {
                let value = args.next().unwrap_or_else(|| usage());
                opts.subsystem = Some(value);
            }
            "--impact" => {
                let value = args.next().unwrap_or_else(|| usage());
                let parsed: Option<Vec<Impact>> = value.split(',').map(parse_impact).collect();
                match parsed {
                    Some(v) => opts.impacts = Some(v),
                    None => {
                        eprintln!("unknown impact in `{value}`");
                        usage();
                    }
                }
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`");
                usage();
            }
            other => {
                if path.is_some() {
                    usage();
                }
                path = Some(PathBuf::from(other));
            }
        }
    }
    opts.path = path.unwrap_or_else(|| usage());
    opts
}

fn main() -> ExitCode {
    match std::env::args().nth(1).as_deref() {
        Some("serve") => return serve_main(),
        Some("rpc") => return rpc_main(),
        Some("diff") => return diff_main(),
        Some("sweep") => return sweep_main(),
        Some("fixcheck") => return fixcheck_main(),
        Some("history") => return history_main(),
        _ => {}
    }
    let opts = parse_args();
    // `eval --fixcheck` takes a histgen fix-history root, not a single
    // source tree: route it before the ordinary scan/audit path.
    if opts.eval && opts.fixcheck_eval {
        return run_fixcheck_eval(&opts);
    }
    // Recording is observation-only (findings are byte-identical either
    // way), so `--stats` alone also gets the full trace summary.
    let trace = if opts.trace.is_some() || opts.stats {
        TraceHandle::recording()
    } else {
        TraceHandle::disabled()
    };
    let mut scan_opts = ScanOptions::default();
    if let Some(n) = opts.max_file_bytes {
        scan_opts.max_file_bytes = n;
    }
    let scan_span = trace.span("scan");
    let project = match Project::scan_with(&opts.path, &scan_opts) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("refminer: cannot scan {}: {e}", opts.path.display());
            return ExitCode::from(2);
        }
    };
    if project.units().is_empty() && project.scan_diagnostics().is_empty() {
        eprintln!("refminer: no .c/.h files under {}", opts.path.display());
        return ExitCode::from(2);
    }
    drop(scan_span);
    let mut limits = AuditLimits::default();
    if let Some(n) = opts.max_file_bytes {
        limits.max_file_bytes = n as usize;
    }
    let cache_span = trace.span("cache.load");
    let mut cache = match &opts.cache_dir {
        Some(dir) => AuditCache::with_dir(dir),
        None => AuditCache::new(),
    };
    drop(cache_span);
    let report = audit_traced(
        &project,
        &AuditConfig {
            discover_apis: opts.discovery,
            limits,
            jobs: opts.jobs,
            feasibility: opts.feasibility,
            only_patterns: opts.only_patterns.clone(),
            engines: opts.engines,
            subsystem: opts.subsystem.clone(),
            ..Default::default()
        },
        &mut cache,
        &trace,
    );
    if opts.cache_dir.is_some() {
        let save_span = trace.span("cache.save");
        if let Err(e) = cache.save() {
            eprintln!("refminer: warning: could not write cache: {e}");
        }
        drop(save_span);
    }
    if opts.eval {
        let eval_span = trace.span("eval");
        let code = run_eval(&opts, &project, &report);
        drop(eval_span);
        finish_trace(&opts, &trace);
        return code;
    }
    let findings: Vec<_> = report
        .findings
        .iter()
        .filter(|f| {
            opts.patterns
                .as_ref()
                .map(|ps| ps.contains(&f.pattern))
                .unwrap_or(true)
                && opts
                    .impacts
                    .as_ref()
                    .map(|is| is.contains(&f.impact))
                    .unwrap_or(true)
        })
        .collect();

    if opts.json {
        // The daemon's `query` responses reuse these exact renderers,
        // so its output can be diffed byte-for-byte against this path.
        for f in &findings {
            println!("{}", render_finding_line(f));
        }
        // A clean run emits findings only; the diagnostics line appears
        // exactly when something was lost, so its presence is itself
        // the signal.
        if let Some(line) = render_diagnostics_line(&report.diagnostics) {
            println!("{line}");
        }
    } else if opts.csv {
        let mut t = Table::new(vec![
            "file", "line", "pattern", "impact", "api", "function", "object",
        ]);
        for f in &findings {
            t.row(vec![
                f.file.clone(),
                f.line.to_string(),
                f.pattern.to_string(),
                f.impact.to_string(),
                f.api.clone(),
                f.function.clone(),
                f.object.clone().unwrap_or_default(),
            ]);
        }
        print!("{}", t.to_csv());
    } else {
        for f in &findings {
            println!("{f}");
        }
    }

    if opts.stats {
        eprintln!(
            "\nscanned {} files, {} functions, {} lines; {} finding(s)",
            report.files,
            report.functions,
            report.lines,
            findings.len()
        );
        let mut by_pattern = Table::new(vec!["pattern", "count"]).numeric();
        for (p, c) in report.by_pattern() {
            by_pattern.row(vec![p.to_string(), c.to_string()]);
        }
        eprint!("{}", by_pattern.render());
        let d = &report.diagnostics;
        eprintln!(
            "units: {} ok, {} degraded, {} skipped",
            d.ok, d.degraded, d.skipped
        );
        let c = &report.cache;
        eprintln!(
            "cache: {} hit(s), {} miss(es), hit rate {:.0}%",
            c.parse_hits + c.check_hits,
            c.parse_misses + c.check_misses,
            c.hit_rate() * 100.0
        );
        eprintln!(
            "summary cache: {} hit(s), {} miss(es), hit rate {:.0}%",
            c.export_hits,
            c.export_misses,
            c.export_hit_rate() * 100.0
        );
        eprintln!(
            "phases: {:.3}s parse, {:.3}s export+check",
            report.phase1_secs, report.phase2_secs
        );
        if !d.is_clean() {
            for (kind, count) in d.by_kind() {
                eprintln!("  {}: {count}", kind.name());
            }
            for u in &d.units {
                eprintln!("  {} [{}] {}", u.path, u.outcome.name(), u.detail);
            }
        }
    }

    finish_trace(&opts, &trace);

    if opts.strict && !report.diagnostics.is_clean() {
        if !opts.stats {
            let d = &report.diagnostics;
            eprintln!(
                "refminer: strict mode: {} degraded, {} skipped unit(s)",
                d.degraded, d.skipped
            );
        }
        return ExitCode::from(3);
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Drains the trace recorder: writes the JSON-lines span log to the
/// `--trace` file (if requested) and, under `--stats`, prints the
/// rendered summary — per-stage wall times, slowest units, per-checker
/// time and cache/scheduler counters — to stderr.
fn finish_trace(opts: &Options, trace: &TraceHandle) {
    let Some(log) = trace.finish() else { return };
    if let Some(path) = &opts.trace {
        if let Err(e) = std::fs::write(path, log.to_jsonl()) {
            eprintln!("refminer: warning: could not write trace: {e}");
        }
    }
    if opts.stats {
        eprint!("{}", log.summary(10).render_text());
    }
}

fn serve_usage() -> ! {
    eprintln!(
        "usage: refminer serve [--listen ADDR] [--socket PATH] [--cache-dir DIR] \
         [--jobs N] [--watch] [--poll-ms N] [--debounce-ms N] [--queue N] \
         [--deadline-ms N] [--inject-delay-ms N] [--no-discovery] [--trace FILE] <PATH>"
    );
    std::process::exit(2);
}

/// `refminer serve <DIR>`: the resident audit daemon. Prints
/// `listening on <addr>` once bound; stops on a `shutdown` RPC.
fn serve_main() -> ExitCode {
    let mut listen = "127.0.0.1:0".to_string();
    let mut socket: Option<PathBuf> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut jobs: usize = 0;
    let mut watch = false;
    let mut poll_ms: u64 = 300;
    let mut debounce_ms: u64 = 150;
    let mut queue: usize = 8;
    let mut deadline_ms: u64 = 30_000;
    let mut inject_delay_ms: u64 = 0;
    let mut discovery = true;
    let mut trace_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(2);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> u64 {
            let value = args.next().unwrap_or_else(|| serve_usage());
            value.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("{name} needs a non-negative integer, got `{value}`");
                serve_usage();
            })
        };
        match arg.as_str() {
            "-h" | "--help" => serve_usage(),
            "--listen" => listen = args.next().unwrap_or_else(|| serve_usage()),
            "--socket" => {
                socket = Some(PathBuf::from(args.next().unwrap_or_else(|| serve_usage())))
            }
            "--cache-dir" => {
                cache_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| serve_usage())))
            }
            "--trace" => {
                trace_path = Some(PathBuf::from(args.next().unwrap_or_else(|| serve_usage())))
            }
            "--jobs" => jobs = num("--jobs") as usize,
            "--watch" => watch = true,
            "--poll-ms" => poll_ms = num("--poll-ms"),
            "--debounce-ms" => debounce_ms = num("--debounce-ms"),
            "--queue" => queue = num("--queue").max(1) as usize,
            "--deadline-ms" => deadline_ms = num("--deadline-ms").max(1),
            "--inject-delay-ms" => inject_delay_ms = num("--inject-delay-ms"),
            "--no-discovery" => discovery = false,
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`");
                serve_usage();
            }
            other => {
                if root.is_some() {
                    serve_usage();
                }
                root = Some(PathBuf::from(other));
            }
        }
    }
    let root = root.unwrap_or_else(|| serve_usage());

    let mut cfg = ServeConfig::new(root);
    cfg.audit.jobs = jobs;
    cfg.audit.discover_apis = discovery;
    cfg.cache_dir = cache_dir;
    cfg.queue_capacity = queue;
    cfg.default_deadline_ms = deadline_ms;
    cfg.inject_audit_delay_ms = inject_delay_ms;
    if trace_path.is_some() {
        cfg.trace = TraceHandle::recording();
    }
    let opts = ServeOptions {
        listen,
        socket,
        watch: watch.then(|| WatchOptions {
            poll_ms,
            debounce_ms,
            ..Default::default()
        }),
        trace_path,
    };
    match run_serve(cfg, &opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("refminer serve: {e}");
            ExitCode::from(2)
        }
    }
}

fn rpc_usage() -> ! {
    eprintln!(
        "usage: refminer rpc <TARGET> <METHOD> [ARGS]\n\
         TARGET: host:port or unix:/path/to.sock\n\
         METHODS:\n\
           audit [--deadline-ms N]\n\
           auditdiff [--deadline-ms N]\n\
           reaudit [--deadline-ms N] <FILE>...\n\
           query [--subsystem S] [--pattern P] [--verdict V]\n\
           fixcheck [--deadline-ms N] <DIFF-FILE>\n\
           status\n\
           shutdown"
    );
    std::process::exit(2);
}

/// `refminer rpc <TARGET> <METHOD>`: one request against a running
/// daemon. `query` prints the finding lines raw (diffable against the
/// one-shot `--json` output); other methods print the result object.
/// Exit 0 on success, 1 on an RPC error response, 2 on usage/transport
/// problems.
fn rpc_main() -> ExitCode {
    let mut args = std::env::args().skip(2);
    let target = args.next().unwrap_or_else(|| rpc_usage());
    let method_name = args.next().unwrap_or_else(|| rpc_usage());
    let mut deadline_ms: Option<u64> = None;
    let mut files: Vec<String> = Vec::new();
    let mut filter = QueryFilter::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deadline-ms" => {
                let value = args.next().unwrap_or_else(|| rpc_usage());
                match value.parse::<u64>() {
                    Ok(n) => deadline_ms = Some(n),
                    Err(_) => rpc_usage(),
                }
            }
            "--subsystem" => filter.subsystem = Some(args.next().unwrap_or_else(|| rpc_usage())),
            "--pattern" => filter.pattern = Some(args.next().unwrap_or_else(|| rpc_usage())),
            "--verdict" => filter.verdict = Some(args.next().unwrap_or_else(|| rpc_usage())),
            other if other.starts_with('-') => rpc_usage(),
            other => files.push(other.to_string()),
        }
    }
    let method = match method_name.as_str() {
        "audit" => Method::Audit,
        "auditdiff" => Method::AuditDiff,
        "reaudit" => {
            if files.is_empty() {
                rpc_usage();
            }
            Method::Reaudit { files }
        }
        "query" => Method::Query(filter.clone()),
        "fixcheck" => {
            if files.len() != 1 {
                rpc_usage();
            }
            match std::fs::read_to_string(&files[0]) {
                Ok(diff) => Method::Fixcheck { diff },
                Err(e) => {
                    eprintln!("refminer rpc: cannot read {}: {e}", files[0]);
                    return ExitCode::from(2);
                }
            }
        }
        "status" => Method::Status,
        "shutdown" => Method::Shutdown,
        _ => rpc_usage(),
    };
    // `query`, `auditdiff` and `fixcheck` all print their lines raw:
    // the same bytes the corresponding one-shot `--json` mode prints.
    let is_query = matches!(
        method,
        Method::Query(_) | Method::AuditDiff | Method::Fixcheck { .. }
    );
    let request = Request {
        id: 1,
        method,
        deadline_ms,
    };
    let line = match rpc_roundtrip(&target, &encode_request(&request)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("refminer rpc: {target}: {e}");
            return ExitCode::from(2);
        }
    };
    let Ok(response) = Value::parse(&line) else {
        eprintln!("refminer rpc: malformed response: {line}");
        return ExitCode::from(2);
    };
    if response.get("ok").and_then(Value::as_bool) != Some(true) {
        println!("{line}");
        return ExitCode::from(1);
    }
    let result = response.get("result").cloned().unwrap_or(Value::Null);
    if is_query {
        // Raw finding lines plus the diagnostics line: the same bytes
        // the one-shot CLI's `--json` mode prints.
        if let Some(lines) = result.get("lines").and_then(Value::as_array) {
            for l in lines {
                if let Some(s) = l.as_str() {
                    println!("{s}");
                }
            }
        }
        if let Some(d) = result.get("diagnostics").and_then(Value::as_str) {
            println!("{d}");
        }
    } else {
        println!("{result}");
    }
    ExitCode::SUCCESS
}

fn diff_usage() -> ! {
    eprintln!(
        "usage: refminer diff [--json] [--jobs N] [--cache-dir DIR] [--no-sweep] <REV-A> <REV-B>"
    );
    std::process::exit(2);
}

/// `refminer diff <REV-A> <REV-B>`: audit two revision roots through
/// one shared cache and print only the findings delta. Exit 0 when the
/// commit is clean (nothing introduced, nothing left behind), 1 when
/// it is not, 2 on usage/scan errors.
fn diff_main() -> ExitCode {
    let mut json = false;
    let mut jobs: usize = 0;
    let mut cache_dir: Option<PathBuf> = None;
    let mut run_sweep = true;
    let mut roots: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(2);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => diff_usage(),
            "--json" => json = true,
            "--no-sweep" => run_sweep = false,
            "--jobs" => {
                let value = args.next().unwrap_or_else(|| diff_usage());
                match value.parse::<usize>() {
                    Ok(n) => jobs = n,
                    Err(_) => diff_usage(),
                }
            }
            "--cache-dir" => {
                cache_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| diff_usage())))
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`");
                diff_usage();
            }
            other => roots.push(PathBuf::from(other)),
        }
    }
    if roots.len() != 2 {
        diff_usage();
    }
    let mut cache = match &cache_dir {
        Some(dir) => AuditCache::with_dir(dir),
        None => AuditCache::new(),
    };
    let config = AuditConfig {
        jobs,
        ..Default::default()
    };
    let opts = DiffOptions { sweep: run_sweep };
    let report = match diff_audit(&roots[0], &roots[1], &config, &mut cache, &opts) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("refminer diff: {e}");
            return ExitCode::from(2);
        }
    };
    if cache_dir.is_some() {
        if let Err(e) = cache.save() {
            eprintln!("refminer diff: warning: could not write cache: {e}");
        }
    }
    let delta = &report.delta;
    if json {
        for line in render_diff_lines(delta) {
            println!("{line}");
        }
    } else {
        for f in &delta.introduced {
            println!("+ {f}");
        }
        for f in &delta.fixed {
            println!("- {f}");
        }
        for (from, to) in &delta.moved {
            println!(
                "~ {}:{} -> {}:{} {}",
                from.file, from.line, to.file, to.line, to.message
            );
        }
        for lb in &delta.left_behind {
            for m in &lb.matches {
                println!(
                    "! left behind ({}% match of {}:{}) {}",
                    m.score, lb.origin.file, lb.origin.line, m.finding
                );
            }
        }
        eprintln!(
            "{} introduced, {} fixed, {} moved, {} left behind",
            delta.introduced.len(),
            delta.fixed.len(),
            delta.moved.len(),
            delta.left_behind_total()
        );
    }
    if delta.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn sweep_usage() -> ! {
    eprintln!("usage: refminer sweep --at FILE:LINE [--json] [--jobs N] [--cache-dir DIR] <PATH>");
    std::process::exit(2);
}

/// `refminer sweep --at FILE:LINE <PATH>`: abstract the confirmed
/// finding at FILE:LINE (from a prior audit of the same tree) into a
/// template and rank every clone site that instantiates it with
/// different identifiers. Exit 0 when no clones match, 1 when some do,
/// 2 on usage/scan errors or when no finding exists at that site.
fn sweep_main() -> ExitCode {
    let mut at: Option<(String, u32)> = None;
    let mut json = false;
    let mut jobs: usize = 0;
    let mut cache_dir: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(2);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => sweep_usage(),
            "--json" => json = true,
            "--jobs" => {
                let value = args.next().unwrap_or_else(|| sweep_usage());
                match value.parse::<usize>() {
                    Ok(n) => jobs = n,
                    Err(_) => sweep_usage(),
                }
            }
            "--cache-dir" => {
                cache_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| sweep_usage())))
            }
            "--at" => {
                let value = args.next().unwrap_or_else(|| sweep_usage());
                let Some((file, line)) = value.rsplit_once(':') else {
                    eprintln!("--at needs FILE:LINE, got `{value}`");
                    sweep_usage();
                };
                match line.parse::<u32>() {
                    Ok(n) => at = Some((file.to_string(), n)),
                    Err(_) => {
                        eprintln!("--at needs FILE:LINE, got `{value}`");
                        sweep_usage();
                    }
                }
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`");
                sweep_usage();
            }
            other => {
                if root.is_some() {
                    sweep_usage();
                }
                root = Some(PathBuf::from(other));
            }
        }
    }
    let root = root.unwrap_or_else(|| sweep_usage());
    let Some((seed_file, seed_line)) = at else {
        sweep_usage()
    };
    let project = match Project::scan(&root) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("refminer sweep: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let mut cache = match &cache_dir {
        Some(dir) => AuditCache::with_dir(dir),
        None => AuditCache::new(),
    };
    let config = AuditConfig {
        jobs,
        ..Default::default()
    };
    let report = audit_with_cache(&project, &config, &mut cache);
    if cache_dir.is_some() {
        if let Err(e) = cache.save() {
            eprintln!("refminer sweep: warning: could not write cache: {e}");
        }
    }
    let Some(seed) = report
        .findings
        .iter()
        .find(|f| f.line == seed_line && (f.file == seed_file || f.file.ends_with(&seed_file)))
    else {
        eprintln!("refminer sweep: no finding at {seed_file}:{seed_line}");
        return ExitCode::from(2);
    };
    let source_of = |path: &str| -> Option<String> {
        project
            .units()
            .iter()
            .find(|u| u.path == path)
            .map(|u| u.text.clone())
    };
    let Some(seed_src) = source_of(&seed.file) else {
        eprintln!("refminer sweep: seed source {} not in tree", seed.file);
        return ExitCode::from(2);
    };
    let Some(template) = abstract_template(seed, &seed_src, &report.kb) else {
        eprintln!(
            "refminer sweep: could not abstract {}:{} into a template",
            seed.file, seed.line
        );
        return ExitCode::from(2);
    };
    let matches = refminer::sweep::sweep(&template, &report.findings, &report.kb, source_of);
    if json {
        println!("{}", obj([("template", template.to_json())]));
        for m in &matches {
            println!("{}", m.to_json());
        }
    } else {
        println!(
            "template: {} {} in {}:{} ({})",
            template.pattern,
            template.api,
            template.origin.file,
            template.origin.line,
            template.family
        );
        for m in &matches {
            println!("{:>3}% {}", m.score, m.finding);
        }
        eprintln!("{} clone site(s)", matches.len());
    }
    if matches.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn fixcheck_usage() -> ! {
    eprintln!("usage: refminer fixcheck [--json] [--jobs N] [--cache-dir DIR] <ROOT> <DIFF-FILE>");
    std::process::exit(2);
}

/// `refminer fixcheck <ROOT> <DIFF-FILE>`: parse a unified fix diff,
/// reconstruct the pre-fix tree by reverse-applying it onto ROOT (the
/// post-fix tree), audit both sides through one shared cache, and
/// report the anti-pattern sites the fix left behind — sibling error
/// paths and other call sites of the same API still matching the
/// fixed bug's template. Exit 0 when the fix is complete (nothing
/// left behind, nothing introduced), 1 when it is not, 2 on
/// usage/scan/diff errors.
fn fixcheck_main() -> ExitCode {
    let mut json = false;
    let mut jobs: usize = 0;
    let mut cache_dir: Option<PathBuf> = None;
    let mut positional: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(2);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => fixcheck_usage(),
            "--json" => json = true,
            "--jobs" => {
                let value = args.next().unwrap_or_else(|| fixcheck_usage());
                match value.parse::<usize>() {
                    Ok(n) => jobs = n,
                    Err(_) => fixcheck_usage(),
                }
            }
            "--cache-dir" => {
                cache_dir = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| fixcheck_usage()),
                ))
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`");
                fixcheck_usage();
            }
            other => positional.push(PathBuf::from(other)),
        }
    }
    if positional.len() != 2 {
        fixcheck_usage();
    }
    let (root, diff_path) = (&positional[0], &positional[1]);
    let diff_text = match std::fs::read_to_string(diff_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "refminer fixcheck: cannot read {}: {e}",
                diff_path.display()
            );
            return ExitCode::from(2);
        }
    };
    let mut cache = match &cache_dir {
        Some(dir) => AuditCache::with_dir(dir),
        None => AuditCache::new(),
    };
    let config = AuditConfig {
        jobs,
        ..Default::default()
    };
    let r = match refminer::fixcheck_audit(root, &diff_text, &config, &mut cache) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("refminer fixcheck: {e}");
            return ExitCode::from(2);
        }
    };
    if cache_dir.is_some() {
        if let Err(e) = cache.save() {
            eprintln!("refminer fixcheck: warning: could not write cache: {e}");
        }
    }
    if json {
        for line in refminer::render_fixcheck_lines(&r) {
            println!("{line}");
        }
    } else {
        for intent in &r.intents {
            let dir = match intent.dir {
                refminer::rcapi::RcDir::Inc => "acquire",
                refminer::rcapi::RcDir::Dec => "release",
            };
            println!(
                "intent: {} ({dir}) in {} [pairs: {}]",
                intent.api,
                intent.file,
                intent.acquires.join(", ")
            );
        }
        for f in &r.fixed {
            println!("- fixed {f}");
        }
        for f in &r.introduced {
            println!("+ introduced {f}");
        }
        for inc in &r.incomplete {
            for m in &inc.matches {
                println!(
                    "! left unfixed ({}% match of {}:{}) [{}] {}",
                    m.score,
                    inc.origin.file,
                    inc.origin.line,
                    m.finding.confidence().name(),
                    m.finding
                );
            }
        }
        eprintln!(
            "{} changed file(s): {} fixed, {} introduced, {} left unfixed",
            r.files_changed,
            r.fixed.len(),
            r.introduced.len(),
            r.incomplete_total()
        );
    }
    if r.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn history_usage() -> ! {
    eprintln!("usage: refminer history [--json] [--jobs N] [--cache-dir DIR] <ROOT>");
    std::process::exit(2);
}

/// `refminer history <ROOT>`: audit every release tree under ROOT
/// (labeled by `releases.json`, `history.json`, or sorted
/// subdirectories) through one shared cache and print findings per
/// KLoC per subsystem per release — the Faults-in-Linux Figure-1
/// fault-density methodology. Exit 0 on success, 2 on usage/scan
/// errors or when ROOT holds no revisions.
fn history_main() -> ExitCode {
    let mut json = false;
    let mut jobs: usize = 0;
    let mut cache_dir: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(2);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => history_usage(),
            "--json" => json = true,
            "--jobs" => {
                let value = args.next().unwrap_or_else(|| history_usage());
                match value.parse::<usize>() {
                    Ok(n) => jobs = n,
                    Err(_) => history_usage(),
                }
            }
            "--cache-dir" => {
                cache_dir = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| history_usage()),
                ))
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`");
                history_usage();
            }
            other => {
                if root.is_some() {
                    history_usage();
                }
                root = Some(PathBuf::from(other));
            }
        }
    }
    let root = root.unwrap_or_else(|| history_usage());
    let mut cache = match &cache_dir {
        Some(dir) => AuditCache::with_dir(dir),
        None => AuditCache::new(),
    };
    let config = AuditConfig {
        jobs,
        ..Default::default()
    };
    let report = match refminer::history_audit(&root, &config, &mut cache) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("refminer history: {e}");
            return ExitCode::from(2);
        }
    };
    if cache_dir.is_some() {
        if let Err(e) = cache.save() {
            eprintln!("refminer history: warning: could not write cache: {e}");
        }
    }
    if json {
        for line in refminer::render_history_lines(&report) {
            println!("{line}");
        }
    } else {
        let mut t =
            Table::new(vec!["release", "subsystem", "findings", "kloc", "per_kloc"]).numeric();
        for rel in &report.releases {
            for row in &rel.rows {
                t.row(vec![
                    rel.version.clone(),
                    row.subsystem.clone(),
                    row.findings.to_string(),
                    format!("{:.3}", row.lines as f64 / 1000.0),
                    format!("{:.3}", row.per_kloc()),
                ]);
            }
        }
        print!("{}", t.render());
        for rel in &report.releases {
            eprintln!(
                "{}: {} files, {} lines, {} finding(s), {} unit(s) re-parsed",
                rel.version, rel.files, rel.lines, rel.findings, rel.parse_misses
            );
        }
    }
    ExitCode::SUCCESS
}

/// `refminer eval --fixcheck <ROOT>`: replay every commit of a
/// `histgen` fix history through the fixcheck pipeline and score the
/// incomplete-fix reports against the manifests' clone-group ground
/// truth.
fn run_fixcheck_eval(opts: &Options) -> ExitCode {
    let config = AuditConfig {
        jobs: opts.jobs,
        ..Default::default()
    };
    let eval = match refminer::evaluate_fixcheck(&opts.path, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("refminer: eval --fixcheck: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.json {
        println!("{}", eval.to_json());
        return ExitCode::SUCCESS;
    }
    let mut t = Table::new(vec![
        "revision", "group", "expected", "found", "missed", "spurious",
    ])
    .numeric();
    for row in &eval.rows {
        t.row(vec![
            row.revision.clone(),
            row.group.clone().unwrap_or_else(|| "-".to_string()),
            row.expected.to_string(),
            row.counts.found.to_string(),
            row.counts.missed.to_string(),
            row.counts.spurious.to_string(),
        ]);
    }
    t.row(vec![
        "total".to_string(),
        "-".to_string(),
        "-".to_string(),
        eval.totals.found.to_string(),
        eval.totals.missed.to_string(),
        eval.totals.spurious.to_string(),
    ]);
    print!("{}", t.render());
    println!("recall: {:.3}", eval.totals.recall());
    ExitCode::SUCCESS
}

/// `refminer eval <DIR>`: score the audit's findings against the
/// ground-truth manifest the corpus generator wrote next to the tree.
/// Under `--sweep`, score the clone sweep against the manifest's clone
/// groups instead.
fn run_eval(opts: &Options, project: &Project, report: &refminer::AuditReport) -> ExitCode {
    let findings = &report.findings;
    let manifest_path = opts.path.join("manifest.json");
    let text = match std::fs::read_to_string(&manifest_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("refminer: cannot read {}: {e}", manifest_path.display());
            return ExitCode::from(2);
        }
    };
    let manifest = match Value::parse(&text)
        .ok()
        .as_ref()
        .and_then(Manifest::from_json)
    {
        Some(m) => m,
        None => {
            eprintln!(
                "refminer: {} is not a valid manifest",
                manifest_path.display()
            );
            return ExitCode::from(2);
        }
    };
    if opts.sweep_eval {
        let sweep_eval = refminer::evaluate_sweep(findings, &manifest, &report.kb, |path| {
            project
                .units()
                .iter()
                .find(|u| u.path == path)
                .map(|u| u.text.clone())
        });
        if opts.json {
            println!("{}", sweep_eval.to_json());
            return ExitCode::SUCCESS;
        }
        let mut t = Table::new(vec![
            "group", "pattern", "api", "found", "missed", "spurious", "recall",
        ])
        .numeric();
        for row in &sweep_eval.rows {
            t.row(vec![
                row.group.to_string(),
                row.pattern.id().to_string(),
                row.api.clone(),
                row.counts.found.to_string(),
                row.counts.missed.to_string(),
                row.counts.spurious.to_string(),
                format!("{:.3}", row.counts.recall()),
            ]);
        }
        for (p, c) in &sweep_eval.per_pattern {
            t.row(vec![
                "-".to_string(),
                p.id().to_string(),
                "-".to_string(),
                c.found.to_string(),
                c.missed.to_string(),
                c.spurious.to_string(),
                format!("{:.3}", c.recall()),
            ]);
        }
        let c = &sweep_eval.totals;
        t.row(vec![
            "total".to_string(),
            "-".to_string(),
            "-".to_string(),
            c.found.to_string(),
            c.missed.to_string(),
            c.spurious.to_string(),
            format!("{:.3}", c.recall()),
        ]);
        print!("{}", t.render());
        return ExitCode::SUCCESS;
    }
    let eval = evaluate_engines(findings, &manifest);
    if opts.json {
        println!("{}", eval.to_json());
        return ExitCode::SUCCESS;
    }
    let mut t = Table::new(vec![
        "pattern",
        "tp",
        "fp",
        "fn",
        "precision",
        "recall",
        "f1",
    ])
    .numeric();
    for row in &eval.combined.rows {
        t.row(vec![
            row.pattern.id().to_string(),
            row.counts.tp.to_string(),
            row.counts.fp.to_string(),
            row.counts.missed.to_string(),
            format!("{:.3}", row.counts.precision()),
            format!("{:.3}", row.counts.recall()),
            format!("{:.3}", row.counts.f1()),
        ]);
    }
    t.row(vec![
        "total".to_string(),
        eval.combined.totals.tp.to_string(),
        eval.combined.totals.fp.to_string(),
        eval.combined.totals.missed.to_string(),
        format!("{:.3}", eval.combined.totals.precision()),
        format!("{:.3}", eval.combined.totals.recall()),
        format!("{:.3}", eval.combined.totals.f1()),
    ]);
    for (engine, report) in &eval.per_engine {
        t.row(vec![
            engine.name().to_string(),
            report.totals.tp.to_string(),
            report.totals.fp.to_string(),
            report.totals.missed.to_string(),
            format!("{:.3}", report.totals.precision()),
            format!("{:.3}", report.totals.recall()),
            format!("{:.3}", report.totals.f1()),
        ]);
    }
    print!("{}", t.render());
    let conf: Vec<String> = eval
        .confidence
        .iter()
        .map(|(c, n)| format!("{} {n}", c.name()))
        .collect();
    println!("confidence: {}", conf.join(", "));
    println!("trap hits: {}", eval.combined.trap_hits);
    ExitCode::SUCCESS
}

//! The `refminer` command-line tool: audit a C source tree for
//! refcounting bugs with the nine anti-pattern checkers.
//!
//! ```text
//! refminer [OPTIONS] <PATH>
//! refminer eval [OPTIONS] <PATH>     score the audit against <PATH>/manifest.json
//!
//! OPTIONS:
//!     --pattern <P1..P9>[,..]  only report these anti-patterns (report filter)
//!     --only-pattern <P1..>[,..] only *run* these patterns' checkers
//!     --subsystem <PREFIX>     only audit units under this path prefix
//!     --impact <leak|uaf|npd>  only report these impacts
//!     --no-feasibility         keep findings on infeasible paths
//!     --json                   emit findings (or the eval report) as JSON
//!     --csv                    emit findings as CSV
//!     --no-discovery           skip API/smartloop discovery
//!     --stats                  print per-pattern/per-impact summaries, plus
//!                              the trace summary (per-stage times, slowest
//!                              units, per-checker time, cache hit rates)
//!     --trace <FILE>           write a structured span/counter log (JSON
//!                              lines) covering every pipeline stage
//!     --strict                 exit 3 if any unit was degraded/skipped
//!     --max-file-bytes <N>     skip files larger than N bytes
//!     --jobs <N>               worker threads (0 = one per CPU, default)
//!     --cache-dir <DIR>        persist per-unit results across runs
//!     -h, --help               print this help
//! ```
//!
//! `--pattern` filters the report after the fact; `--only-pattern`
//! narrows which checkers run at all (and keys the result cache, so
//! narrowed runs never poison full-run entries).
//!
//! Exit codes: 0 no findings, 1 findings, 2 usage/scan error, 3 strict
//! mode and at least one unit was not fully analyzed.

use std::path::PathBuf;
use std::process::ExitCode;

use refminer::checkers::{AntiPattern, Impact};
use refminer::corpus::Manifest;
use refminer::report::Table;
use refminer::{
    audit_traced, evaluate, AuditCache, AuditConfig, AuditLimits, Project, ScanOptions, TraceHandle,
};
use refminer_json::{obj, ToJson, Value};

struct Options {
    eval: bool,
    path: PathBuf,
    patterns: Option<Vec<AntiPattern>>,
    only_patterns: Option<Vec<AntiPattern>>,
    subsystem: Option<String>,
    impacts: Option<Vec<Impact>>,
    feasibility: bool,
    json: bool,
    csv: bool,
    discovery: bool,
    stats: bool,
    strict: bool,
    trace: Option<PathBuf>,
    max_file_bytes: Option<u64>,
    jobs: usize,
    cache_dir: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: refminer [eval] [--pattern P4,P8] [--only-pattern P4,P8] \
         [--subsystem PREFIX] [--impact leak,uaf,npd] [--no-feasibility] \
         [--json|--csv] [--no-discovery] [--stats] [--strict] [--trace FILE] \
         [--max-file-bytes N] [--jobs N] [--cache-dir DIR] <PATH>"
    );
    std::process::exit(2);
}

fn parse_pattern(s: &str) -> Option<AntiPattern> {
    AntiPattern::all()
        .into_iter()
        .find(|p| p.id().eq_ignore_ascii_case(s))
}

fn parse_impact(s: &str) -> Option<Impact> {
    match s.to_ascii_lowercase().as_str() {
        "leak" => Some(Impact::Leak),
        "uaf" => Some(Impact::Uaf),
        "npd" => Some(Impact::Npd),
        _ => None,
    }
}

fn parse_args() -> Options {
    let mut opts = Options {
        eval: false,
        path: PathBuf::new(),
        patterns: None,
        only_patterns: None,
        subsystem: None,
        impacts: None,
        feasibility: true,
        json: false,
        csv: false,
        discovery: true,
        stats: false,
        strict: false,
        trace: None,
        max_file_bytes: None,
        jobs: 0,
        cache_dir: None,
    };
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("eval") {
        opts.eval = true;
        args.next();
    }
    let mut args = args;
    let mut path: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => usage(),
            "--json" => opts.json = true,
            "--csv" => opts.csv = true,
            "--no-discovery" => opts.discovery = false,
            "--no-feasibility" => opts.feasibility = false,
            "--stats" => opts.stats = true,
            "--strict" => opts.strict = true,
            "--jobs" => {
                let value = args.next().unwrap_or_else(|| usage());
                match value.parse::<usize>() {
                    Ok(n) => opts.jobs = n,
                    Err(_) => {
                        eprintln!("--jobs needs a non-negative integer, got `{value}`");
                        usage();
                    }
                }
            }
            "--cache-dir" => {
                let value = args.next().unwrap_or_else(|| usage());
                opts.cache_dir = Some(PathBuf::from(value));
            }
            "--trace" => {
                let value = args.next().unwrap_or_else(|| usage());
                opts.trace = Some(PathBuf::from(value));
            }
            "--max-file-bytes" => {
                let value = args.next().unwrap_or_else(|| usage());
                match value.parse::<u64>() {
                    Ok(n) if n > 0 => opts.max_file_bytes = Some(n),
                    _ => {
                        eprintln!("--max-file-bytes needs a positive integer, got `{value}`");
                        usage();
                    }
                }
            }
            "--pattern" => {
                let value = args.next().unwrap_or_else(|| usage());
                let parsed: Option<Vec<AntiPattern>> =
                    value.split(',').map(parse_pattern).collect();
                match parsed {
                    Some(v) => opts.patterns = Some(v),
                    None => {
                        eprintln!("unknown anti-pattern in `{value}`");
                        usage();
                    }
                }
            }
            "--only-pattern" => {
                let value = args.next().unwrap_or_else(|| usage());
                let parsed: Option<Vec<AntiPattern>> =
                    value.split(',').map(parse_pattern).collect();
                match parsed {
                    Some(v) if !v.is_empty() => opts.only_patterns = Some(v),
                    _ => {
                        eprintln!("unknown anti-pattern in `{value}`");
                        usage();
                    }
                }
            }
            "--subsystem" => {
                let value = args.next().unwrap_or_else(|| usage());
                opts.subsystem = Some(value);
            }
            "--impact" => {
                let value = args.next().unwrap_or_else(|| usage());
                let parsed: Option<Vec<Impact>> = value.split(',').map(parse_impact).collect();
                match parsed {
                    Some(v) => opts.impacts = Some(v),
                    None => {
                        eprintln!("unknown impact in `{value}`");
                        usage();
                    }
                }
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`");
                usage();
            }
            other => {
                if path.is_some() {
                    usage();
                }
                path = Some(PathBuf::from(other));
            }
        }
    }
    opts.path = path.unwrap_or_else(|| usage());
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    // Recording is observation-only (findings are byte-identical either
    // way), so `--stats` alone also gets the full trace summary.
    let trace = if opts.trace.is_some() || opts.stats {
        TraceHandle::recording()
    } else {
        TraceHandle::disabled()
    };
    let mut scan_opts = ScanOptions::default();
    if let Some(n) = opts.max_file_bytes {
        scan_opts.max_file_bytes = n;
    }
    let scan_span = trace.span("scan");
    let project = match Project::scan_with(&opts.path, &scan_opts) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("refminer: cannot scan {}: {e}", opts.path.display());
            return ExitCode::from(2);
        }
    };
    if project.units().is_empty() && project.scan_diagnostics().is_empty() {
        eprintln!("refminer: no .c/.h files under {}", opts.path.display());
        return ExitCode::from(2);
    }
    drop(scan_span);
    let mut limits = AuditLimits::default();
    if let Some(n) = opts.max_file_bytes {
        limits.max_file_bytes = n as usize;
    }
    let cache_span = trace.span("cache.load");
    let mut cache = match &opts.cache_dir {
        Some(dir) => AuditCache::with_dir(dir),
        None => AuditCache::new(),
    };
    drop(cache_span);
    let report = audit_traced(
        &project,
        &AuditConfig {
            discover_apis: opts.discovery,
            limits,
            jobs: opts.jobs,
            feasibility: opts.feasibility,
            only_patterns: opts.only_patterns.clone(),
            subsystem: opts.subsystem.clone(),
            ..Default::default()
        },
        &mut cache,
        &trace,
    );
    if opts.cache_dir.is_some() {
        let save_span = trace.span("cache.save");
        if let Err(e) = cache.save() {
            eprintln!("refminer: warning: could not write cache: {e}");
        }
        drop(save_span);
    }
    if opts.eval {
        let eval_span = trace.span("eval");
        let code = run_eval(&opts, &report.findings);
        drop(eval_span);
        finish_trace(&opts, &trace);
        return code;
    }
    let findings: Vec<_> = report
        .findings
        .iter()
        .filter(|f| {
            opts.patterns
                .as_ref()
                .map(|ps| ps.contains(&f.pattern))
                .unwrap_or(true)
                && opts
                    .impacts
                    .as_ref()
                    .map(|is| is.contains(&f.impact))
                    .unwrap_or(true)
        })
        .collect();

    if opts.json {
        for f in &findings {
            println!("{}", f.to_json());
        }
        // A clean run emits findings only; the diagnostics line appears
        // exactly when something was lost, so its presence is itself
        // the signal.
        if !report.diagnostics.is_clean() {
            let units: Vec<Value> = report
                .diagnostics
                .units
                .iter()
                .map(|u| {
                    obj([
                        ("path", Value::Str(u.path.clone())),
                        ("outcome", Value::Str(u.outcome.name().to_string())),
                        (
                            "errors",
                            Value::Arr(
                                u.errors
                                    .iter()
                                    .map(|e| Value::Str(e.name().to_string()))
                                    .collect(),
                            ),
                        ),
                        ("detail", Value::Str(u.detail.clone())),
                    ])
                })
                .collect();
            let line = obj([(
                "diagnostics",
                obj([
                    ("ok", Value::Num(report.diagnostics.ok as f64)),
                    ("degraded", Value::Num(report.diagnostics.degraded as f64)),
                    ("skipped", Value::Num(report.diagnostics.skipped as f64)),
                    ("units", Value::Arr(units)),
                ]),
            )]);
            println!("{line}");
        }
    } else if opts.csv {
        let mut t = Table::new(vec![
            "file", "line", "pattern", "impact", "api", "function", "object",
        ]);
        for f in &findings {
            t.row(vec![
                f.file.clone(),
                f.line.to_string(),
                f.pattern.to_string(),
                f.impact.to_string(),
                f.api.clone(),
                f.function.clone(),
                f.object.clone().unwrap_or_default(),
            ]);
        }
        print!("{}", t.to_csv());
    } else {
        for f in &findings {
            println!("{f}");
        }
    }

    if opts.stats {
        eprintln!(
            "\nscanned {} files, {} functions, {} lines; {} finding(s)",
            report.files,
            report.functions,
            report.lines,
            findings.len()
        );
        let mut by_pattern = Table::new(vec!["pattern", "count"]).numeric();
        for (p, c) in report.by_pattern() {
            by_pattern.row(vec![p.to_string(), c.to_string()]);
        }
        eprint!("{}", by_pattern.render());
        let d = &report.diagnostics;
        eprintln!(
            "units: {} ok, {} degraded, {} skipped",
            d.ok, d.degraded, d.skipped
        );
        let c = &report.cache;
        eprintln!(
            "cache: {} hit(s), {} miss(es), hit rate {:.0}%",
            c.parse_hits + c.check_hits,
            c.parse_misses + c.check_misses,
            c.hit_rate() * 100.0
        );
        eprintln!(
            "summary cache: {} hit(s), {} miss(es), hit rate {:.0}%",
            c.export_hits,
            c.export_misses,
            c.export_hit_rate() * 100.0
        );
        eprintln!(
            "phases: {:.3}s parse+export, {:.3}s check",
            report.phase1_secs, report.phase2_secs
        );
        if !d.is_clean() {
            for (kind, count) in d.by_kind() {
                eprintln!("  {}: {count}", kind.name());
            }
            for u in &d.units {
                eprintln!("  {} [{}] {}", u.path, u.outcome.name(), u.detail);
            }
        }
    }

    finish_trace(&opts, &trace);

    if opts.strict && !report.diagnostics.is_clean() {
        if !opts.stats {
            let d = &report.diagnostics;
            eprintln!(
                "refminer: strict mode: {} degraded, {} skipped unit(s)",
                d.degraded, d.skipped
            );
        }
        return ExitCode::from(3);
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Drains the trace recorder: writes the JSON-lines span log to the
/// `--trace` file (if requested) and, under `--stats`, prints the
/// rendered summary — per-stage wall times, slowest units, per-checker
/// time and cache/scheduler counters — to stderr.
fn finish_trace(opts: &Options, trace: &TraceHandle) {
    let Some(log) = trace.finish() else { return };
    if let Some(path) = &opts.trace {
        if let Err(e) = std::fs::write(path, log.to_jsonl()) {
            eprintln!("refminer: warning: could not write trace: {e}");
        }
    }
    if opts.stats {
        eprint!("{}", log.summary(10).render_text());
    }
}

/// `refminer eval <DIR>`: score the audit's findings against the
/// ground-truth manifest the corpus generator wrote next to the tree.
fn run_eval(opts: &Options, findings: &[refminer::Finding]) -> ExitCode {
    let manifest_path = opts.path.join("manifest.json");
    let text = match std::fs::read_to_string(&manifest_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("refminer: cannot read {}: {e}", manifest_path.display());
            return ExitCode::from(2);
        }
    };
    let manifest = match Value::parse(&text)
        .ok()
        .as_ref()
        .and_then(Manifest::from_json)
    {
        Some(m) => m,
        None => {
            eprintln!(
                "refminer: {} is not a valid manifest",
                manifest_path.display()
            );
            return ExitCode::from(2);
        }
    };
    let eval = evaluate(findings, &manifest);
    if opts.json {
        println!("{}", eval.to_json());
        return ExitCode::SUCCESS;
    }
    let mut t = Table::new(vec![
        "pattern",
        "tp",
        "fp",
        "fn",
        "precision",
        "recall",
        "f1",
    ])
    .numeric();
    for row in &eval.rows {
        t.row(vec![
            row.pattern.id().to_string(),
            row.counts.tp.to_string(),
            row.counts.fp.to_string(),
            row.counts.missed.to_string(),
            format!("{:.3}", row.counts.precision()),
            format!("{:.3}", row.counts.recall()),
            format!("{:.3}", row.counts.f1()),
        ]);
    }
    t.row(vec![
        "total".to_string(),
        eval.totals.tp.to_string(),
        eval.totals.fp.to_string(),
        eval.totals.missed.to_string(),
        format!("{:.3}", eval.totals.precision()),
        format!("{:.3}", eval.totals.recall()),
        format!("{:.3}", eval.totals.f1()),
    ]);
    print!("{}", t.render());
    println!("trap hits: {}", eval.trap_hits);
    ExitCode::SUCCESS
}

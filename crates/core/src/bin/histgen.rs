//! The `histgen` tool: write a simulated revision corpus to disk.
//!
//! Two modes:
//!
//! - **Fix history** (default): a base tree with injected clone
//!   groups, then one partial-fix commit per group that repairs only
//!   the first clone site, then a neutral refactor commit. Input for
//!   `refminer diff`/`fixcheck` smoke tests, `eval --fixcheck`, and
//!   the diff-audit benchmark.
//! - **Release history** (`--releases N`): a seeded v2.6.12 → v6.x
//!   release sequence with per-release LoC growth (one fresh replica
//!   stamped per release) and one partial clone-group fix per release
//!   while groups remain. Input for `refminer history`.
//!
//! ```text
//! histgen [OPTIONS] <OUTDIR>
//!
//! OPTIONS:
//!     --seed <N>           tree seed (default 7)
//!     --scale <F>          tree scale factor (default 0.05)
//!     --clone-groups <N>   injected clone groups (default 3)
//!     --fp-traps           also inject feasibility FP traps
//!     --releases <N>       write an N-release history instead
//!     -h, --help           print this help
//! ```
//!
//! Fix-history mode writes full snapshots under `<OUTDIR>/rev00/`,
//! `<OUTDIR>/rev01/`, … plus `history.json`; release mode writes
//! `<OUTDIR>/rel00/`, … plus `releases.json` with version labels.

use std::path::PathBuf;
use std::process::ExitCode;

use refminer::corpus::{
    generate_fix_history, generate_release_history, ReleaseHistoryConfig, TreeConfig,
};
use refminer_json::{obj, ToJson, Value};

fn usage() -> ! {
    eprintln!(
        "usage: histgen [--seed N] [--scale F] [--clone-groups N] [--fp-traps] [--releases N] <OUTDIR>"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut seed: u64 = 7;
    let mut scale: f64 = 0.05;
    let mut clone_groups: usize = 3;
    let mut fp_traps = false;
    let mut releases: Option<usize> = None;
    let mut out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => usage(),
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                scale = v.parse().unwrap_or_else(|_| usage());
            }
            "--clone-groups" => {
                let v = args.next().unwrap_or_else(|| usage());
                clone_groups = v.parse().unwrap_or_else(|_| usage());
            }
            "--fp-traps" => fp_traps = true,
            "--releases" => {
                let v = args.next().unwrap_or_else(|| usage());
                let n: usize = v.parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    eprintln!("histgen: --releases needs at least 1");
                    return ExitCode::from(2);
                }
                releases = Some(n);
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`");
                usage();
            }
            other => {
                if out.is_some() {
                    usage();
                }
                out = Some(PathBuf::from(other));
            }
        }
    }
    let out = out.unwrap_or_else(|| usage());

    if let Some(n) = releases {
        let revs = generate_release_history(&ReleaseHistoryConfig {
            seed,
            scale,
            releases: n,
            clone_groups,
        });
        let mut entries: Vec<Value> = Vec::new();
        for (i, rev) in revs.iter().enumerate() {
            let dir_name = format!("rel{i:02}");
            let dir = out.join(&dir_name);
            if let Err(e) = rev.tree.write_to(&dir) {
                eprintln!("histgen: cannot write {}: {e}", dir.display());
                return ExitCode::from(2);
            }
            entries.push(obj([
                ("version", rev.version.as_str().into()),
                ("dir", dir_name.as_str().into()),
                ("added_files", rev.added_files.to_json()),
            ]));
        }
        let listing = obj([
            ("seed", seed.to_json()),
            ("clone_groups", clone_groups.to_json()),
            ("releases", Value::Arr(entries)),
        ]);
        if let Err(e) = std::fs::write(out.join("releases.json"), listing.to_string_pretty()) {
            eprintln!("histgen: cannot write releases.json: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {} release(s) under {}", revs.len(), out.display());
        return ExitCode::SUCCESS;
    }

    let revs = generate_fix_history(&TreeConfig {
        seed,
        scale,
        clone_groups,
        fp_traps,
        ..Default::default()
    });

    let mut entries: Vec<Value> = Vec::new();
    for (i, rev) in revs.iter().enumerate() {
        let dir_name = format!("rev{i:02}");
        let dir = out.join(&dir_name);
        if let Err(e) = rev.tree.write_to(&dir) {
            eprintln!("histgen: cannot write {}: {e}", dir.display());
            return ExitCode::from(2);
        }
        let fixed: Vec<Value> = rev
            .fixed
            .iter()
            .map(|(group, path, function)| {
                obj([
                    ("group", group.as_str().into()),
                    ("path", path.as_str().into()),
                    ("function", function.as_str().into()),
                ])
            })
            .collect();
        entries.push(obj([
            ("id", rev.id.as_str().into()),
            ("dir", dir_name.as_str().into()),
            ("message", rev.message.as_str().into()),
            ("fixed", Value::Arr(fixed)),
        ]));
    }
    let history = obj([
        ("seed", seed.to_json()),
        ("clone_groups", clone_groups.to_json()),
        ("revisions", Value::Arr(entries)),
    ]);
    if let Err(e) = std::fs::write(out.join("history.json"), history.to_string_pretty()) {
        eprintln!("histgen: cannot write history.json: {e}");
        return ExitCode::from(2);
    }
    println!("wrote {} revision(s) under {}", revs.len(), out.display());
    ExitCode::SUCCESS
}

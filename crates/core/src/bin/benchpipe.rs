//! The `benchpipe` tool: measure the audit pipeline's parallel speedup
//! and incremental-cache behavior on a synthetic tree, and write the
//! numbers to a JSON report.
//!
//! ```text
//! benchpipe [OPTIONS]
//!
//! OPTIONS:
//!     --scale <F>    tree scale factor (default 1.0, ~350 files)
//!     --big          kernel-scale mode: replicate the tree into a
//!                    ~10k-file / ~1 MLoC corpus (see --replicas)
//!     --replicas <N> replica count for --big (default 100)
//!     --jobs <N>     parallel worker count (default: one per CPU)
//!     --edits <N>    files edited for the incremental run (default 1)
//!     --reps <N>     repetitions per configuration, best kept (default 3)
//!     --out <FILE>   JSON report path (default BENCH_pipeline.json)
//!     --check        enforce the speedup gates (exit 1 on failure)
//!     --eval         precision/recall mode: score feasibility on vs off
//!                    against an FP-trap tree (default out BENCH_eval.json)
//!     --baseline <F> with --eval --check: committed template-only F1
//!                    floor the combined two-engine run must meet
//!     -h, --help     print this help
//! ```
//!
//! The report (schema 7) records, against one tree:
//!
//! 1. `scaling` — a cold/warm wall-time curve over the worker-count
//!    ladder {1, 2, 4, `--jobs`} clamped to the available parallelism.
//!    The `cold_jobs1` / `cold_jobsN` / `warm` runs are the curve's end
//!    points; a single-core host measures only the `jobs=1` rung.
//! 2. `incremental` — `--edits` files mutated, warm cache: only the
//!    edited units re-run.
//! 3. `cold_barrier_secs` / `streaming_speedup` — the same cold
//!    parallel run with the streaming phase-1→phase-2 handoff disabled,
//!    so the overlap's win over the classic full-barrier pipeline is a
//!    recorded number, not a claim.
//! 4. `warm_load_*` — the warm cache serialized once, then loaded back
//!    both ways: the binary container (validate + index, payloads
//!    lazy) versus the JSON-era document (full parse). This is the
//!    cache-format comparison: identical content, both formats.
//! 5. `diff` — a simulated fix history replayed through the
//!    incremental differ: per-commit diff-audit wall time, the
//!    left-behind sweep's share of it, and the delta counts, all
//!    against one shared per-unit cache (so every commit after the
//!    first is a warm incremental diff, exactly the CI shape).
//! 6. `fixcheck` — the same fix history replayed through the
//!    incomplete-fix checker: each commit rendered to a unified diff,
//!    reverse-applied, and both sides audited through one shared
//!    cache; per-commit wall time plus the fixed/incomplete verdicts.
//! 7. `history` — a seeded release ladder audited release-over-release
//!    through one shared cache: per-release wall time and re-parse
//!    counts, pinning the delta-only property `refminer history`
//!    depends on.
//!
//! With `--check`, the warm run must be ≥5× faster than cold at the
//! same job count, and the incremental run must re-parse exactly the
//! edited units. Host-dependent gates say SKIP explicitly rather than
//! silently passing, and the report records each one as `"enforced"`
//! or `"skipped"`: the ≥2× parallel gate and the streaming-beats-
//! barrier gate need at least four hardware threads; the binary-load
//! ≥3× gate needs a tree big enough (≥1000 files) for load time to
//! dominate constant costs. On a single-core host the parallel
//! configurations are not measured at all (worker counts clamp to the
//! available parallelism, so they would be the sequential run again).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use refminer::corpus::{
    generate_big_tree, generate_fix_history, generate_release_history, generate_tree,
    next_revision, BigTreeConfig, ReleaseHistoryConfig, TreeConfig,
};
use refminer::parallel::effective_jobs;
use refminer::{
    audit_traced, audit_with_cache, diff_delta, diff_projects, evaluate, evaluate_engines,
    fixcheck_project, render_file_diff, AuditCache, AuditConfig, AuditReport, DiffOptions,
    EngineSet, Project, TraceHandle, TraceSummary,
};
use refminer_json::{obj, ToJson, Value};

fn usage() -> ! {
    eprintln!(
        "usage: benchpipe [--scale F] [--big [--replicas N]] [--jobs N] [--edits N] [--reps N] \
         [--out FILE] [--check] [--eval [--baseline F]]"
    );
    std::process::exit(2);
}

struct Options {
    scale: f64,
    big: bool,
    replicas: usize,
    jobs: usize,
    edits: usize,
    reps: usize,
    out: Option<PathBuf>,
    check: bool,
    eval: bool,
    baseline: Option<f64>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        scale: 1.0,
        big: false,
        replicas: 100,
        jobs: 0,
        edits: 1,
        reps: 3,
        out: None,
        check: false,
        eval: false,
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("benchpipe: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--scale" => match num("--scale").parse() {
                Ok(v) => opts.scale = v,
                Err(_) => usage(),
            },
            "--big" => opts.big = true,
            "--replicas" => match num("--replicas").parse::<usize>() {
                Ok(v) if v > 0 => opts.replicas = v,
                _ => usage(),
            },
            "--jobs" => match num("--jobs").parse() {
                Ok(v) => opts.jobs = v,
                Err(_) => usage(),
            },
            "--edits" => match num("--edits").parse() {
                Ok(v) => opts.edits = v,
                Err(_) => usage(),
            },
            "--reps" => match num("--reps").parse::<usize>() {
                Ok(v) if v > 0 => opts.reps = v,
                _ => usage(),
            },
            "--out" => opts.out = Some(PathBuf::from(num("--out"))),
            "--check" => opts.check = true,
            "--eval" => opts.eval = true,
            "--baseline" => match num("--baseline").parse::<f64>() {
                Ok(v) if (0.0..=1.0).contains(&v) => opts.baseline = Some(v),
                _ => usage(),
            },
            "-h" | "--help" => usage(),
            other => {
                eprintln!("benchpipe: unknown argument {other}");
                usage()
            }
        }
    }
    opts
}

/// One timed configuration: best-of-`reps` wall time plus the report
/// and trace summary of the final repetition.
struct Measured {
    secs: f64,
    report: AuditReport,
    summary: TraceSummary,
}

/// Runs one traced audit, returning the report and the trace summary.
/// Recording is observation-only, so every configuration is measured
/// under the same (negligible) instrumentation cost.
fn traced_run(project: &Project, config: &AuditConfig, cache: &mut AuditCache) -> Measured {
    let trace = TraceHandle::recording();
    let t = Instant::now();
    let report = audit_traced(project, config, cache, &trace);
    let secs = t.elapsed().as_secs_f64();
    let summary = trace.finish().map(|log| log.summary(0)).unwrap_or_default();
    Measured {
        secs,
        report,
        summary,
    }
}

fn measure(
    reps: usize,
    project: &Project,
    config: &AuditConfig,
    mut cache_for_rep: impl FnMut() -> AuditCache,
) -> (Measured, AuditCache) {
    let mut best = f64::INFINITY;
    let mut last: Option<(Measured, AuditCache)> = None;
    for _ in 0..reps {
        let mut cache = cache_for_rep();
        let m = traced_run(project, config, &mut cache);
        best = best.min(m.secs);
        last = Some((m, cache));
    }
    let (mut m, cache) = last.expect("reps > 0");
    m.secs = best;
    (m, cache)
}

/// Per-stage wall times read off the run's trace summary (schema 3);
/// schema 6 adds the phase-2 engine split from the `engine.*.us`
/// counters, so the delta engine's cost rides in every run's record.
fn stage_json(s: &TraceSummary) -> Value {
    let sec = |stage: &str| (s.stage_total_us(stage) as f64 / 1e6).to_json();
    let counter_sec =
        |name: &str| (s.counters.get(name).copied().unwrap_or(0) as f64 / 1e6).to_json();
    let merge = (s.stage_total_us("merge.kb") + s.stage_total_us("merge.progdb")) as f64 / 1e6;
    obj([
        ("hash_secs", sec("hash")),
        ("parse_secs", sec("parse")),
        ("export_secs", sec("export")),
        ("merge_secs", merge.to_json()),
        ("check_secs", sec("check")),
        ("engine_template_secs", counter_sec("engine.template.us")),
        ("engine_delta_secs", counter_sec("engine.delta.us")),
        ("report_secs", sec("report")),
        ("feasibility_secs", sec("feasibility")),
    ])
}

fn run_json(name: &str, m: &Measured, files: usize) -> (String, Value) {
    (
        name.to_string(),
        obj([
            ("secs", m.secs.to_json()),
            ("units_per_sec", (files as f64 / m.secs.max(1e-9)).to_json()),
            ("phase1_secs", m.report.phase1_secs.to_json()),
            ("phase2_secs", m.report.phase2_secs.to_json()),
            ("stages", stage_json(&m.summary)),
            ("findings", m.report.findings.len().to_json()),
            ("cache", m.report.cache.to_json()),
        ]),
    )
}

fn main() -> ExitCode {
    let opts = parse_args();
    if opts.eval {
        return run_eval(&opts);
    }
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_pipeline.json"));
    // `effective_jobs` clamps to the available parallelism, so on a
    // single-core host this resolves to 1 and the "parallel"
    // configuration collapses into the sequential one (and is skipped
    // below rather than measured twice).
    let jobs = effective_jobs(opts.jobs);
    let cores = effective_jobs(0);

    let tree = if opts.big {
        generate_big_tree(&BigTreeConfig {
            replicas: opts.replicas,
            scale: opts.scale,
            ..Default::default()
        })
    } else {
        generate_tree(&TreeConfig {
            scale: opts.scale,
            bugs_per_file: 1,
            include_tricky: false,
            ..Default::default()
        })
    };
    let files = tree.files.len();
    let project = Project::from_tree(&tree);
    eprintln!(
        "benchpipe: {} files ({} lines), jobs={jobs}, cores={cores}, reps={}{}",
        files,
        tree.total_lines(),
        opts.reps,
        if opts.big { " [big]" } else { "" },
    );

    // Big trees drop retained ASTs right after parse: no cache layer
    // ever persists them, and holding ~1 MLoC of ASTs in memory would
    // swamp what the benchmark is trying to measure.
    let base_cfg = AuditConfig {
        discover_apis: true,
        retain_asts: !opts.big,
        ..Default::default()
    };
    let cfg_at = |j: usize| AuditConfig {
        jobs: j,
        ..base_cfg.clone()
    };

    // The worker-count ladder {1, 2, 4, N}, clamped to the host so no
    // rung is oversubscription noise. A single-core host measures only
    // the sequential rung.
    let mut ladder: Vec<usize> = [1usize, 2, 4, jobs]
        .into_iter()
        .filter(|&j| j <= cores)
        .collect();
    ladder.sort_unstable();
    ladder.dedup();

    struct Rung {
        jobs: usize,
        cold: Measured,
        warm: Measured,
    }
    let mut rungs: Vec<Rung> = Vec::new();
    let mut rung_caches: Vec<AuditCache> = Vec::new();
    for &j in &ladder {
        let cfg = cfg_at(j);
        let (cold, mut cache) = measure(opts.reps, &project, &cfg, AuditCache::new);
        let warm = {
            let mut best = f64::INFINITY;
            let mut last = None;
            for _ in 0..opts.reps {
                let m = traced_run(&project, &cfg, &mut cache);
                best = best.min(m.secs);
                last = Some(m);
            }
            let mut m = last.expect("reps > 0");
            m.secs = best;
            m
        };
        rungs.push(Rung {
            jobs: j,
            cold,
            warm,
        });
        rung_caches.push(cache);
    }
    let jobs_idx = ladder
        .iter()
        .position(|&j| j == jobs)
        .expect("jobs rung is on the ladder");
    let cold_seq = &rungs[0].cold;
    let cold_par = (jobs >= 2).then(|| &rungs[jobs_idx].cold);
    let warm = &rungs[jobs_idx].warm;

    // Streaming vs. barrier: the identical cold parallel audit with the
    // overlapped phase-1→phase-2 handoff switched off. Pointless with a
    // single worker, where both paths are the sequential pipeline.
    let cold_barrier = (jobs >= 2).then(|| {
        let barrier_cfg = AuditConfig {
            streaming: false,
            ..cfg_at(jobs)
        };
        measure(opts.reps, &project, &barrier_cfg, AuditCache::new).0
    });

    // Binary vs. JSON cache load on identical content: serialize the
    // warm cache both ways, then time loading each back into an empty
    // cache. The binary load validates the checksum and indexes entry
    // frames (payloads decode lazily, on first use); the JSON load is
    // the JSON-era full document parse.
    let warm_cache = &rung_caches[jobs_idx];
    let t = Instant::now();
    let bin_bytes = warm_cache.to_bytes();
    let save_binary_secs = t.elapsed().as_secs_f64();
    let json_text = warm_cache.to_json_doc().to_string_pretty();
    let mut warm_load_binary_secs = f64::INFINITY;
    for _ in 0..opts.reps {
        let bytes = bin_bytes.clone();
        let mut fresh = AuditCache::new();
        let t = Instant::now();
        let ok = fresh.load_bytes(bytes);
        warm_load_binary_secs = warm_load_binary_secs.min(t.elapsed().as_secs_f64());
        assert!(ok, "benchpipe: binary cache round-trip failed to load");
    }
    let mut warm_load_json_secs = f64::INFINITY;
    for _ in 0..opts.reps {
        let mut fresh = AuditCache::new();
        let t = Instant::now();
        let doc = Value::parse(&json_text).expect("benchpipe: JSON cache dump is valid");
        let ok = fresh.load_json_doc(&doc);
        warm_load_json_secs = warm_load_json_secs.min(t.elapsed().as_secs_f64());
        assert!(ok, "benchpipe: JSON cache round-trip failed to load");
    }
    let warm_load_speedup = warm_load_json_secs / warm_load_binary_secs.max(1e-9);

    // Incremental: edit `--edits` files, reuse the warm cache.
    let (rev, edited) = next_revision(&tree, 0xBE7C4, opts.edits);
    let rev_project = Project::from_tree(&rev);
    let mut incr_cache = rung_caches.swap_remove(jobs_idx);
    let incremental = traced_run(&rev_project, &cfg_at(jobs), &mut incr_cache);

    // Sanity: the numbers are only worth reporting if the outputs agree
    // across every rung, both schedulers, and cold vs. warm.
    let cold_ref = cold_par.unwrap_or(cold_seq);
    let mut diverged = rungs.iter().any(|r| {
        r.cold.report.findings != cold_seq.report.findings
            || r.warm.report.findings != cold_seq.report.findings
    });
    if let Some(b) = &cold_barrier {
        diverged |= b.report.findings != cold_seq.report.findings;
    }
    if diverged {
        eprintln!("benchpipe: FAIL: findings diverged between configurations");
        return ExitCode::FAILURE;
    }

    let speedup_parallel = cold_seq.secs / cold_ref.secs.max(1e-9);
    let speedup_warm = cold_ref.secs / warm.secs.max(1e-9);
    let warm_hit_rate = warm.report.cache.hit_rate();
    let summary_hit_rate = warm.report.cache.export_hit_rate();
    let streaming_speedup = cold_barrier
        .as_ref()
        .map(|b| b.secs / cold_ref.secs.max(1e-9));

    // Gates are enforced only where they have room to mean something;
    // everywhere else the report (and the `--check` output) says SKIP
    // explicitly instead of letting the gate pass vacuously.
    let gate_enforced = cores >= 4 && jobs >= 4;
    let parallel_gate = if gate_enforced { "enforced" } else { "skipped" };
    let streaming_gate = parallel_gate;
    let load_gate_enforced = files >= 1000;
    let warm_load_gate = if load_gate_enforced {
        "enforced"
    } else {
        "skipped"
    };

    // Diff-audit replay: a small fix history (base tree + one
    // partial-fix commit per clone group + a neutral refactor) driven
    // through the incremental differ against one shared cache. The
    // base audit is the only cold one; each commit then re-parses
    // exactly its changed units, which is the number the exactness
    // gate pins. The sweep's cost is measured as a second delta
    // computation with the sweep enabled — the set difference it
    // repeats is trivial next to the clone matching itself.
    let hist = generate_fix_history(&TreeConfig {
        seed: 0xD1FF,
        scale: opts.scale,
        clone_groups: 2,
        ..Default::default()
    });
    let hist_projects: Vec<Project> = hist.iter().map(|r| Project::from_tree(&r.tree)).collect();
    let hist_files = hist_projects[0].units().len();
    let mut diff_cache = AuditCache::new();
    let t = Instant::now();
    let hist_base = audit_with_cache(&hist_projects[0], &cfg_at(jobs), &mut diff_cache);
    let diff_cold_secs = t.elapsed().as_secs_f64();
    let mut diff_commits: Vec<Value> = Vec::new();
    let mut diff_parse_exact = true;
    let mut diff_max_secs: f64 = 0.0;
    for i in 1..hist_projects.len() {
        let (a, b) = (&hist_projects[i - 1], &hist_projects[i]);
        let changed = {
            let prev: std::collections::HashMap<&str, &str> = a
                .units()
                .iter()
                .map(|u| (u.path.as_str(), u.text.as_str()))
                .collect();
            b.units()
                .iter()
                .filter(|u| prev.get(u.path.as_str()) != Some(&u.text.as_str()))
                .count()
        };
        let t = Instant::now();
        let dr = diff_projects(
            a,
            b,
            &cfg_at(jobs),
            &mut diff_cache,
            &DiffOptions { sweep: false },
        );
        let diff_secs = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let delta = diff_delta(
            &dr.report_a.findings,
            &dr.report_b.findings,
            Some(a),
            b,
            &dr.report_b.kb,
            true,
        );
        let sweep_secs = t.elapsed().as_secs_f64();
        if dr.report_b.cache.parse_misses != changed {
            eprintln!(
                "benchpipe: diff commit {} re-parsed {} units, expected {changed}",
                hist[i].id, dr.report_b.cache.parse_misses,
            );
            diff_parse_exact = false;
        }
        diff_max_secs = diff_max_secs.max(diff_secs);
        diff_commits.push(obj([
            ("id", hist[i].id.as_str().into()),
            ("changed_units", changed.to_json()),
            ("diff_secs", diff_secs.to_json()),
            ("sweep_secs", sweep_secs.to_json()),
            ("introduced", delta.introduced.len().to_json()),
            ("fixed", delta.fixed.len().to_json()),
            ("moved", delta.moved.len().to_json()),
            ("left_behind", delta.left_behind_total().to_json()),
        ]));
    }
    // The warm-diff-beats-cold-audit gate only means something once the
    // tree is big enough that per-unit work dominates constant costs;
    // on a toy history the fixed overhead of two audits can exceed one
    // cold audit and the gate would flap. Skip it honestly below 300
    // files rather than letting it pass (or fail) vacuously.
    let diff_gate_enforced = hist_files >= 300;
    let diff_latency_gate = if diff_gate_enforced {
        "enforced"
    } else {
        "skipped"
    };

    // Incomplete-fix replay: the same history, but each commit is
    // rendered to a unified diff and driven through the fixcheck
    // pipeline (reverse-apply, audit both sides, sweep for left-unfixed
    // siblings) against one shared cache. The verdicts are the gate —
    // every partial-fix commit must report what it left behind, the
    // neutral commit must come back clean — and the wall times record
    // what that costs on top of a plain diff audit.
    let mut fixcheck_cache = AuditCache::new();
    let t = Instant::now();
    let _ = audit_with_cache(&hist_projects[0], &cfg_at(jobs), &mut fixcheck_cache);
    let fixcheck_base_secs = t.elapsed().as_secs_f64();
    let mut fixcheck_commits: Vec<Value> = Vec::new();
    let mut fixcheck_correct = true;
    let mut fixcheck_max_secs: f64 = 0.0;
    for i in 1..hist_projects.len() {
        let (a, b) = (&hist_projects[i - 1], &hist_projects[i]);
        let prev: std::collections::HashMap<&str, &str> = a
            .units()
            .iter()
            .map(|u| (u.path.as_str(), u.text.as_str()))
            .collect();
        let mut diff_text = String::new();
        for u in b.units() {
            let old = prev.get(u.path.as_str()).copied().unwrap_or("");
            if let Some(d) = render_file_diff(&u.path, old, &u.text) {
                diff_text.push_str(&d);
            }
        }
        let t = Instant::now();
        let fr = match fixcheck_project(b, &diff_text, &cfg_at(jobs), &mut fixcheck_cache) {
            Ok(fr) => fr,
            Err(e) => {
                eprintln!("benchpipe: fixcheck replay of {} failed: {e}", hist[i].id);
                return ExitCode::FAILURE;
            }
        };
        let fixcheck_secs = t.elapsed().as_secs_f64();
        let partial = !hist[i].fixed.is_empty();
        if partial && (fr.fixed.is_empty() || fr.incomplete_total() == 0) {
            eprintln!(
                "benchpipe: fixcheck missed the incomplete fix in {} \
                 ({} fixed, {} left unfixed)",
                hist[i].id,
                fr.fixed.len(),
                fr.incomplete_total(),
            );
            fixcheck_correct = false;
        }
        if !partial && !fr.is_clean() {
            eprintln!(
                "benchpipe: fixcheck flagged the neutral commit {}",
                hist[i].id
            );
            fixcheck_correct = false;
        }
        fixcheck_max_secs = fixcheck_max_secs.max(fixcheck_secs);
        fixcheck_commits.push(obj([
            ("id", hist[i].id.as_str().into()),
            ("fixcheck_secs", fixcheck_secs.to_json()),
            ("files_changed", fr.files_changed.to_json()),
            ("fixed", fr.fixed.len().to_json()),
            ("incomplete", fr.incomplete_total().to_json()),
            ("clean", fr.is_clean().to_json()),
        ]));
    }
    // Same honesty rule as the diff gate: a fixcheck audits *two* trees
    // per commit, so the latency bound is 2x the cold audit, and only
    // once per-unit work dominates the constant costs.
    let fixcheck_gate_enforced = hist_files >= 300;
    let fixcheck_latency_gate = if fixcheck_gate_enforced {
        "enforced"
    } else {
        "skipped"
    };

    // Release-history replay: a seeded release ladder audited
    // release-over-release through one shared cache, the workload under
    // `refminer history`. Each release adds a replica of the tree and
    // repairs one clone member, so after the base release the cache
    // must re-parse exactly the new and changed units — the delta-only
    // property that makes a multi-release study affordable.
    let releases = generate_release_history(&ReleaseHistoryConfig {
        seed: 0x4E7EA5E,
        scale: (opts.scale * 0.5).max(0.02),
        releases: 3,
        clone_groups: 2,
    });
    let mut release_cache = AuditCache::new();
    let mut release_rows: Vec<Value> = Vec::new();
    let mut history_delta_exact = true;
    let mut prev_release: Option<Project> = None;
    for rel in &releases {
        let project = Project::from_tree(&rel.tree);
        let t = Instant::now();
        let report = audit_with_cache(&project, &cfg_at(jobs), &mut release_cache);
        let secs = t.elapsed().as_secs_f64();
        if let Some(prev) = &prev_release {
            let old: std::collections::HashMap<&str, &str> = prev
                .units()
                .iter()
                .map(|u| (u.path.as_str(), u.text.as_str()))
                .collect();
            let changed = project
                .units()
                .iter()
                .filter(|u| old.get(u.path.as_str()) != Some(&u.text.as_str()))
                .count();
            if report.cache.parse_misses != changed {
                eprintln!(
                    "benchpipe: release {} re-parsed {} units, expected {changed}",
                    rel.version, report.cache.parse_misses,
                );
                history_delta_exact = false;
            }
        }
        release_rows.push(obj([
            ("version", rel.version.as_str().into()),
            ("files", report.files.to_json()),
            ("lines", report.lines.to_json()),
            ("findings", report.findings.len().to_json()),
            ("parse_misses", report.cache.parse_misses.to_json()),
            ("secs", secs.to_json()),
        ]));
        prev_release = Some(project);
    }

    let mut runs = vec![run_json("cold_jobs1", cold_seq, files)];
    if let Some(m) = cold_par {
        runs.push(run_json(&format!("cold_jobs{jobs}"), m, files));
    }
    if let Some(m) = &cold_barrier {
        runs.push(run_json("cold_barrier", m, files));
    }
    runs.push(run_json("warm", warm, files));
    runs.push(run_json("incremental", &incremental, files));

    let scaling = Value::Arr(
        rungs
            .iter()
            .map(|r| {
                obj([
                    ("jobs", r.jobs.to_json()),
                    ("cold_secs", r.cold.secs.to_json()),
                    ("warm_secs", r.warm.secs.to_json()),
                ])
            })
            .collect(),
    );

    let mut report_fields = vec![
        // Schema 8: the `fixcheck` section — the fix history replayed
        // through the incomplete-fix checker, with per-commit latency
        // and verdicts — and the `history` section — a release ladder
        // audited through one shared cache with per-release re-parse
        // counts. Every schema-7 key — the `diff` replay, per-engine
        // phase-2 wall times, the `scaling` worker-count curve, the
        // streaming-vs-barrier cold comparison, the binary-vs-JSON
        // warm-load comparison, `--big` kernel-scale trees — is
        // unchanged.
        ("schema", 8.to_json()),
        ("big", opts.big.to_json()),
        ("files", files.to_json()),
        ("lines", cold_seq.report.lines.to_json()),
        ("jobs", jobs.to_json()),
        ("cores", cores.to_json()),
        ("reps", opts.reps.to_json()),
        ("edits", edited.len().to_json()),
        ("runs", Value::Obj(runs)),
        ("speedup_parallel", speedup_parallel.to_json()),
        ("parallel_gate", parallel_gate.to_json()),
        ("speedup_warm", speedup_warm.to_json()),
        ("warm_hit_rate", warm_hit_rate.to_json()),
        ("summary_hit_rate", summary_hit_rate.to_json()),
        ("cold_phase1_secs", cold_ref.report.phase1_secs.to_json()),
        ("cold_phase2_secs", cold_ref.report.phase2_secs.to_json()),
        (
            "cold_parse_secs",
            (cold_ref.summary.stage_total_us("parse") as f64 / 1e6).to_json(),
        ),
        (
            "cold_export_secs",
            (cold_ref.summary.stage_total_us("export") as f64 / 1e6).to_json(),
        ),
        (
            "cold_merge_secs",
            ((cold_ref.summary.stage_total_us("merge.kb")
                + cold_ref.summary.stage_total_us("merge.progdb")) as f64
                / 1e6)
                .to_json(),
        ),
        (
            "cold_check_secs",
            (cold_ref.summary.stage_total_us("check") as f64 / 1e6).to_json(),
        ),
        ("scaling", scaling),
        ("streaming_gate", streaming_gate.to_json()),
        ("cache_binary_bytes", bin_bytes.len().to_json()),
        ("cache_json_bytes", json_text.len().to_json()),
        ("save_binary_secs", save_binary_secs.to_json()),
        ("warm_load_binary_secs", warm_load_binary_secs.to_json()),
        ("warm_load_json_secs", warm_load_json_secs.to_json()),
        ("warm_load_speedup", warm_load_speedup.to_json()),
        ("warm_load_gate", warm_load_gate.to_json()),
        (
            "diff",
            obj([
                ("files", hist_files.to_json()),
                ("revisions", hist.len().to_json()),
                ("cold_audit_secs", diff_cold_secs.to_json()),
                ("cold_findings", hist_base.findings.len().to_json()),
                ("commits", Value::Arr(diff_commits)),
                ("parse_misses_exact", diff_parse_exact.to_json()),
                ("latency_gate", diff_latency_gate.to_json()),
            ]),
        ),
        (
            "fixcheck",
            obj([
                ("files", hist_files.to_json()),
                ("cold_audit_secs", fixcheck_base_secs.to_json()),
                ("commits", Value::Arr(fixcheck_commits)),
                ("verdicts_correct", fixcheck_correct.to_json()),
                ("latency_gate", fixcheck_latency_gate.to_json()),
            ]),
        ),
        (
            "history",
            obj([
                ("releases", Value::Arr(release_rows)),
                ("delta_exact", history_delta_exact.to_json()),
            ]),
        ),
    ];
    if opts.big {
        report_fields.push(("replicas", opts.replicas.to_json()));
    }
    if let (Some(b), Some(s)) = (&cold_barrier, streaming_speedup) {
        report_fields.push(("cold_barrier_secs", b.secs.to_json()));
        report_fields.push(("streaming_speedup", s.to_json()));
    }
    let report = Value::Obj(
        report_fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    );
    if let Err(e) = std::fs::write(&out, format!("{}\n", report.to_string_pretty())) {
        eprintln!("benchpipe: cannot write {}: {e}", out.display());
        return ExitCode::from(2);
    }

    eprintln!(
        "benchpipe: cold x1 {:.3}s | cold x{jobs} {:.3}s ({speedup_parallel:.2}x) | \
         warm {:.4}s ({speedup_warm:.1}x, {:.0}% hits) | incremental {:.4}s",
        cold_seq.secs,
        cold_ref.secs,
        warm.secs,
        warm_hit_rate * 100.0,
        incremental.secs,
    );
    eprintln!(
        "benchpipe: cold phases {:.3}s parse + {:.3}s export+check | \
         summary cache {:.0}% hits when warm",
        cold_ref.report.phase1_secs,
        cold_ref.report.phase2_secs,
        summary_hit_rate * 100.0,
    );
    if let (Some(b), Some(s)) = (&cold_barrier, streaming_speedup) {
        eprintln!(
            "benchpipe: streaming {:.3}s vs barrier {:.3}s cold ({s:.2}x)",
            cold_ref.secs, b.secs,
        );
    }
    eprintln!(
        "benchpipe: warm cache load binary {:.4}s ({} KB) vs JSON {:.4}s ({} KB): \
         {warm_load_speedup:.1}x",
        warm_load_binary_secs,
        bin_bytes.len() / 1024,
        warm_load_json_secs,
        json_text.len() / 1024,
    );
    eprintln!(
        "benchpipe: diff replay {} commit(s) on {} files: cold audit {:.3}s, \
         slowest warm diff {:.4}s",
        hist.len() - 1,
        hist_files,
        diff_cold_secs,
        diff_max_secs,
    );
    eprintln!(
        "benchpipe: fixcheck replay: slowest commit {:.4}s, verdicts {}",
        fixcheck_max_secs,
        if fixcheck_correct { "correct" } else { "WRONG" },
    );
    eprintln!(
        "benchpipe: history replay {} release(s): delta-only re-parse {}",
        releases.len(),
        if history_delta_exact {
            "exact"
        } else {
            "WRONG"
        },
    );
    println!("{}", out.display());

    if opts.check {
        let mut failed = false;
        if warm.report.cache.parse_misses != 0 || warm.report.cache.check_misses != 0 {
            eprintln!("benchpipe: FAIL: warm run recomputed cached units");
            failed = true;
        }
        if speedup_warm < 5.0 {
            eprintln!("benchpipe: FAIL: warm speedup {speedup_warm:.2}x < 5x");
            failed = true;
        }
        if incremental.report.cache.parse_misses != edited.len() {
            eprintln!(
                "benchpipe: FAIL: incremental run re-parsed {} units, expected {}",
                incremental.report.cache.parse_misses,
                edited.len()
            );
            failed = true;
        }
        if gate_enforced {
            if speedup_parallel < 2.0 {
                eprintln!(
                    "benchpipe: FAIL: parallel speedup {speedup_parallel:.2}x < 2x on {cores} cores"
                );
                failed = true;
            }
            match streaming_speedup {
                Some(s) if s < 1.0 => {
                    eprintln!(
                        "benchpipe: FAIL: streaming cold path {s:.2}x vs barrier — \
                         the overlap must not lose"
                    );
                    failed = true;
                }
                _ => {}
            }
        } else {
            eprintln!(
                "benchpipe: SKIP: parallel >=2x and streaming-beats-barrier gates need \
                 cores >= 4 and jobs >= 4 (cores={cores}, jobs={jobs})"
            );
        }
        if load_gate_enforced {
            if warm_load_speedup < 3.0 {
                eprintln!(
                    "benchpipe: FAIL: binary cache load {warm_load_speedup:.2}x vs JSON, \
                     expected >= 3x on {files} files"
                );
                failed = true;
            }
        } else {
            eprintln!(
                "benchpipe: SKIP: binary >=3x load gate needs >= 1000 files \
                 (files={files}; use --big)"
            );
        }
        if !diff_parse_exact {
            eprintln!("benchpipe: FAIL: diff replay re-parsed more than the changed units");
            failed = true;
        }
        if diff_gate_enforced {
            if diff_max_secs >= diff_cold_secs {
                eprintln!(
                    "benchpipe: FAIL: slowest warm diff {diff_max_secs:.3}s not under the \
                     cold audit {diff_cold_secs:.3}s"
                );
                failed = true;
            }
        } else {
            eprintln!(
                "benchpipe: SKIP: warm-diff-beats-cold gate needs >= 300 history files \
                 (files={hist_files}; raise --scale)"
            );
        }
        if !fixcheck_correct {
            eprintln!("benchpipe: FAIL: fixcheck replay verdicts were wrong");
            failed = true;
        }
        if fixcheck_gate_enforced {
            if fixcheck_max_secs >= 2.0 * fixcheck_base_secs {
                eprintln!(
                    "benchpipe: FAIL: slowest fixcheck {fixcheck_max_secs:.3}s not under \
                     2x the cold audit {fixcheck_base_secs:.3}s"
                );
                failed = true;
            }
        } else {
            eprintln!(
                "benchpipe: SKIP: fixcheck-latency gate needs >= 300 history files \
                 (files={hist_files}; raise --scale)"
            );
        }
        if !history_delta_exact {
            eprintln!("benchpipe: FAIL: release replay re-parsed more than each release's delta");
            failed = true;
        }
        if failed {
            return ExitCode::FAILURE;
        }
        eprintln!("benchpipe: CHECK PASS");
    }
    ExitCode::SUCCESS
}

/// `--eval`: generate an FP-trap tree, audit it with the feasibility
/// engine off and on, score both against the ground-truth manifest,
/// then audit once more with the template engine alone and score the
/// two-engine run against it. With `--check`, enforce that
/// feasibility pruning strictly improves precision on at least two
/// anti-patterns with zero recall loss, that the combined two-engine
/// F1 never drops below the template-only run's, and that it stays at
/// or above `--baseline` (the committed template-only baseline).
fn run_eval(opts: &Options) -> ExitCode {
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_eval.json"));
    let jobs = effective_jobs(opts.jobs);
    let tree = generate_tree(&TreeConfig {
        scale: opts.scale,
        fp_traps: true,
        include_tricky: false,
        ..Default::default()
    });
    let project = Project::from_tree(&tree);
    eprintln!(
        "benchpipe: eval on {} files ({} bugs, {} traps), jobs={jobs}",
        tree.files.len(),
        tree.manifest.bugs.len(),
        tree.manifest.fp_traps.len()
    );

    let on_cfg = AuditConfig {
        jobs,
        ..Default::default()
    };
    let off_cfg = AuditConfig {
        feasibility: false,
        ..on_cfg.clone()
    };
    let tmpl_cfg = AuditConfig {
        engines: EngineSet::template_only(),
        ..on_cfg.clone()
    };
    let off_report = audit_with_cache(&project, &off_cfg, &mut AuditCache::new());
    let on_report = audit_with_cache(&project, &on_cfg, &mut AuditCache::new());
    let tmpl_report = audit_with_cache(&project, &tmpl_cfg, &mut AuditCache::new());
    let off = evaluate(&off_report.findings, &tree.manifest);
    let on = evaluate(&on_report.findings, &tree.manifest);
    let tmpl = evaluate(&tmpl_report.findings, &tree.manifest);
    let engines = evaluate_engines(&on_report.findings, &tree.manifest);

    // Per-pattern comparison. A pattern with a row only in the `off`
    // run had nothing but false positives there, all of which the
    // feasibility pass suppressed — Counts::default() scores that as
    // the perfect 1.0/1.0.
    let mut improved = 0usize;
    let mut recall_lost = false;
    let mut patterns: Vec<_> = off.rows.iter().map(|r| r.pattern).collect();
    for row in &on.rows {
        if !patterns.contains(&row.pattern) {
            patterns.push(row.pattern);
        }
    }
    patterns.sort();
    for p in &patterns {
        let find = |rows: &[refminer::EvalRow]| {
            rows.iter()
                .find(|r| r.pattern == *p)
                .map(|r| r.counts)
                .unwrap_or_default()
        };
        let (a, b) = (find(&off.rows), find(&on.rows));
        if b.recall() < a.recall() {
            recall_lost = true;
        }
        if b.precision() > a.precision() && b.recall() >= a.recall() {
            improved += 1;
        }
    }

    let report = obj([
        // Schema 2: `feasibility_on` carries the per-engine split and
        // confidence histogram, and the template-only comparison run
        // rides alongside (`template_only`, `f1_template_only`,
        // `f1_combined`). Every schema-1 key is unchanged.
        ("schema", 2.to_json()),
        ("files", tree.files.len().to_json()),
        ("bugs", tree.manifest.bugs.len().to_json()),
        ("fp_traps", tree.manifest.fp_traps.len().to_json()),
        ("feasibility_off", off.to_json()),
        ("feasibility_on", engines.to_json()),
        ("template_only", tmpl.to_json()),
        ("patterns_improved", improved.to_json()),
        ("recall_lost", recall_lost.to_json()),
        ("f1_off", off.totals.f1().to_json()),
        ("f1_on", on.totals.f1().to_json()),
        ("f1_template_only", tmpl.totals.f1().to_json()),
        ("f1_combined", on.totals.f1().to_json()),
    ]);
    if let Err(e) = std::fs::write(&out, format!("{}\n", report.to_string_pretty())) {
        eprintln!("benchpipe: cannot write {}: {e}", out.display());
        return ExitCode::from(2);
    }

    eprintln!(
        "benchpipe: feasibility off P {:.3} R {:.3} F1 {:.3} ({} trap hits) | \
         on P {:.3} R {:.3} F1 {:.3} ({} trap hits) | {} pattern(s) improved",
        off.totals.precision(),
        off.totals.recall(),
        off.totals.f1(),
        off.trap_hits,
        on.totals.precision(),
        on.totals.recall(),
        on.totals.f1(),
        on.trap_hits,
        improved,
    );
    eprintln!(
        "benchpipe: template-only F1 {:.3} | combined two-engine F1 {:.3}",
        tmpl.totals.f1(),
        on.totals.f1(),
    );
    println!("{}", out.display());

    if opts.check {
        let mut failed = false;
        if off.trap_hits == 0 {
            eprintln!("benchpipe: FAIL: the baseline run hit no FP traps — nothing to prune");
            failed = true;
        }
        if recall_lost {
            eprintln!("benchpipe: FAIL: feasibility pruning lost recall");
            failed = true;
        }
        if improved < 2 {
            eprintln!(
                "benchpipe: FAIL: precision improved on {improved} pattern(s), expected >= 2"
            );
            failed = true;
        }
        if on.totals.f1() < tmpl.totals.f1() {
            eprintln!(
                "benchpipe: FAIL: combined two-engine F1 {:.4} below template-only {:.4}",
                on.totals.f1(),
                tmpl.totals.f1()
            );
            failed = true;
        }
        if let Some(baseline) = opts.baseline {
            if on.totals.f1() < baseline {
                eprintln!(
                    "benchpipe: FAIL: combined F1 {:.4} below committed baseline {baseline:.4}",
                    on.totals.f1()
                );
                failed = true;
            }
        }
        if failed {
            return ExitCode::FAILURE;
        }
        eprintln!("benchpipe: EVAL CHECK PASS");
    }
    ExitCode::SUCCESS
}

//! The incremental audit cache: content-hashed per-unit results.
//!
//! Re-auditing a tree where little or nothing changed is the common
//! case for a checker that runs on every commit. The pipeline's unit
//! work is pure — the same file text under the same configuration and
//! knowledge base always produces the same parse, the same graphs and
//! the same findings — so results are memoizable by content hash alone;
//! no timestamps, no filesystem metadata.
//!
//! Four layers, because the stages have different invalidation scopes:
//!
//! - **Parse layer** — keyed by `(content hash, parse limits)`. Holds
//!   the unit's macro defines, line count, parse-stage diagnostics and
//!   (in memory) the parsed [`TranslationUnit`] itself.
//! - **Export layer** — keyed by `(unit key, export config)`. Holds the
//!   unit's phase-1 digest: its function-effect exports
//!   ([`UnitExports`]) and its per-unit discovery facts
//!   ([`UnitDiscovery`]). Both are whole-tree-independent, so editing
//!   one file re-exports exactly that file.
//! - **Discovery layer** — keyed by a *tree fingerprint* folding every
//!   unit's key, so touching any file re-runs the cross-unit discovery
//!   *merge* (cheap — it folds cached per-unit facts, no ASTs). Holds
//!   the resulting [`ApiKb`].
//! - **Check layer** — keyed by `(unit key, mix(KB fingerprint,
//!   summary-deps fingerprint))`. Holds the unit's findings, function
//!   count and check-stage diagnostics. Editing one file changes that
//!   file's unit key *and* the deps fingerprint of every unit whose
//!   helper calls resolve into it — so a changed helper in `a.c`
//!   re-checks precisely `a.c` and its cross-unit callers, nothing
//!   else. A KB change (new discovered API) still invalidates every
//!   unit, as it must — any unit might call the new API.
//!
//! With [`AuditCache::with_dir`] the check and discovery layers persist
//! across processes as JSON (ASTs are not serialized; the parse layer
//! persists its *metadata* only). A fully-warm disk cache therefore
//! still skips lexing, parsing and checking outright. The trade-off: a
//! disk-warm run that *does* need discovery re-run (one file changed)
//! must re-parse units whose ASTs were not kept in memory.
//!
//! Keys fold in every configuration input that can change the stage's
//! output — resource limits, the nesting threshold, the checker-set
//! fingerprint, the builtin-KB fingerprint — so a stale cache can be
//! *unused*, never *wrong*.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;

use refminer_checkers::{checker_set_fingerprint, AntiPattern, Finding, Impact};
use refminer_clex::MacroDef;
use refminer_cparse::TranslationUnit;
use refminer_json::{obj, ToJson, Value};
use refminer_progdb::{CallSite, FnExport, UnitExports};
use refminer_rcapi::{
    ApiKb, ObjectFlow, RcApi, RcClass, RcDir, SmartLoop, StructFact, UnitDiscovery,
};

use crate::audit::{AuditConfig, UnitErrorKind};

// ----------------------------------------------------------------------
// Hashing and fingerprints.
// ----------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over a byte slice. Fast, dependency-free, and stable across
/// platforms and runs — exactly what cache keys need (`DefaultHasher`
/// makes no cross-version guarantee).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Content hash of a source file's text.
pub fn content_hash(text: &str) -> u64 {
    fnv1a(text.as_bytes())
}

/// Folds another word into an FNV-1a state; used to mix content hashes
/// with configuration fingerprints.
pub fn mix(h: u64, word: u64) -> u64 {
    let mut h = h;
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprint of the parse-stage configuration.
pub fn parse_config_fingerprint(config: &AuditConfig) -> u64 {
    let l = &config.limits;
    let mut h = FNV_OFFSET;
    h = mix(h, l.max_file_bytes as u64);
    h = mix(h, l.max_tokens as u64);
    h = mix(h, l.max_parse_depth as u64);
    h
}

/// Fingerprint of the check-stage configuration.
///
/// `--only-pattern` and `--subsystem` scope what the check stage
/// produces, so both key the layer — a filtered run never poisons (or
/// reuses) full-run entries. The `feasibility` suppression flag is
/// deliberately absent: verdicts are always computed and cached with
/// the findings, and suppression happens post-cache in the report
/// layer, so both modes share the same entries.
pub fn check_config_fingerprint(config: &AuditConfig) -> u64 {
    let mut h = FNV_OFFSET;
    h = mix(h, config.limits.max_graph_nodes as u64);
    h = mix(h, checker_set_fingerprint());
    h = mix(h, config.whole_program as u64);
    match &config.only_patterns {
        None => h = mix(h, 0),
        Some(ps) => {
            h = mix(h, 1);
            for p in ps {
                h = mix(h, fnv1a(p.id().as_bytes()));
            }
        }
    }
    match &config.subsystem {
        None => h = mix(h, 0),
        Some(s) => {
            h = mix(h, 1);
            h = mix(h, fnv1a(s.as_bytes()));
        }
    }
    h
}

/// On-format version of the export layer; bump when the extraction
/// logic changes what a [`UnitExports`] or [`UnitDiscovery`] contains.
const EXPORT_VERSION: u64 = 1;

/// Fingerprint of the export-stage (phase 1) configuration. Folds the
/// builtin seed KB because per-unit discovery classifies against it,
/// and the graph cap because exports are read off built graphs.
pub fn export_config_fingerprint(config: &AuditConfig) -> u64 {
    let mut h = FNV_OFFSET;
    h = mix(h, EXPORT_VERSION);
    h = mix(h, config.limits.max_graph_nodes as u64);
    h = mix(h, kb_fingerprint(&ApiKb::builtin()));
    h
}

/// Fingerprint of the discovery configuration, including the builtin
/// seed KB so a binary with a different seed never reuses old results.
pub fn discovery_config_fingerprint(config: &AuditConfig) -> u64 {
    let mut h = FNV_OFFSET;
    h = mix(h, config.nesting_threshold as u64);
    h = mix(h, kb_fingerprint(&ApiKb::builtin()));
    h
}

/// Deterministic fingerprint of a knowledge base: APIs and smartloops
/// serialized in sorted-name order, hashed. Two KBs with equal content
/// fingerprint identically regardless of hash-map iteration order.
pub fn kb_fingerprint(kb: &ApiKb) -> u64 {
    fnv1a(kb_to_json(kb).to_string().as_bytes())
}

// ----------------------------------------------------------------------
// Cached per-unit results.
// ----------------------------------------------------------------------

/// One diagnostic recorded by a cached stage, in push order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedError {
    /// The taxonomy kind.
    pub kind: UnitErrorKind,
    /// Human-readable detail.
    pub detail: String,
}

/// The parse stage's result for one unit.
#[derive(Debug, Clone)]
pub struct ParsedUnit {
    /// The parsed AST. `None` when parsing failed (panic/oversize) —
    /// see [`ParsedUnit::parsed_ok`] — or when the entry was loaded
    /// from disk, where ASTs are not persisted.
    pub tu: Option<TranslationUnit>,
    /// Whether parsing produced a usable (possibly degraded) AST. When
    /// `true` but [`ParsedUnit::tu`] is `None`, re-parsing the same
    /// text reproduces it.
    pub parsed_ok: bool,
    /// `#define`s scanned from the unit, for smartloop discovery.
    pub defines: Vec<MacroDef>,
    /// Parse-stage diagnostics in the order they were recorded.
    pub errors: Vec<CachedError>,
    /// Source lines in the unit (0 for oversize-skipped units, which
    /// never count toward the audit's line total).
    pub lines: usize,
}

/// The export stage's (phase 1) result for one unit: everything the
/// whole-program merge needs, with no AST attached.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExportedUnit {
    /// Function-effect exports for the program database.
    pub exports: UnitExports,
    /// Per-unit discovery facts for the cross-unit merge.
    pub discovery: UnitDiscovery,
}

/// The check stage's result for one unit.
#[derive(Debug, Clone, Default)]
pub struct CheckedUnit {
    /// Findings from this unit, in checker emission order.
    pub findings: Vec<Finding>,
    /// Functions analyzed.
    pub functions: usize,
    /// Check-stage diagnostics in the order they were recorded.
    pub errors: Vec<CachedError>,
}

/// Hit/miss counters for one audit run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Units whose parse-stage result was served from cache.
    pub parse_hits: usize,
    /// Units that were lexed and parsed this run.
    pub parse_misses: usize,
    /// Units whose findings were served from cache.
    pub check_hits: usize,
    /// Units that were graphed and checked this run.
    pub check_misses: usize,
    /// Cross-unit discovery passes served from cache (0 or 1 per run).
    pub discovery_hits: usize,
    /// Cross-unit discovery passes executed this run (0 or 1).
    pub discovery_misses: usize,
    /// Units whose phase-1 summary exports were served from cache.
    pub export_hits: usize,
    /// Units whose summary exports were extracted this run.
    pub export_misses: usize,
}

impl CacheStats {
    /// Fraction of per-unit lookups served from cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.parse_hits + self.check_hits;
        let total = hits + self.parse_misses + self.check_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Fraction of summary-export lookups served from cache, in
    /// `[0, 1]`. Kept separate from [`CacheStats::hit_rate`] so the
    /// historical parse+check rate is comparable across versions.
    pub fn export_hit_rate(&self) -> f64 {
        let total = self.export_hits + self.export_misses;
        if total == 0 {
            0.0
        } else {
            self.export_hits as f64 / total as f64
        }
    }
}

impl ToJson for CacheStats {
    fn to_json(&self) -> Value {
        obj([
            ("parse_hits", self.parse_hits.to_json()),
            ("parse_misses", self.parse_misses.to_json()),
            ("check_hits", self.check_hits.to_json()),
            ("check_misses", self.check_misses.to_json()),
            ("discovery_hits", self.discovery_hits.to_json()),
            ("discovery_misses", self.discovery_misses.to_json()),
            ("export_hits", self.export_hits.to_json()),
            ("export_misses", self.export_misses.to_json()),
            ("hit_rate", self.hit_rate().to_json()),
            ("export_hit_rate", self.export_hit_rate().to_json()),
        ])
    }
}

/// Per-layer counts of cache entries the current run cannot address
/// (see [`AuditCache::stale_counts`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStaleCounts {
    /// Parse-layer entries keyed by content no current unit has.
    pub parse: usize,
    /// Export-layer entries keyed by content no current unit has.
    pub export: usize,
    /// Check-layer entries whose `(unit, deps)` key no current unit
    /// resolves to — superseded by edits to the unit or its helpers.
    pub check: usize,
    /// Discovery entries for trees other than the current one.
    pub discovery: usize,
}

// ----------------------------------------------------------------------
// The cache proper.
// ----------------------------------------------------------------------

/// What loading the persisted cache file found, for observability: a
/// corrupt file heals silently (the run goes cold), but daemons and
/// strict callers want to know it happened.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum CacheLoadOutcome {
    /// No cache file existed (or the cache is memory-only).
    #[default]
    Empty,
    /// The file parsed and its entries were loaded.
    Loaded,
    /// The file was malformed or version-mismatched; it was renamed
    /// aside to the contained path and the cache rebuilt cold.
    Quarantined(PathBuf),
    /// The file could not be read at all (I/O error); the cache
    /// rebuilt cold and the file was left in place.
    ReadFailed(String),
}

/// The four-layer audit cache. See the module docs for the layering
/// and invalidation rules.
#[derive(Debug, Default)]
pub struct AuditCache {
    parse: HashMap<u64, Arc<ParsedUnit>>,
    export: HashMap<u64, Arc<ExportedUnit>>,
    check: HashMap<(u64, u64), Arc<CheckedUnit>>,
    discovery: HashMap<u64, Arc<ApiKb>>,
    /// Counters for the current (or most recent) audit run; reset by
    /// each `audit_with_cache` call.
    pub stats: CacheStats,
    dir: Option<PathBuf>,
    load_outcome: CacheLoadOutcome,
}

/// File name of the persisted cache inside `--cache-dir`.
pub const CACHE_FILE: &str = "audit-cache.json";

/// Suffix appended to [`CACHE_FILE`] when a corrupt cache is
/// quarantined — renamed aside for post-mortem instead of deleted.
pub const QUARANTINE_SUFFIX: &str = ".corrupt";

/// On-disk format version; bump on any incompatible change. A file
/// with a different version is ignored wholesale.
/// v3: findings carry `feasibility` and `checkers` fields.
const CACHE_VERSION: u64 = 3;

impl AuditCache {
    /// An empty, memory-only cache.
    pub fn new() -> AuditCache {
        AuditCache::default()
    }

    /// A cache persisted under `dir`, pre-loaded from
    /// `dir/audit-cache.json` when that file exists and parses. A
    /// missing file yields an empty cache; a *corrupt* file (truncated,
    /// bit-flipped, or from an incompatible version) is **quarantined**
    /// — renamed aside to `audit-cache.json.corrupt` for post-mortem —
    /// and the cache rebuilds cold. Persistence failures degrade to
    /// cold runs, never to errors; [`AuditCache::load_outcome`] reports
    /// what happened.
    pub fn with_dir(dir: impl Into<PathBuf>) -> AuditCache {
        let dir = dir.into();
        let mut cache = AuditCache::new();
        let file = dir.join(CACHE_FILE);
        match refminer_faultio::read_to_string(&file) {
            Ok(text) => {
                let loaded = Value::parse(&text)
                    .ok()
                    .map(|v| cache.load_from(&v))
                    .unwrap_or(false);
                if loaded {
                    cache.load_outcome = CacheLoadOutcome::Loaded;
                } else {
                    // Corrupt: quarantine it so the broken generation is
                    // preserved as evidence and can never be re-read as
                    // live state. A failed rename leaves the file for
                    // the next atomic save to overwrite.
                    let aside = dir.join(format!("{CACHE_FILE}{QUARANTINE_SUFFIX}"));
                    let _ = refminer_faultio::rename(&file, &aside);
                    cache.clear_layers();
                    cache.load_outcome = CacheLoadOutcome::Quarantined(aside);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                cache.load_outcome = CacheLoadOutcome::Empty;
            }
            Err(e) => {
                cache.load_outcome = CacheLoadOutcome::ReadFailed(e.to_string());
            }
        }
        cache.dir = Some(dir);
        cache
    }

    /// What loading the persisted file found; `Empty` for memory-only
    /// caches.
    pub fn load_outcome(&self) -> &CacheLoadOutcome {
        &self.load_outcome
    }

    /// Drops every in-memory layer (quarantine rebuilds cold even if a
    /// malformed prefix half-loaded).
    fn clear_layers(&mut self) {
        self.parse.clear();
        self.export.clear();
        self.check.clear();
        self.discovery.clear();
    }

    /// Resets the per-run hit/miss counters.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Parse-layer lookup; counts a hit.
    pub(crate) fn parse_get(&mut self, key: u64) -> Option<Arc<ParsedUnit>> {
        let hit = self.parse.get(&key).cloned();
        if hit.is_some() {
            self.stats.parse_hits += 1;
        }
        hit
    }

    /// Parse-layer insert; counts the miss that required it.
    pub(crate) fn parse_put(&mut self, key: u64, unit: ParsedUnit) -> Arc<ParsedUnit> {
        self.stats.parse_misses += 1;
        let arc = Arc::new(unit);
        self.parse.insert(key, arc.clone());
        arc
    }

    /// Export-layer lookup; counts a hit.
    pub(crate) fn export_get(&mut self, key: u64) -> Option<Arc<ExportedUnit>> {
        let hit = self.export.get(&key).cloned();
        if hit.is_some() {
            self.stats.export_hits += 1;
        }
        hit
    }

    /// Export-layer insert; counts the miss that required it.
    pub(crate) fn export_put(&mut self, key: u64, unit: ExportedUnit) -> Arc<ExportedUnit> {
        self.stats.export_misses += 1;
        let arc = Arc::new(unit);
        self.export.insert(key, arc.clone());
        arc
    }

    /// Check-layer lookup; counts a hit.
    pub(crate) fn check_get(&mut self, unit_key: u64, kb_fp: u64) -> Option<Arc<CheckedUnit>> {
        let hit = self.check.get(&(unit_key, kb_fp)).cloned();
        if hit.is_some() {
            self.stats.check_hits += 1;
        }
        hit
    }

    /// Check-layer insert; counts the miss that required it.
    pub(crate) fn check_put(
        &mut self,
        unit_key: u64,
        kb_fp: u64,
        unit: CheckedUnit,
    ) -> Arc<CheckedUnit> {
        self.stats.check_misses += 1;
        let arc = Arc::new(unit);
        self.check.insert((unit_key, kb_fp), arc.clone());
        arc
    }

    /// Discovery-layer lookup; counts a hit.
    pub(crate) fn discovery_get(&mut self, tree_fp: u64) -> Option<Arc<ApiKb>> {
        let hit = self.discovery.get(&tree_fp).cloned();
        if hit.is_some() {
            self.stats.discovery_hits += 1;
        }
        hit
    }

    /// Discovery-layer insert; counts the miss that required it.
    pub(crate) fn discovery_put(&mut self, tree_fp: u64, kb: ApiKb) -> Arc<ApiKb> {
        self.stats.discovery_misses += 1;
        let arc = Arc::new(kb);
        self.discovery.insert(tree_fp, arc.clone());
        arc
    }

    /// Entries per layer: `(parse, export, check, discovery)`.
    pub fn len(&self) -> (usize, usize, usize, usize) {
        (
            self.parse.len(),
            self.export.len(),
            self.check.len(),
            self.discovery.len(),
        )
    }

    /// Whether all layers are empty.
    pub fn is_empty(&self) -> bool {
        self.parse.is_empty()
            && self.export.is_empty()
            && self.check.is_empty()
            && self.discovery.is_empty()
    }

    /// Writes the persistable layers to `dir/audit-cache.json`. A
    /// no-op for memory-only caches.
    pub fn save(&self) -> std::io::Result<()> {
        let Some(dir) = &self.dir else {
            return Ok(());
        };
        refminer_faultio::create_dir_all(dir)?;
        let mut parse: Vec<(u64, &Arc<ParsedUnit>)> =
            self.parse.iter().map(|(k, v)| (*k, v)).collect();
        parse.sort_by_key(|(k, _)| *k);
        let mut export: Vec<(u64, &Arc<ExportedUnit>)> =
            self.export.iter().map(|(k, v)| (*k, v)).collect();
        export.sort_by_key(|(k, _)| *k);
        let mut check: Vec<(&(u64, u64), &Arc<CheckedUnit>)> = self.check.iter().collect();
        check.sort_by_key(|(k, _)| **k);
        let mut disc: Vec<(u64, &Arc<ApiKb>)> =
            self.discovery.iter().map(|(k, v)| (*k, v)).collect();
        disc.sort_by_key(|(k, _)| *k);

        let doc = obj([
            ("version", CACHE_VERSION.to_json()),
            (
                "parse",
                Value::Arr(
                    parse
                        .iter()
                        .map(|(k, p)| {
                            obj([
                                ("key", hex(*k)),
                                ("parsed_ok", p.parsed_ok.to_json()),
                                ("lines", p.lines.to_json()),
                                ("errors", errors_to_json(&p.errors)),
                                (
                                    "defines",
                                    Value::Arr(p.defines.iter().map(macro_to_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "export",
                Value::Arr(
                    export
                        .iter()
                        .map(|(k, e)| {
                            obj([
                                ("key", hex(*k)),
                                ("exports", unit_exports_to_json(&e.exports)),
                                ("discovery", unit_discovery_to_json(&e.discovery)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "check",
                Value::Arr(
                    check
                        .iter()
                        .map(|((uk, kb), c)| {
                            obj([
                                ("unit", hex(*uk)),
                                ("kb", hex(*kb)),
                                ("functions", c.functions.to_json()),
                                ("findings", c.findings.to_json()),
                                ("errors", errors_to_json(&c.errors)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "discovery",
                Value::Arr(
                    disc.iter()
                        .map(|(k, kb)| obj([("tree", hex(*k)), ("kb", kb_to_json(kb))]))
                        .collect(),
                ),
            ),
        ]);
        // Atomic replace: write a temp file in the same directory and
        // rename it over the live cache, so an interrupted or
        // concurrent save leaves either the old or the new file on
        // disk — never a truncated one. The temp name is unique per
        // process *and* per save, so concurrent saves (even in-process)
        // race only at the (atomic) rename.
        static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = dir.join(format!("{CACHE_FILE}.tmp.{}.{seq}", std::process::id()));
        let text = doc.to_string();
        // Writes and the publishing rename go through the fault seam,
        // so an injected torn write or rename failure exercises exactly
        // the states a mid-save kill leaves behind.
        if let Err(e) = refminer_faultio::write(&tmp, &text) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        refminer_faultio::rename(&tmp, dir.join(CACHE_FILE)).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// Counts entries that this run could never address — leftovers
    /// whose key no current unit produces. Observability only (the
    /// `cache.*.stale` trace counters); stale entries are already
    /// unreachable by construction, so nothing consults this on the
    /// hot path.
    pub fn stale_counts(
        &self,
        parse_keys: &HashSet<u64>,
        export_keys: &HashSet<u64>,
        check_keys: &HashSet<(u64, u64)>,
        tree_fp: u64,
    ) -> CacheStaleCounts {
        CacheStaleCounts {
            parse: self
                .parse
                .keys()
                .filter(|k| !parse_keys.contains(k))
                .count(),
            export: self
                .export
                .keys()
                .filter(|k| !export_keys.contains(k))
                .count(),
            check: self
                .check
                .keys()
                .filter(|k| !check_keys.contains(k))
                .count(),
            discovery: self.discovery.keys().filter(|&&k| k != tree_fp).count(),
        }
    }

    /// Merges a parsed cache file into the in-memory maps, skipping
    /// anything malformed. Returns `false` — quarantine the file — when
    /// the version tag is missing or incompatible.
    fn load_from(&mut self, v: &Value) -> bool {
        if v.get("version").and_then(Value::as_u64) != Some(CACHE_VERSION) {
            return false;
        }
        for entry in v.get("parse").and_then(Value::as_array).unwrap_or(&[]) {
            let Some(key) = entry.get("key").and_then(unhex) else {
                continue;
            };
            let Some(parsed_ok) = entry.get("parsed_ok").and_then(Value::as_bool) else {
                continue;
            };
            let lines = entry.get("lines").and_then(Value::as_u64).unwrap_or(0) as usize;
            let Some(errors) = entry.get("errors").map(errors_from_json) else {
                continue;
            };
            let defines: Option<Vec<MacroDef>> = entry
                .get("defines")
                .and_then(Value::as_array)
                .map(|a| a.iter().filter_map(macro_from_json).collect());
            let Some(defines) = defines else { continue };
            self.parse.insert(
                key,
                Arc::new(ParsedUnit {
                    tu: None,
                    parsed_ok,
                    defines,
                    errors,
                    lines,
                }),
            );
        }
        for entry in v.get("export").and_then(Value::as_array).unwrap_or(&[]) {
            let Some(key) = entry.get("key").and_then(unhex) else {
                continue;
            };
            let Some(exports) = entry.get("exports").and_then(unit_exports_from_json) else {
                continue;
            };
            let Some(discovery) = entry.get("discovery").and_then(unit_discovery_from_json) else {
                continue;
            };
            self.export
                .insert(key, Arc::new(ExportedUnit { exports, discovery }));
        }
        for entry in v.get("check").and_then(Value::as_array).unwrap_or(&[]) {
            let (Some(uk), Some(kb)) = (
                entry.get("unit").and_then(unhex),
                entry.get("kb").and_then(unhex),
            ) else {
                continue;
            };
            let functions = entry.get("functions").and_then(Value::as_u64).unwrap_or(0) as usize;
            let findings: Option<Vec<Finding>> = entry
                .get("findings")
                .and_then(Value::as_array)
                .map(|a| a.iter().map(finding_from_json).collect::<Option<_>>())
                .unwrap_or(Some(Vec::new()));
            let Some(findings) = findings else { continue };
            let Some(errors) = entry.get("errors").map(errors_from_json) else {
                continue;
            };
            self.check.insert(
                (uk, kb),
                Arc::new(CheckedUnit {
                    findings,
                    functions,
                    errors,
                }),
            );
        }
        for entry in v.get("discovery").and_then(Value::as_array).unwrap_or(&[]) {
            let Some(tree) = entry.get("tree").and_then(unhex) else {
                continue;
            };
            let Some(kb) = entry.get("kb").and_then(kb_from_json) else {
                continue;
            };
            self.discovery.insert(tree, Arc::new(kb));
        }
        true
    }
}

// ----------------------------------------------------------------------
// JSON (de)serialization helpers.
// ----------------------------------------------------------------------
//
// `refminer-json` stores numbers as f64, which cannot represent every
// u64; keys are therefore written as fixed-width hex strings.

fn hex(k: u64) -> Value {
    Value::Str(format!("{k:016x}"))
}

fn unhex(v: &Value) -> Option<u64> {
    u64::from_str_radix(v.as_str()?, 16).ok()
}

fn errors_to_json(errors: &[CachedError]) -> Value {
    Value::Arr(
        errors
            .iter()
            .map(|e| {
                obj([
                    ("kind", Value::Str(e.kind.name().to_string())),
                    ("detail", e.detail.to_json()),
                ])
            })
            .collect(),
    )
}

fn errors_from_json(v: &Value) -> Vec<CachedError> {
    v.as_array()
        .unwrap_or(&[])
        .iter()
        .filter_map(|e| {
            Some(CachedError {
                kind: UnitErrorKind::from_name(e.get("kind")?.as_str()?)?,
                detail: e.get("detail")?.as_str()?.to_string(),
            })
        })
        .collect()
}

fn macro_to_json(m: &MacroDef) -> Value {
    obj([
        ("name", m.name.to_json()),
        (
            "params",
            match &m.params {
                Some(ps) => ps.to_json(),
                None => Value::Null,
            },
        ),
        ("body", m.body.to_json()),
        ("line", m.line.to_json()),
    ])
}

fn macro_from_json(v: &Value) -> Option<MacroDef> {
    let params = match v.get("params")? {
        Value::Null => None,
        arr => Some(
            arr.as_array()?
                .iter()
                .map(|p| p.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?,
        ),
    };
    Some(MacroDef {
        name: v.get("name")?.as_str()?.to_string(),
        params,
        body: v.get("body")?.as_str()?.to_string(),
        line: v.get("line")?.as_u64()? as u32,
    })
}

fn finding_from_json(v: &Value) -> Option<Finding> {
    let pattern = v.get("pattern")?.as_str()?;
    let pattern = AntiPattern::all().into_iter().find(|p| p.id() == pattern)?;
    let impact = match v.get("impact")?.as_str()? {
        "Leak" => Impact::Leak,
        "UAF" => Impact::Uaf,
        "NPD" => Impact::Npd,
        _ => return None,
    };
    Some(Finding {
        pattern,
        impact,
        file: v.get("file")?.as_str()?.to_string(),
        function: v.get("function")?.as_str()?.to_string(),
        line: v.get("line")?.as_u64()? as u32,
        api: v.get("api")?.as_str()?.to_string(),
        object: match v.get("object")? {
            Value::Null => None,
            s => Some(s.as_str()?.to_string()),
        },
        message: v.get("message")?.as_str()?.to_string(),
        feasibility: refminer_checkers::Feasibility::from_name(v.get("feasibility")?.as_str()?)?,
        checkers: v
            .get("checkers")?
            .as_array()?
            .iter()
            .map(|c| c.as_str().map(str::to_string))
            .collect::<Option<_>>()?,
    })
}

fn flow_to_json(flow: ObjectFlow) -> Value {
    Value::Str(match flow {
        ObjectFlow::Arg(i) => format!("arg:{i}"),
        ObjectFlow::Returned => "ret".to_string(),
        ObjectFlow::ArgAndReturned(i) => format!("argret:{i}"),
    })
}

fn flow_from_json(v: &Value) -> Option<ObjectFlow> {
    let s = v.as_str()?;
    if s == "ret" {
        return Some(ObjectFlow::Returned);
    }
    if let Some(i) = s.strip_prefix("arg:") {
        return Some(ObjectFlow::Arg(i.parse().ok()?));
    }
    if let Some(i) = s.strip_prefix("argret:") {
        return Some(ObjectFlow::ArgAndReturned(i.parse().ok()?));
    }
    None
}

fn api_to_json(api: &RcApi) -> Value {
    obj([
        ("name", api.name.to_json()),
        (
            "class",
            Value::Str(
                match api.class {
                    RcClass::General => "general",
                    RcClass::Specific => "specific",
                    RcClass::Embedded => "embedded",
                }
                .to_string(),
            ),
        ),
        (
            "dir",
            Value::Str(
                match api.dir {
                    RcDir::Inc => "inc",
                    RcDir::Dec => "dec",
                }
                .to_string(),
            ),
        ),
        ("flow", flow_to_json(api.flow)),
        ("dec_names", api.dec_names.to_json()),
        ("inc_on_error", api.inc_on_error.to_json()),
        ("may_return_null", api.may_return_null.to_json()),
        ("releases_resources", api.releases_resources.to_json()),
    ])
}

fn api_from_json(v: &Value) -> Option<RcApi> {
    Some(RcApi {
        name: v.get("name")?.as_str()?.to_string(),
        class: match v.get("class")?.as_str()? {
            "general" => RcClass::General,
            "specific" => RcClass::Specific,
            "embedded" => RcClass::Embedded,
            _ => return None,
        },
        dir: match v.get("dir")?.as_str()? {
            "inc" => RcDir::Inc,
            "dec" => RcDir::Dec,
            _ => return None,
        },
        flow: flow_from_json(v.get("flow")?)?,
        dec_names: v
            .get("dec_names")?
            .as_array()?
            .iter()
            .map(|d| d.as_str().map(str::to_string))
            .collect::<Option<Vec<_>>>()?,
        inc_on_error: v.get("inc_on_error")?.as_bool()?,
        may_return_null: v.get("may_return_null")?.as_bool()?,
        releases_resources: v.get("releases_resources")?.as_bool()?,
    })
}

fn indices_to_json(v: &[usize]) -> Value {
    Value::Arr(v.iter().map(|i| i.to_json()).collect())
}

fn indices_from_json(v: &Value) -> Option<Vec<usize>> {
    v.as_array()?
        .iter()
        .map(|i| i.as_u64().map(|i| i as usize))
        .collect()
}

fn call_site_to_json(c: &CallSite) -> Value {
    obj([
        ("callee", c.callee.to_json()),
        (
            "args",
            Value::Arr(
                c.args
                    .iter()
                    .map(|a| match a {
                        Some(i) => i.to_json(),
                        None => Value::Null,
                    })
                    .collect(),
            ),
        ),
    ])
}

fn call_site_from_json(v: &Value) -> Option<CallSite> {
    let args: Option<Vec<Option<usize>>> = v
        .get("args")?
        .as_array()?
        .iter()
        .map(|a| match a {
            Value::Null => Some(None),
            n => n.as_u64().map(|i| Some(i as usize)),
        })
        .collect();
    Some(CallSite {
        callee: v.get("callee")?.as_str()?.to_string(),
        args: args?,
    })
}

fn unit_exports_to_json(u: &UnitExports) -> Value {
    obj([
        ("path", u.path.to_json()),
        (
            "fns",
            Value::Arr(
                u.fns
                    .iter()
                    .map(|f| {
                        obj([
                            ("name", f.name.to_json()),
                            ("is_static", f.is_static.to_json()),
                            (
                                "calls",
                                Value::Arr(f.calls.iter().map(call_site_to_json).collect()),
                            ),
                            ("stores", indices_to_json(&f.stores)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn unit_exports_from_json(v: &Value) -> Option<UnitExports> {
    let fns: Option<Vec<FnExport>> = v
        .get("fns")?
        .as_array()?
        .iter()
        .map(|f| {
            Some(FnExport {
                name: f.get("name")?.as_str()?.to_string(),
                is_static: f.get("is_static")?.as_bool()?,
                calls: f
                    .get("calls")?
                    .as_array()?
                    .iter()
                    .map(call_site_from_json)
                    .collect::<Option<_>>()?,
                stores: indices_from_json(f.get("stores")?)?,
            })
        })
        .collect();
    Some(UnitExports {
        path: v.get("path")?.as_str()?.to_string(),
        fns: fns?,
    })
}

fn unit_discovery_to_json(d: &UnitDiscovery) -> Value {
    obj([
        (
            "structs",
            Value::Arr(
                d.structs
                    .iter()
                    .map(|s| {
                        obj([
                            ("tag", s.tag.to_json()),
                            ("direct", s.direct.to_json()),
                            ("embeds", s.embeds.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("apis", Value::Arr(d.apis.iter().map(api_to_json).collect())),
    ])
}

fn unit_discovery_from_json(v: &Value) -> Option<UnitDiscovery> {
    let structs: Option<Vec<StructFact>> = v
        .get("structs")?
        .as_array()?
        .iter()
        .map(|s| {
            Some(StructFact {
                tag: s.get("tag")?.as_str()?.to_string(),
                direct: s.get("direct")?.as_bool()?,
                embeds: s
                    .get("embeds")?
                    .as_array()?
                    .iter()
                    .map(|e| e.as_str().map(str::to_string))
                    .collect::<Option<_>>()?,
            })
        })
        .collect();
    let apis: Option<Vec<RcApi>> = v
        .get("apis")?
        .as_array()?
        .iter()
        .map(api_from_json)
        .collect();
    Some(UnitDiscovery {
        structs: structs?,
        apis: apis?,
    })
}

fn loop_to_json(sl: &SmartLoop) -> Value {
    obj([
        ("name", sl.name.to_json()),
        ("iter_arg", sl.iter_arg.to_json()),
        ("dec_name", sl.dec_name.to_json()),
        (
            "embedded_api",
            match &sl.embedded_api {
                Some(a) => a.to_json(),
                None => Value::Null,
            },
        ),
    ])
}

fn loop_from_json(v: &Value) -> Option<SmartLoop> {
    Some(SmartLoop {
        name: v.get("name")?.as_str()?.to_string(),
        iter_arg: v.get("iter_arg")?.as_u64()? as usize,
        dec_name: v.get("dec_name")?.as_str()?.to_string(),
        embedded_api: match v.get("embedded_api")? {
            Value::Null => None,
            s => Some(s.as_str()?.to_string()),
        },
    })
}

/// Serializes a knowledge base with APIs and smartloops in sorted-name
/// order, so equal KBs serialize (and fingerprint) identically.
pub fn kb_to_json(kb: &ApiKb) -> Value {
    let mut apis: Vec<&RcApi> = kb.apis().collect();
    apis.sort_by(|a, b| a.name.cmp(&b.name));
    let mut loops: Vec<&SmartLoop> = kb.smartloops().collect();
    loops.sort_by(|a, b| a.name.cmp(&b.name));
    obj([
        (
            "apis",
            Value::Arr(apis.into_iter().map(api_to_json).collect()),
        ),
        (
            "loops",
            Value::Arr(loops.into_iter().map(loop_to_json).collect()),
        ),
    ])
}

/// Rebuilds a knowledge base from [`kb_to_json`] output. Returns `None`
/// if any member is malformed (a partially-loaded KB would silently
/// change findings — all or nothing).
pub fn kb_from_json(v: &Value) -> Option<ApiKb> {
    let mut kb = ApiKb::new();
    for a in v.get("apis")?.as_array()? {
        kb.insert(api_from_json(a)?);
    }
    for l in v.get("loops")?.as_array()? {
        kb.insert_loop(loop_from_json(l)?);
    }
    Some(kb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn content_hash_is_sensitive() {
        let a = content_hash("int x;\n");
        assert_eq!(a, content_hash("int x;\n"));
        assert_ne!(a, content_hash("int x; \n"));
        assert_ne!(mix(a, 1), mix(a, 2));
    }

    #[test]
    fn kb_fingerprint_ignores_insertion_order() {
        let mut a = ApiKb::new();
        let mut b = ApiKb::new();
        let x = RcApi::dec("x_put", RcClass::Specific, ObjectFlow::Arg(0));
        let y = RcApi::dec("y_put", RcClass::Specific, ObjectFlow::Arg(0));
        a.insert(x.clone());
        a.insert(y.clone());
        b.insert(y);
        b.insert(x);
        assert_eq!(kb_fingerprint(&a), kb_fingerprint(&b));
        assert_ne!(kb_fingerprint(&a), kb_fingerprint(&ApiKb::new()));
    }

    #[test]
    fn kb_round_trips_through_json() {
        let kb = ApiKb::builtin();
        let back = kb_from_json(&kb_to_json(&kb)).expect("round trip");
        assert_eq!(kb_fingerprint(&kb), kb_fingerprint(&back));
        assert_eq!(back.len(), kb.len());
        assert!(back.get("pm_runtime_get_sync").unwrap().inc_on_error);
        assert_eq!(
            back.smartloop("for_each_child_of_node").unwrap().iter_arg,
            1
        );
    }

    #[test]
    fn finding_round_trips_through_json() {
        let f = Finding {
            pattern: AntiPattern::P2,
            impact: Impact::Npd,
            file: "drivers/a/a.c".into(),
            function: "probe".into(),
            line: 12,
            api: "mdesc_grab".into(),
            object: None,
            message: "deref without NULL check".into(),
            feasibility: refminer_checkers::Feasibility::Proven,
            checkers: vec!["ReturnNullChecker".into()],
        };
        assert_eq!(finding_from_json(&f.to_json()), Some(f));
    }

    #[test]
    fn macro_round_trips_through_json() {
        let m = MacroDef {
            name: "for_each_w".into(),
            params: Some(vec!["w".into()]),
            body: "for (w = w_first(); w; w = w_next(w))".into(),
            line: 3,
        };
        assert_eq!(macro_from_json(&macro_to_json(&m)), Some(m));
        let obj_like = MacroDef {
            name: "N".into(),
            params: None,
            body: "4".into(),
            line: 1,
        };
        assert_eq!(macro_from_json(&macro_to_json(&obj_like)), Some(obj_like));
    }

    #[test]
    fn persists_and_reloads_check_and_discovery_layers() {
        let dir = std::env::temp_dir().join(format!(
            "refminer-cache-test-{}-{:x}",
            std::process::id(),
            content_hash("persists_and_reloads")
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut cache = AuditCache::with_dir(&dir);
        assert!(cache.is_empty());
        cache.check_put(
            7,
            9,
            CheckedUnit {
                findings: Vec::new(),
                functions: 4,
                errors: vec![CachedError {
                    kind: UnitErrorKind::GraphBlowup,
                    detail: "big() exceeded cap".into(),
                }],
            },
        );
        cache.discovery_put(11, ApiKb::builtin());
        cache.parse_put(
            5,
            ParsedUnit {
                tu: None,
                parsed_ok: true,
                defines: Vec::new(),
                errors: Vec::new(),
                lines: 40,
            },
        );
        cache.save().expect("save");

        let mut reloaded = AuditCache::with_dir(&dir);
        let c = reloaded.check_get(7, 9).expect("check entry");
        assert_eq!(c.functions, 4);
        assert_eq!(c.errors[0].kind, UnitErrorKind::GraphBlowup);
        let kb = reloaded.discovery_get(11).expect("discovery entry");
        assert_eq!(kb_fingerprint(&kb), kb_fingerprint(&ApiKb::builtin()));
        let p = reloaded.parse_get(5).expect("parse entry");
        assert!(p.parsed_ok);
        assert!(p.tu.is_none(), "ASTs must not round-trip through disk");
        assert_eq!(p.lines, 40);
        assert_eq!(reloaded.stats.check_hits, 1);
        assert_eq!(reloaded.stats.parse_hits, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_layer_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!(
            "refminer-cache-test-{}-{:x}",
            std::process::id(),
            content_hash("export_round_trip")
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let exported = ExportedUnit {
            exports: UnitExports {
                path: "drivers/a/a.c".into(),
                fns: vec![FnExport {
                    name: "helper_put".into(),
                    is_static: false,
                    calls: vec![CallSite {
                        callee: "of_node_put".into(),
                        args: vec![Some(0), None],
                    }],
                    stores: vec![1],
                }],
            },
            discovery: UnitDiscovery {
                structs: vec![StructFact {
                    tag: "widget".into(),
                    direct: true,
                    embeds: vec!["inner".into()],
                }],
                apis: vec![RcApi::dec(
                    "widget_put",
                    RcClass::Specific,
                    ObjectFlow::Arg(0),
                )],
            },
        };

        let mut cache = AuditCache::with_dir(&dir);
        cache.export_put(13, exported.clone());
        cache.save().expect("save");

        let mut reloaded = AuditCache::with_dir(&dir);
        let e = reloaded.export_get(13).expect("export entry");
        assert_eq!(*e, exported);
        assert_eq!(reloaded.stats.export_hits, 1);
        assert!(reloaded.export_get(14).is_none());
        assert_eq!(reloaded.stats.export_misses, 0, "a miss is counted on put");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_config_fingerprint_differs_from_check() {
        let config = AuditConfig::default();
        assert_ne!(
            export_config_fingerprint(&config),
            check_config_fingerprint(&config)
        );
        let single_unit = AuditConfig {
            whole_program: false,
            ..AuditConfig::default()
        };
        assert_ne!(
            check_config_fingerprint(&config),
            check_config_fingerprint(&single_unit),
            "whole-program mode must key the check layer"
        );
    }

    #[test]
    fn interrupted_save_leaves_old_or_new_cache_never_garbage() {
        let dir = std::env::temp_dir().join(format!(
            "refminer-cache-test-{}-{:x}",
            std::process::id(),
            content_hash("interrupted_save")
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let entry = |lines: usize| ParsedUnit {
            tu: None,
            parsed_ok: true,
            defines: Vec::new(),
            errors: Vec::new(),
            lines,
        };

        // A first successful save: the old, valid generation.
        let mut cache = AuditCache::with_dir(&dir);
        cache.parse_put(1, entry(11));
        cache.save().unwrap();
        let old = std::fs::read_to_string(dir.join(CACHE_FILE)).unwrap();
        assert!(AuditCache::with_dir(&dir).parse_get(1).is_some());

        // A writer killed mid-write leaves only a truncated temp file;
        // the live cache file is untouched, so readers still get the
        // complete old generation — never a garbage prefix.
        let killed = dir.join(format!("{CACHE_FILE}.tmp.{}.999", std::process::id()));
        std::fs::write(&killed, &old[..old.len() / 2]).unwrap();
        assert_eq!(std::fs::read_to_string(dir.join(CACHE_FILE)).unwrap(), old);
        assert!(AuditCache::with_dir(&dir).parse_get(1).is_some());
        std::fs::remove_file(&killed).unwrap();

        // The next completed save atomically publishes the new
        // generation and leaves no temp debris behind.
        let mut cache = AuditCache::with_dir(&dir);
        cache.parse_get(1);
        cache.parse_put(2, entry(22));
        cache.save().unwrap();
        let mut reloaded = AuditCache::with_dir(&dir);
        assert!(reloaded.parse_get(1).is_some());
        assert!(reloaded.parse_get(2).is_some());
        let debris: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| Some(e.ok()?.file_name().to_string_lossy().into_owned()))
            .filter(|n| n != CACHE_FILE)
            .collect();
        assert_eq!(debris, Vec::<String>::new());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_cache_file_is_ignored() {
        let dir = std::env::temp_dir().join(format!(
            "refminer-cache-test-{}-{:x}",
            std::process::id(),
            content_hash("malformed_cache_file")
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(CACHE_FILE), "{not json").unwrap();
        let cache = AuditCache::with_dir(&dir);
        assert!(cache.is_empty());
        // Wrong version: also ignored.
        std::fs::write(dir.join(CACHE_FILE), r#"{"version":999}"#).unwrap();
        let cache = AuditCache::with_dir(&dir);
        assert!(cache.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_warm_cache_is_quarantined_and_rebuilds_cold() {
        use crate::{audit_with_cache, AuditConfig, Project};

        let dir = std::env::temp_dir().join(format!(
            "refminer-cache-test-{}-{:x}",
            std::process::id(),
            content_hash("quarantine_regression")
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // Warm the cache with a real audit over a buggy source so the
        // post-quarantine rebuild has findings to compare against.
        let p = Project::from_sources(vec![(
            "drivers/q/q.c".to_string(),
            r#"
struct widget { struct kref refs; };
int widget_probe(struct widget *w)
{
        kref_get(&w->refs);
        if (!w)
                return -EINVAL;
        return 0;
}
"#
            .to_string(),
        )]);
        let cfg = AuditConfig::default();
        let baseline = {
            let mut cache = AuditCache::with_dir(&dir);
            let report = audit_with_cache(&p, &cfg, &mut cache);
            cache.save().unwrap();
            report
        };

        let live = dir.join(CACHE_FILE);
        let aside = dir.join(format!("{CACHE_FILE}{QUARANTINE_SUFFIX}"));
        let good = std::fs::read(&live).unwrap();

        // Corruption one: a single bit flip on the opening brace
        // (0x7b -> 0x5b, '{' -> '['), structurally valid-looking JSON
        // of the wrong shape.
        let mut flipped = good.clone();
        assert_eq!(flipped[0], b'{');
        flipped[0] ^= 0x20;
        std::fs::write(&live, &flipped).unwrap();
        let mut cache = AuditCache::with_dir(&dir);
        assert_eq!(
            cache.load_outcome(),
            &CacheLoadOutcome::Quarantined(aside.clone())
        );
        assert!(cache.is_empty(), "quarantine must rebuild cold");
        // Moved aside intact (evidence), not copied and not deleted.
        assert_eq!(std::fs::read(&aside).unwrap(), flipped);
        assert!(!live.exists(), "the corrupt generation must not stay live");
        let rebuilt = audit_with_cache(&p, &cfg, &mut cache);
        assert_eq!(rebuilt.findings, baseline.findings);
        assert!(rebuilt.cache.parse_misses > 0, "rebuild must be cold");
        cache.save().unwrap();
        assert_eq!(
            AuditCache::with_dir(&dir).load_outcome(),
            &CacheLoadOutcome::Loaded
        );

        // Corruption two: truncate the (healed) file mid-way, as a
        // crash during a non-atomic copy would.
        let healed = std::fs::read(&live).unwrap();
        std::fs::write(&live, &healed[..healed.len() / 2]).unwrap();
        let mut cache = AuditCache::with_dir(&dir);
        assert!(
            matches!(cache.load_outcome(), CacheLoadOutcome::Quarantined(p) if *p == aside),
            "truncated cache must quarantine, got {:?}",
            cache.load_outcome()
        );
        assert!(cache.is_empty());
        let rebuilt = audit_with_cache(&p, &cfg, &mut cache);
        assert_eq!(rebuilt.findings, baseline.findings);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The incremental audit cache: content-hashed per-unit results.
//!
//! Re-auditing a tree where little or nothing changed is the common
//! case for a checker that runs on every commit. The pipeline's unit
//! work is pure — the same file text under the same configuration and
//! knowledge base always produces the same parse, the same graphs and
//! the same findings — so results are memoizable by content hash alone;
//! no timestamps, no filesystem metadata.
//!
//! Four layers, because the stages have different invalidation scopes:
//!
//! - **Parse layer** — keyed by `(content hash, parse limits, seed-KB
//!   fingerprint)`. Holds the unit's macro defines, line count,
//!   parse-stage diagnostics, per-unit discovery facts
//!   ([`UnitDiscovery`]), defined symbols, called names, and (in
//!   memory) the parsed [`TranslationUnit`] itself. Discovery and the
//!   symbol/call digests live here — not in the export layer — so the
//!   cross-unit KB merge and the streaming scheduler's dependency graph
//!   are available the moment parsing ends, before any graphs are
//!   built.
//! - **Export layer** — keyed by `(unit key, export config)`. Holds the
//!   unit's function-effect exports ([`UnitExports`]), which are
//!   whole-tree-independent, so editing one file re-exports exactly
//!   that file.
//! - **Discovery layer** — keyed by a *tree fingerprint* folding every
//!   unit's key, so touching any file re-runs the cross-unit discovery
//!   *merge* (cheap — it folds cached per-unit facts, no ASTs). Holds
//!   the resulting [`ApiKb`].
//! - **Check layer** — keyed by `(unit key, mix(KB fingerprint,
//!   summary-deps fingerprint))`. Holds the unit's findings, function
//!   count and check-stage diagnostics. Editing one file changes that
//!   file's unit key *and* the deps fingerprint of every unit whose
//!   helper calls resolve into it — so a changed helper in `a.c`
//!   re-checks precisely `a.c` and its cross-unit callers, nothing
//!   else. A KB change (new discovered API) still invalidates every
//!   unit, as it must — any unit might call the new API.
//!
//! # Persistence: `audit-cache.bin`
//!
//! With [`AuditCache::with_dir`] the layers persist across processes in
//! a length-prefixed binary container (ASTs are never serialized; the
//! parse layer persists its *metadata* only):
//!
//! ```text
//! magic "RFMCACHE" · version u64 · checksum u64   (24-byte header)
//! body: 4 sections (parse, export, check, discovery), each
//!       count u64, then per entry: key u64 [+ kb u64 for check],
//!       payload-length u64, payload bytes (see crate::binfmt)
//! ```
//!
//! The checksum is FNV-1a over the body. Loading validates the header
//! and walks the section *framing* only — payload bytes are indexed,
//! not decoded — so a warm start costs one file map (the container is
//! memory-mapped read-only where the platform allows, falling back to
//! an owned read) plus O(entries) pointer arithmetic, and each entry
//! deserializes lazily on first use
//! ([`Slot`]). Saving copies still-undecoded payloads byte-for-byte
//! from the loaded buffer, so a warm save doesn't re-encode what it
//! never touched. The same atomic temp-file + rename publish and
//! quarantine-on-corruption self-healing as the JSON era apply, through
//! the same `refminer-faultio` seams.
//!
//! Keys fold in every configuration input that can change the stage's
//! output — resource limits, the nesting threshold, the checker-set
//! fingerprint, the builtin-KB fingerprint — so a stale cache can be
//! *unused*, never *wrong*. The same holds one level down: a corrupt
//! payload (possible only past a checksum collision) fails to decode
//! and degrades to a cache miss.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;

use refminer_checkers::{checker_set_fingerprint, AntiPattern, Finding, Impact};
use refminer_clex::MacroDef;
use refminer_cparse::TranslationUnit;
use refminer_faultio::FileBytes;
use refminer_json::{obj, ToJson, Value};
use refminer_progdb::{CallSite, FnExport, UnitExports};
use refminer_rcapi::{
    ApiKb, ObjectFlow, RcApi, RcClass, RcDir, SmartLoop, StructFact, UnitDiscovery,
};

use crate::audit::{AuditConfig, UnitErrorKind};
use crate::binfmt;

// ----------------------------------------------------------------------
// Hashing and fingerprints.
// ----------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over a byte slice. Fast, dependency-free, and stable across
/// platforms and runs — exactly what cache keys need (`DefaultHasher`
/// makes no cross-version guarantee).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Content hash of a source file's text.
pub fn content_hash(text: &str) -> u64 {
    fnv1a(text.as_bytes())
}

/// Folds another word into an FNV-1a state; used to mix content hashes
/// with configuration fingerprints.
pub fn mix(h: u64, word: u64) -> u64 {
    let mut h = h;
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// On-format version of the parse layer; bump when parse-time
/// extraction changes what a [`ParsedUnit`] carries.
/// v2: parse entries hold per-unit discovery, defined symbols and
/// called names (moved out of the export layer so the KB merge and the
/// streaming scheduler's dependency graph need no graphs).
const PARSE_VERSION: u64 = 2;

/// Fingerprint of the parse-stage configuration. Folds the builtin
/// seed KB because per-unit discovery (now computed at parse time)
/// classifies against it.
pub fn parse_config_fingerprint(config: &AuditConfig) -> u64 {
    let l = &config.limits;
    let mut h = FNV_OFFSET;
    h = mix(h, PARSE_VERSION);
    h = mix(h, l.max_file_bytes as u64);
    h = mix(h, l.max_tokens as u64);
    h = mix(h, l.max_parse_depth as u64);
    h = mix(h, kb_fingerprint(&ApiKb::builtin()));
    h
}

/// Fingerprint of the check-stage configuration.
///
/// `--only-pattern`, `--engines`, and `--subsystem` scope what the
/// check stage produces, so all three key the layer — a filtered or
/// template-only run never poisons (or reuses) full-run entries. The
/// delta engine's own logic version is folded only when the engine is
/// enabled, so template-only entries survive delta-engine changes.
/// The `feasibility` suppression flag is deliberately absent: verdicts
/// are always computed and cached with the findings, and suppression
/// happens post-cache in the report layer, so both modes share the
/// same entries.
pub fn check_config_fingerprint(config: &AuditConfig) -> u64 {
    let mut h = FNV_OFFSET;
    h = mix(h, config.limits.max_graph_nodes as u64);
    h = mix(h, checker_set_fingerprint());
    h = mix(h, config.whole_program as u64);
    h = mix(h, config.engines.template as u64);
    h = mix(h, config.engines.delta as u64);
    if config.engines.delta {
        h = mix(h, refminer_delta::delta_fingerprint());
    }
    match &config.only_patterns {
        None => h = mix(h, 0),
        Some(ps) => {
            h = mix(h, 1);
            for p in ps {
                h = mix(h, fnv1a(p.id().as_bytes()));
            }
        }
    }
    match &config.subsystem {
        None => h = mix(h, 0),
        Some(s) => {
            h = mix(h, 1);
            h = mix(h, fnv1a(s.as_bytes()));
        }
    }
    h
}

/// On-format version of the export layer; bump when the extraction
/// logic changes what a [`UnitExports`] contains.
/// v2: discovery facts moved to the parse layer; export entries are
/// function-effect exports only.
const EXPORT_VERSION: u64 = 2;

/// Fingerprint of the export-stage (phase 1) configuration. Folds the
/// graph cap because exports are read off built graphs.
pub fn export_config_fingerprint(config: &AuditConfig) -> u64 {
    let mut h = FNV_OFFSET;
    h = mix(h, EXPORT_VERSION);
    h = mix(h, config.limits.max_graph_nodes as u64);
    h = mix(h, kb_fingerprint(&ApiKb::builtin()));
    h
}

/// Fingerprint of the discovery configuration, including the builtin
/// seed KB so a binary with a different seed never reuses old results.
pub fn discovery_config_fingerprint(config: &AuditConfig) -> u64 {
    let mut h = FNV_OFFSET;
    h = mix(h, config.nesting_threshold as u64);
    h = mix(h, kb_fingerprint(&ApiKb::builtin()));
    h
}

/// Deterministic fingerprint of a knowledge base: APIs and smartloops
/// serialized in sorted-name order, hashed. Two KBs with equal content
/// fingerprint identically regardless of hash-map iteration order.
pub fn kb_fingerprint(kb: &ApiKb) -> u64 {
    fnv1a(kb_to_json(kb).to_string().as_bytes())
}

// ----------------------------------------------------------------------
// Cached per-unit results.
// ----------------------------------------------------------------------

/// One diagnostic recorded by a cached stage, in push order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedError {
    /// The taxonomy kind.
    pub kind: UnitErrorKind,
    /// Human-readable detail.
    pub detail: String,
}

/// The parse stage's result for one unit.
#[derive(Debug, Clone)]
pub struct ParsedUnit {
    /// The parsed AST. `None` when parsing failed (panic/oversize) —
    /// see [`ParsedUnit::parsed_ok`] — or when the entry was loaded
    /// from disk, where ASTs are not persisted.
    pub tu: Option<TranslationUnit>,
    /// Whether parsing produced a usable (possibly degraded) AST. When
    /// `true` but [`ParsedUnit::tu`] is `None`, re-parsing the same
    /// text reproduces it.
    pub parsed_ok: bool,
    /// `#define`s scanned from the unit, for smartloop discovery.
    pub defines: Vec<MacroDef>,
    /// Parse-stage diagnostics in the order they were recorded.
    pub errors: Vec<CachedError>,
    /// Source lines in the unit (0 for oversize-skipped units, which
    /// never count toward the audit's line total).
    pub lines: usize,
    /// Per-unit discovery facts for the cross-unit KB merge.
    pub discovery: UnitDiscovery,
    /// `(name, is_static)` of every function *defined* in the unit, in
    /// source order — the supply side of the dependency graph. Interned
    /// (`Arc<str>`): the streaming scheduler's closure map shares these
    /// allocations instead of cloning names per edge.
    pub syms: Vec<(Arc<str>, bool)>,
    /// Names *called* anywhere in the unit, sorted and deduplicated —
    /// the demand side of the dependency graph. Interned like `syms`.
    pub called: Vec<Arc<str>>,
}

/// The check stage's result for one unit.
#[derive(Debug, Clone, Default)]
pub struct CheckedUnit {
    /// Findings from this unit, in checker emission order.
    pub findings: Vec<Finding>,
    /// Functions analyzed.
    pub functions: usize,
    /// Check-stage diagnostics in the order they were recorded.
    pub errors: Vec<CachedError>,
}

/// Hit/miss counters for one audit run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Units whose parse-stage result was served from cache.
    pub parse_hits: usize,
    /// Units that were lexed and parsed this run.
    pub parse_misses: usize,
    /// Units whose findings were served from cache.
    pub check_hits: usize,
    /// Units that were graphed and checked this run.
    pub check_misses: usize,
    /// Cross-unit discovery passes served from cache (0 or 1 per run).
    pub discovery_hits: usize,
    /// Cross-unit discovery passes executed this run (0 or 1).
    pub discovery_misses: usize,
    /// Units whose phase-1 summary exports were served from cache.
    pub export_hits: usize,
    /// Units whose summary exports were extracted this run.
    pub export_misses: usize,
}

impl CacheStats {
    /// Fraction of per-unit lookups served from cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.parse_hits + self.check_hits;
        let total = hits + self.parse_misses + self.check_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Fraction of summary-export lookups served from cache, in
    /// `[0, 1]`. Kept separate from [`CacheStats::hit_rate`] so the
    /// historical parse+check rate is comparable across versions.
    pub fn export_hit_rate(&self) -> f64 {
        let total = self.export_hits + self.export_misses;
        if total == 0 {
            0.0
        } else {
            self.export_hits as f64 / total as f64
        }
    }
}

impl ToJson for CacheStats {
    fn to_json(&self) -> Value {
        obj([
            ("parse_hits", self.parse_hits.to_json()),
            ("parse_misses", self.parse_misses.to_json()),
            ("check_hits", self.check_hits.to_json()),
            ("check_misses", self.check_misses.to_json()),
            ("discovery_hits", self.discovery_hits.to_json()),
            ("discovery_misses", self.discovery_misses.to_json()),
            ("export_hits", self.export_hits.to_json()),
            ("export_misses", self.export_misses.to_json()),
            ("hit_rate", self.hit_rate().to_json()),
            ("export_hit_rate", self.export_hit_rate().to_json()),
        ])
    }
}

/// Per-layer counts of cache entries the current run cannot address
/// (see [`AuditCache::stale_counts`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStaleCounts {
    /// Parse-layer entries keyed by content no current unit has.
    pub parse: usize,
    /// Export-layer entries keyed by content no current unit has.
    pub export: usize,
    /// Check-layer entries whose `(unit, deps)` key no current unit
    /// resolves to — superseded by edits to the unit or its helpers.
    pub check: usize,
    /// Discovery entries for trees other than the current one.
    pub discovery: usize,
}

// ----------------------------------------------------------------------
// Lazy slots.
// ----------------------------------------------------------------------

/// One cache entry: either decoded ([`Slot::Mem`]) or still a byte
/// range into the loaded file ([`Slot::Disk`]). Disk slots decode on
/// first lookup and memoize; a save copies their bytes verbatim.
#[derive(Debug)]
enum Slot<T> {
    Mem(Arc<T>),
    Disk { off: usize, len: usize },
}

impl<T> Clone for Slot<T> {
    fn clone(&self) -> Slot<T> {
        match self {
            Slot::Mem(v) => Slot::Mem(v.clone()),
            Slot::Disk { off, len } => Slot::Disk {
                off: *off,
                len: *len,
            },
        }
    }
}

/// Looks `key` up in a slot map, decoding and memoizing a disk slot on
/// first touch. A payload that fails to decode (checksum-collision
/// territory) is dropped — the lookup becomes a miss, never a wrong
/// answer.
fn slot_get<K: Eq + std::hash::Hash + Copy, T>(
    map: &mut HashMap<K, Slot<T>>,
    raw: &Option<Arc<FileBytes>>,
    key: K,
    decode: impl Fn(&[u8]) -> Option<T>,
) -> Option<Arc<T>> {
    let (off, len) = match map.get(&key)? {
        Slot::Mem(v) => return Some(v.clone()),
        Slot::Disk { off, len } => (*off, *len),
    };
    let bytes = raw.as_ref()?;
    match decode(&bytes[off..off + len]) {
        Some(v) => {
            let arc = Arc::new(v);
            map.insert(key, Slot::Mem(arc.clone()));
            Some(arc)
        }
        None => {
            map.remove(&key);
            None
        }
    }
}

/// Decodes a slot without touching the map (for `&self` serializers).
fn slot_peek<'a, T: Clone>(
    slot: &'a Slot<T>,
    raw: &Option<Arc<FileBytes>>,
    decode: impl Fn(&[u8]) -> Option<T>,
) -> Option<std::borrow::Cow<'a, T>> {
    match slot {
        Slot::Mem(v) => Some(std::borrow::Cow::Borrowed(&**v)),
        Slot::Disk { off, len } => {
            let bytes = raw.as_ref()?;
            decode(&bytes[*off..*off + *len]).map(std::borrow::Cow::Owned)
        }
    }
}

// ----------------------------------------------------------------------
// The cache proper.
// ----------------------------------------------------------------------

/// What loading the persisted cache file found, for observability: a
/// corrupt file heals silently (the run goes cold), but daemons and
/// strict callers want to know it happened.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum CacheLoadOutcome {
    /// No cache file existed (or the cache is memory-only).
    #[default]
    Empty,
    /// The file validated and its entries were indexed.
    Loaded,
    /// The file was malformed or version-mismatched; it was renamed
    /// aside to the contained path and the cache rebuilt cold.
    Quarantined(PathBuf),
    /// The file could not be read at all (I/O error); the cache
    /// rebuilt cold and the file was left in place.
    ReadFailed(String),
}

/// The four-layer audit cache. See the module docs for the layering
/// and invalidation rules.
#[derive(Debug, Default)]
pub struct AuditCache {
    parse: HashMap<u64, Slot<ParsedUnit>>,
    export: HashMap<u64, Slot<UnitExports>>,
    check: HashMap<(u64, u64), Slot<CheckedUnit>>,
    discovery: HashMap<u64, Slot<ApiKb>>,
    /// The loaded cache file, backing every `Slot::Disk` byte range —
    /// a read-only memory mapping when the platform supports it, an
    /// owned buffer otherwise (and always for [`AuditCache::load_bytes`]).
    raw: Option<Arc<FileBytes>>,
    /// Counters for the current (or most recent) audit run; reset by
    /// each `audit_with_cache` call.
    pub stats: CacheStats,
    dir: Option<PathBuf>,
    load_outcome: CacheLoadOutcome,
}

/// File name of the persisted cache inside `--cache-dir`.
pub const CACHE_FILE: &str = "audit-cache.bin";

/// Suffix appended to [`CACHE_FILE`] when a corrupt cache is
/// quarantined — renamed aside for post-mortem instead of deleted.
pub const QUARANTINE_SUFFIX: &str = ".corrupt";

/// On-disk format version; bump on any incompatible change. A file
/// with a different version is ignored wholesale.
/// v4: binary container replaces the JSON document; parse entries
/// carry discovery/syms/called; export entries are exports-only.
/// v5: findings carry per-engine attribution (the two-engine audit
/// core); check entries serialized under v4 would deserialize with
/// empty engine lists and mislabel confidence.
const CACHE_VERSION: u64 = 5;

/// First bytes of every cache file; anything else is not ours.
const MAGIC: [u8; 8] = *b"RFMCACHE";

/// Header = magic + version + checksum.
const HEADER_LEN: usize = 24;

impl AuditCache {
    /// An empty, memory-only cache.
    pub fn new() -> AuditCache {
        AuditCache::default()
    }

    /// A cache persisted under `dir`, pre-loaded from
    /// `dir/audit-cache.bin` when that file exists and validates. A
    /// missing file yields an empty cache; a *corrupt* file (truncated,
    /// bit-flipped, or from an incompatible version) is **quarantined**
    /// — renamed aside to `audit-cache.bin.corrupt` for post-mortem —
    /// and the cache rebuilds cold. Persistence failures degrade to
    /// cold runs, never to errors; [`AuditCache::load_outcome`] reports
    /// what happened.
    pub fn with_dir(dir: impl Into<PathBuf>) -> AuditCache {
        let dir = dir.into();
        let mut cache = AuditCache::new();
        let file = dir.join(CACHE_FILE);
        match refminer_faultio::read_mapped(&file) {
            Ok(bytes) => {
                if cache.load_filebytes(bytes) {
                    cache.load_outcome = CacheLoadOutcome::Loaded;
                } else {
                    // Corrupt: quarantine it so the broken generation is
                    // preserved as evidence and can never be re-read as
                    // live state. A failed rename leaves the file for
                    // the next atomic save to overwrite.
                    let aside = dir.join(format!("{CACHE_FILE}{QUARANTINE_SUFFIX}"));
                    let _ = refminer_faultio::rename(&file, &aside);
                    cache.clear_layers();
                    cache.load_outcome = CacheLoadOutcome::Quarantined(aside);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                cache.load_outcome = CacheLoadOutcome::Empty;
            }
            Err(e) => {
                cache.load_outcome = CacheLoadOutcome::ReadFailed(e.to_string());
            }
        }
        cache.dir = Some(dir);
        cache
    }

    /// What loading the persisted file found; `Empty` for memory-only
    /// caches.
    pub fn load_outcome(&self) -> &CacheLoadOutcome {
        &self.load_outcome
    }

    /// Drops every in-memory layer (quarantine rebuilds cold even if a
    /// malformed prefix half-loaded).
    fn clear_layers(&mut self) {
        self.parse.clear();
        self.export.clear();
        self.check.clear();
        self.discovery.clear();
        self.raw = None;
    }

    /// Resets the per-run hit/miss counters.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Parse-layer lookup; counts a hit.
    pub(crate) fn parse_get(&mut self, key: u64) -> Option<Arc<ParsedUnit>> {
        let hit = slot_get(&mut self.parse, &self.raw, key, binfmt::decode_parsed);
        if hit.is_some() {
            self.stats.parse_hits += 1;
        }
        hit
    }

    /// Parse-layer insert; counts the miss that required it.
    pub(crate) fn parse_put(&mut self, key: u64, unit: ParsedUnit) -> Arc<ParsedUnit> {
        self.stats.parse_misses += 1;
        let arc = Arc::new(unit);
        self.parse.insert(key, Slot::Mem(arc.clone()));
        arc
    }

    /// Export-layer lookup; counts a hit.
    pub(crate) fn export_get(&mut self, key: u64) -> Option<Arc<UnitExports>> {
        let hit = slot_get(&mut self.export, &self.raw, key, binfmt::decode_exports);
        if hit.is_some() {
            self.stats.export_hits += 1;
        }
        hit
    }

    /// Export-layer insert; counts the miss that required it.
    pub(crate) fn export_put(&mut self, key: u64, unit: UnitExports) -> Arc<UnitExports> {
        self.stats.export_misses += 1;
        let arc = Arc::new(unit);
        self.export.insert(key, Slot::Mem(arc.clone()));
        arc
    }

    /// Export-layer insert of an already-shared digest (the streaming
    /// scheduler hands exports back as `Arc`s); counts the miss.
    pub(crate) fn export_put_arc(&mut self, key: u64, unit: Arc<UnitExports>) {
        self.stats.export_misses += 1;
        self.export.insert(key, Slot::Mem(unit));
    }

    /// Check-layer lookup; counts a hit.
    pub(crate) fn check_get(&mut self, unit_key: u64, kb_fp: u64) -> Option<Arc<CheckedUnit>> {
        let hit = slot_get(
            &mut self.check,
            &self.raw,
            (unit_key, kb_fp),
            binfmt::decode_checked,
        );
        if hit.is_some() {
            self.stats.check_hits += 1;
        }
        hit
    }

    /// Check-layer insert; counts the miss that required it.
    pub(crate) fn check_put(
        &mut self,
        unit_key: u64,
        kb_fp: u64,
        unit: CheckedUnit,
    ) -> Arc<CheckedUnit> {
        self.stats.check_misses += 1;
        let arc = Arc::new(unit);
        self.check.insert((unit_key, kb_fp), Slot::Mem(arc.clone()));
        arc
    }

    /// An immutable snapshot of the check layer that worker threads can
    /// probe concurrently while the streaming scheduler runs. Cheap:
    /// clones the slot map (Arcs and byte ranges), not the payloads.
    pub(crate) fn check_snapshot(&self) -> CheckSnapshot {
        CheckSnapshot {
            map: self.check.clone(),
            raw: self.raw.clone(),
        }
    }

    /// Re-inserts a snapshot hit as a decoded entry (no stat counting —
    /// the caller accounts hits when it takes them from the snapshot).
    pub(crate) fn check_memoize(&mut self, unit_key: u64, kb_fp: u64, unit: Arc<CheckedUnit>) {
        self.check.insert((unit_key, kb_fp), Slot::Mem(unit));
    }

    /// Discovery-layer lookup; counts a hit.
    pub(crate) fn discovery_get(&mut self, tree_fp: u64) -> Option<Arc<ApiKb>> {
        let hit = slot_get(&mut self.discovery, &self.raw, tree_fp, binfmt::decode_kb);
        if hit.is_some() {
            self.stats.discovery_hits += 1;
        }
        hit
    }

    /// Discovery-layer insert; counts the miss that required it.
    pub(crate) fn discovery_put(&mut self, tree_fp: u64, kb: ApiKb) -> Arc<ApiKb> {
        self.stats.discovery_misses += 1;
        let arc = Arc::new(kb);
        self.discovery.insert(tree_fp, Slot::Mem(arc.clone()));
        arc
    }

    /// Entries per layer: `(parse, export, check, discovery)`.
    pub fn len(&self) -> (usize, usize, usize, usize) {
        (
            self.parse.len(),
            self.export.len(),
            self.check.len(),
            self.discovery.len(),
        )
    }

    /// Whether all layers are empty.
    pub fn is_empty(&self) -> bool {
        self.parse.is_empty()
            && self.export.is_empty()
            && self.check.is_empty()
            && self.discovery.is_empty()
    }

    /// Counts entries that this run could never address — leftovers
    /// whose key no current unit produces. Observability only (the
    /// `cache.*.stale` trace counters); stale entries are already
    /// unreachable by construction, so nothing consults this on the
    /// hot path.
    pub fn stale_counts(
        &self,
        parse_keys: &HashSet<u64>,
        export_keys: &HashSet<u64>,
        check_keys: &HashSet<(u64, u64)>,
        tree_fp: u64,
    ) -> CacheStaleCounts {
        CacheStaleCounts {
            parse: self
                .parse
                .keys()
                .filter(|k| !parse_keys.contains(k))
                .count(),
            export: self
                .export
                .keys()
                .filter(|k| !export_keys.contains(k))
                .count(),
            check: self
                .check
                .keys()
                .filter(|k| !check_keys.contains(k))
                .count(),
            discovery: self.discovery.keys().filter(|&&k| k != tree_fp).count(),
        }
    }

    // ------------------------------------------------------------------
    // Binary persistence.
    // ------------------------------------------------------------------

    /// Serializes every layer into the binary container. Entries are
    /// written in sorted key order, so equal caches produce equal
    /// files; still-undecoded disk slots are copied byte-for-byte.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::new();

        let mut parse: Vec<(u64, &Slot<ParsedUnit>)> =
            self.parse.iter().map(|(k, v)| (*k, v)).collect();
        parse.sort_by_key(|(k, _)| *k);
        binfmt::put_u64(&mut body, parse.len() as u64);
        for (k, slot) in parse {
            binfmt::put_u64(&mut body, k);
            self.put_payload(&mut body, slot, binfmt::encode_parsed);
        }

        let mut export: Vec<(u64, &Slot<UnitExports>)> =
            self.export.iter().map(|(k, v)| (*k, v)).collect();
        export.sort_by_key(|(k, _)| *k);
        binfmt::put_u64(&mut body, export.len() as u64);
        for (k, slot) in export {
            binfmt::put_u64(&mut body, k);
            self.put_payload(&mut body, slot, binfmt::encode_exports);
        }

        let mut check: Vec<(&(u64, u64), &Slot<CheckedUnit>)> = self.check.iter().collect();
        check.sort_by_key(|(k, _)| **k);
        binfmt::put_u64(&mut body, check.len() as u64);
        for ((uk, kb), slot) in check {
            binfmt::put_u64(&mut body, *uk);
            binfmt::put_u64(&mut body, *kb);
            self.put_payload(&mut body, slot, binfmt::encode_checked);
        }

        let mut disc: Vec<(u64, &Slot<ApiKb>)> =
            self.discovery.iter().map(|(k, v)| (*k, v)).collect();
        disc.sort_by_key(|(k, _)| *k);
        binfmt::put_u64(&mut body, disc.len() as u64);
        for (k, slot) in disc {
            binfmt::put_u64(&mut body, k);
            self.put_payload(&mut body, slot, binfmt::encode_kb);
        }

        let mut out = Vec::with_capacity(HEADER_LEN + body.len());
        out.extend_from_slice(&MAGIC);
        binfmt::put_u64(&mut out, CACHE_VERSION);
        binfmt::put_u64(&mut out, fnv1a(&body));
        out.extend_from_slice(&body);
        out
    }

    /// Writes one length-prefixed payload: decoded slots re-encode,
    /// disk slots copy their raw bytes (same version, same layout).
    fn put_payload<T>(
        &self,
        body: &mut Vec<u8>,
        slot: &Slot<T>,
        encode: impl Fn(&mut Vec<u8>, &T),
    ) {
        match slot {
            Slot::Mem(v) => {
                let at = body.len();
                binfmt::put_u64(body, 0); // placeholder
                encode(body, v);
                let len = (body.len() - at - 8) as u64;
                body[at..at + 8].copy_from_slice(&len.to_le_bytes());
            }
            Slot::Disk { off, len } => {
                let raw = self.raw.as_ref().expect("disk slot without backing file");
                binfmt::put_u64(body, *len as u64);
                body.extend_from_slice(&raw[*off..*off + *len]);
            }
        }
    }

    /// Validates a cache file held in an owned buffer and indexes its
    /// entries as lazy disk slots. The test-facing entry point for
    /// corruption scenarios (bit flips, truncation); the production
    /// load path is [`AuditCache::with_dir`], which memory-maps the
    /// file and feeds it through [`AuditCache::load_filebytes`].
    pub fn load_bytes(&mut self, bytes: Vec<u8>) -> bool {
        self.load_filebytes(FileBytes::Owned(bytes))
    }

    /// Validates a cache file and indexes its entries as lazy disk
    /// slots — payloads are *not* decoded here. Returns `false` (caller
    /// quarantines) on a bad magic, a version mismatch, a checksum
    /// mismatch, or malformed framing. The backing bytes may be a
    /// memory mapping; validation (including the full-body checksum)
    /// runs against exactly the bytes later lookups will decode from.
    fn load_filebytes(&mut self, bytes: FileBytes) -> bool {
        if bytes.len() < HEADER_LEN || bytes[..8] != MAGIC {
            return false;
        }
        let version = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        if version != CACHE_VERSION {
            return false;
        }
        let checksum = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        if fnv1a(&bytes[HEADER_LEN..]) != checksum {
            return false;
        }

        // Walk the framing, recording byte ranges. Any structural
        // violation rejects the whole file.
        let mut parse = Vec::new();
        let mut export = Vec::new();
        let mut check = Vec::new();
        let mut disc = Vec::new();
        let ok = (|| {
            let mut d = binfmt::Dec::new(&bytes);
            d.skip(HEADER_LEN)?;
            for _ in 0..d.u64()? {
                let key = d.u64()?;
                let len = d.u64()? as usize;
                let off = d.pos();
                d.skip(len)?;
                parse.push((key, off, len));
            }
            for _ in 0..d.u64()? {
                let key = d.u64()?;
                let len = d.u64()? as usize;
                let off = d.pos();
                d.skip(len)?;
                export.push((key, off, len));
            }
            for _ in 0..d.u64()? {
                let uk = d.u64()?;
                let kb = d.u64()?;
                let len = d.u64()? as usize;
                let off = d.pos();
                d.skip(len)?;
                check.push(((uk, kb), off, len));
            }
            for _ in 0..d.u64()? {
                let key = d.u64()?;
                let len = d.u64()? as usize;
                let off = d.pos();
                d.skip(len)?;
                disc.push((key, off, len));
            }
            d.is_done().then_some(())
        })()
        .is_some();
        if !ok {
            return false;
        }

        for (k, off, len) in parse {
            self.parse.insert(k, Slot::Disk { off, len });
        }
        for (k, off, len) in export {
            self.export.insert(k, Slot::Disk { off, len });
        }
        for (k, off, len) in check {
            self.check.insert(k, Slot::Disk { off, len });
        }
        for (k, off, len) in disc {
            self.discovery.insert(k, Slot::Disk { off, len });
        }
        self.raw = Some(Arc::new(bytes));
        true
    }

    /// Writes the persistable layers to `dir/audit-cache.bin`. A
    /// no-op for memory-only caches.
    pub fn save(&self) -> std::io::Result<()> {
        let Some(dir) = &self.dir else {
            return Ok(());
        };
        refminer_faultio::create_dir_all(dir)?;
        let bytes = self.to_bytes();
        // Atomic replace: write a temp file in the same directory and
        // rename it over the live cache, so an interrupted or
        // concurrent save leaves either the old or the new file on
        // disk — never a truncated one. The temp name is unique per
        // process *and* per save, so concurrent saves (even in-process)
        // race only at the (atomic) rename.
        static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = dir.join(format!("{CACHE_FILE}.tmp.{}.{seq}", std::process::id()));
        // Writes and the publishing rename go through the fault seam,
        // so an injected torn write or rename failure exercises exactly
        // the states a mid-save kill leaves behind.
        if let Err(e) = refminer_faultio::write(&tmp, &bytes) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        refminer_faultio::rename(&tmp, dir.join(CACHE_FILE)).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    // ------------------------------------------------------------------
    // JSON interchange (kept for the bench baseline and debugging).
    // ------------------------------------------------------------------

    /// Serializes every layer as the JSON-era cache document. This is
    /// no longer the persistence format — it exists so benchpipe can
    /// measure binary-vs-JSON load honestly on identical content, and
    /// as a human-readable dump. Disk slots are decoded transiently.
    pub fn to_json_doc(&self) -> Value {
        let mut parse: Vec<(u64, &Slot<ParsedUnit>)> =
            self.parse.iter().map(|(k, v)| (*k, v)).collect();
        parse.sort_by_key(|(k, _)| *k);
        let mut export: Vec<(u64, &Slot<UnitExports>)> =
            self.export.iter().map(|(k, v)| (*k, v)).collect();
        export.sort_by_key(|(k, _)| *k);
        let mut check: Vec<(&(u64, u64), &Slot<CheckedUnit>)> = self.check.iter().collect();
        check.sort_by_key(|(k, _)| **k);
        let mut disc: Vec<(u64, &Slot<ApiKb>)> =
            self.discovery.iter().map(|(k, v)| (*k, v)).collect();
        disc.sort_by_key(|(k, _)| *k);

        obj([
            ("version", CACHE_VERSION.to_json()),
            (
                "parse",
                Value::Arr(
                    parse
                        .iter()
                        .filter_map(|(k, slot)| {
                            let p = slot_peek(slot, &self.raw, binfmt::decode_parsed)?;
                            Some(obj([
                                ("key", hex(*k)),
                                ("parsed_ok", p.parsed_ok.to_json()),
                                ("lines", p.lines.to_json()),
                                ("errors", errors_to_json(&p.errors)),
                                (
                                    "defines",
                                    Value::Arr(p.defines.iter().map(macro_to_json).collect()),
                                ),
                                ("discovery", unit_discovery_to_json(&p.discovery)),
                                (
                                    "syms",
                                    Value::Arr(
                                        p.syms
                                            .iter()
                                            .map(|(n, s)| {
                                                obj([
                                                    ("name", n.to_json()),
                                                    ("static", s.to_json()),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                                (
                                    "called",
                                    Value::Arr(
                                        p.called.iter().map(|c| c.as_ref().to_json()).collect(),
                                    ),
                                ),
                            ]))
                        })
                        .collect(),
                ),
            ),
            (
                "export",
                Value::Arr(
                    export
                        .iter()
                        .filter_map(|(k, slot)| {
                            let e = slot_peek(slot, &self.raw, binfmt::decode_exports)?;
                            Some(obj([
                                ("key", hex(*k)),
                                ("exports", unit_exports_to_json(&e)),
                            ]))
                        })
                        .collect(),
                ),
            ),
            (
                "check",
                Value::Arr(
                    check
                        .iter()
                        .filter_map(|((uk, kb), slot)| {
                            let c = slot_peek(slot, &self.raw, binfmt::decode_checked)?;
                            Some(obj([
                                ("unit", hex(*uk)),
                                ("kb", hex(*kb)),
                                ("functions", c.functions.to_json()),
                                ("findings", c.findings.to_json()),
                                ("errors", errors_to_json(&c.errors)),
                            ]))
                        })
                        .collect(),
                ),
            ),
            (
                "discovery",
                Value::Arr(
                    disc.iter()
                        .filter_map(|(k, slot)| {
                            let kb = slot_peek(slot, &self.raw, binfmt::decode_kb)?;
                            Some(obj([("tree", hex(*k)), ("kb", kb_to_json(&kb))]))
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Merges a JSON cache document into the in-memory maps, skipping
    /// anything malformed. Returns `false` when the version tag is
    /// missing or incompatible. The JSON-era counterpart of
    /// [`AuditCache::load_bytes`], kept for the bench baseline.
    pub fn load_json_doc(&mut self, v: &Value) -> bool {
        if v.get("version").and_then(Value::as_u64) != Some(CACHE_VERSION) {
            return false;
        }
        for entry in v.get("parse").and_then(Value::as_array).unwrap_or(&[]) {
            let Some(key) = entry.get("key").and_then(unhex) else {
                continue;
            };
            let Some(parsed_ok) = entry.get("parsed_ok").and_then(Value::as_bool) else {
                continue;
            };
            let lines = entry.get("lines").and_then(Value::as_u64).unwrap_or(0) as usize;
            let Some(errors) = entry.get("errors").map(errors_from_json) else {
                continue;
            };
            let defines: Option<Vec<MacroDef>> = entry
                .get("defines")
                .and_then(Value::as_array)
                .map(|a| a.iter().filter_map(macro_from_json).collect());
            let Some(defines) = defines else { continue };
            let Some(discovery) = entry.get("discovery").and_then(unit_discovery_from_json) else {
                continue;
            };
            let syms: Option<Vec<(Arc<str>, bool)>> = entry
                .get("syms")
                .and_then(Value::as_array)
                .map(|a| {
                    a.iter()
                        .map(|s| {
                            Some((
                                Arc::from(s.get("name")?.as_str()?),
                                s.get("static")?.as_bool()?,
                            ))
                        })
                        .collect()
                })
                .unwrap_or(None);
            let Some(syms) = syms else { continue };
            let called: Option<Vec<Arc<str>>> = entry
                .get("called")
                .and_then(Value::as_array)
                .map(|a| {
                    a.iter()
                        .map(|c| c.as_str().map(Arc::from))
                        .collect::<Option<_>>()
                })
                .unwrap_or(None);
            let Some(called) = called else { continue };
            self.parse.insert(
                key,
                Slot::Mem(Arc::new(ParsedUnit {
                    tu: None,
                    parsed_ok,
                    defines,
                    errors,
                    lines,
                    discovery,
                    syms,
                    called,
                })),
            );
        }
        for entry in v.get("export").and_then(Value::as_array).unwrap_or(&[]) {
            let Some(key) = entry.get("key").and_then(unhex) else {
                continue;
            };
            let Some(exports) = entry.get("exports").and_then(unit_exports_from_json) else {
                continue;
            };
            self.export.insert(key, Slot::Mem(Arc::new(exports)));
        }
        for entry in v.get("check").and_then(Value::as_array).unwrap_or(&[]) {
            let (Some(uk), Some(kb)) = (
                entry.get("unit").and_then(unhex),
                entry.get("kb").and_then(unhex),
            ) else {
                continue;
            };
            let functions = entry.get("functions").and_then(Value::as_u64).unwrap_or(0) as usize;
            let findings: Option<Vec<Finding>> = entry
                .get("findings")
                .and_then(Value::as_array)
                .map(|a| a.iter().map(finding_from_json).collect::<Option<_>>())
                .unwrap_or(Some(Vec::new()));
            let Some(findings) = findings else { continue };
            let Some(errors) = entry.get("errors").map(errors_from_json) else {
                continue;
            };
            self.check.insert(
                (uk, kb),
                Slot::Mem(Arc::new(CheckedUnit {
                    findings,
                    functions,
                    errors,
                })),
            );
        }
        for entry in v.get("discovery").and_then(Value::as_array).unwrap_or(&[]) {
            let Some(tree) = entry.get("tree").and_then(unhex) else {
                continue;
            };
            let Some(kb) = entry.get("kb").and_then(kb_from_json) else {
                continue;
            };
            self.discovery.insert(tree, Slot::Mem(Arc::new(kb)));
        }
        true
    }
}

/// A point-in-time, thread-shareable view of the check layer. Workers
/// in the streaming scheduler probe it without locking the cache;
/// `get` decodes disk slots transiently (the owning cache memoizes via
/// [`AuditCache::check_memoize`] when the caller reports the hit).
pub(crate) struct CheckSnapshot {
    map: HashMap<(u64, u64), Slot<CheckedUnit>>,
    raw: Option<Arc<FileBytes>>,
}

impl CheckSnapshot {
    pub(crate) fn get(&self, unit_key: u64, kb_fp: u64) -> Option<Arc<CheckedUnit>> {
        match self.map.get(&(unit_key, kb_fp))? {
            Slot::Mem(v) => Some(v.clone()),
            Slot::Disk { off, len } => {
                let bytes = self.raw.as_ref()?;
                binfmt::decode_checked(&bytes[*off..*off + *len]).map(Arc::new)
            }
        }
    }
}

// ----------------------------------------------------------------------
// JSON (de)serialization helpers.
// ----------------------------------------------------------------------
//
// `refminer-json` stores numbers as f64, which cannot represent every
// u64; keys are therefore written as fixed-width hex strings.

fn hex(k: u64) -> Value {
    Value::Str(format!("{k:016x}"))
}

fn unhex(v: &Value) -> Option<u64> {
    u64::from_str_radix(v.as_str()?, 16).ok()
}

fn errors_to_json(errors: &[CachedError]) -> Value {
    Value::Arr(
        errors
            .iter()
            .map(|e| {
                obj([
                    ("kind", Value::Str(e.kind.name().to_string())),
                    ("detail", e.detail.to_json()),
                ])
            })
            .collect(),
    )
}

fn errors_from_json(v: &Value) -> Vec<CachedError> {
    v.as_array()
        .unwrap_or(&[])
        .iter()
        .filter_map(|e| {
            Some(CachedError {
                kind: UnitErrorKind::from_name(e.get("kind")?.as_str()?)?,
                detail: e.get("detail")?.as_str()?.to_string(),
            })
        })
        .collect()
}

fn macro_to_json(m: &MacroDef) -> Value {
    obj([
        ("name", m.name.to_json()),
        (
            "params",
            match &m.params {
                Some(ps) => ps.to_json(),
                None => Value::Null,
            },
        ),
        ("body", m.body.to_json()),
        ("line", m.line.to_json()),
    ])
}

fn macro_from_json(v: &Value) -> Option<MacroDef> {
    let params = match v.get("params")? {
        Value::Null => None,
        arr => Some(
            arr.as_array()?
                .iter()
                .map(|p| p.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?,
        ),
    };
    Some(MacroDef {
        name: v.get("name")?.as_str()?.to_string(),
        params,
        body: v.get("body")?.as_str()?.to_string(),
        line: v.get("line")?.as_u64()? as u32,
    })
}

fn finding_from_json(v: &Value) -> Option<Finding> {
    let pattern = v.get("pattern")?.as_str()?;
    let pattern = AntiPattern::all().into_iter().find(|p| p.id() == pattern)?;
    let impact = match v.get("impact")?.as_str()? {
        "Leak" => Impact::Leak,
        "UAF" => Impact::Uaf,
        "NPD" => Impact::Npd,
        _ => return None,
    };
    Some(Finding {
        pattern,
        impact,
        file: v.get("file")?.as_str()?.to_string(),
        function: v.get("function")?.as_str()?.to_string(),
        line: v.get("line")?.as_u64()? as u32,
        api: v.get("api")?.as_str()?.to_string(),
        object: match v.get("object")? {
            Value::Null => None,
            s => Some(s.as_str()?.to_string()),
        },
        message: v.get("message")?.as_str()?.to_string(),
        feasibility: refminer_checkers::Feasibility::from_name(v.get("feasibility")?.as_str()?)?,
        checkers: v
            .get("checkers")?
            .as_array()?
            .iter()
            .map(|c| c.as_str().map(str::to_string))
            .collect::<Option<_>>()?,
        // Pre-two-engine documents carry no attribution; an absent
        // list reads as legacy (template-implied) rather than failing.
        engines: match v.get("engines") {
            None => Vec::new(),
            Some(a) => a
                .as_array()?
                .iter()
                .map(|e| e.as_str().and_then(refminer_checkers::EngineId::from_name))
                .collect::<Option<_>>()?,
        },
    })
}

fn flow_to_json(flow: ObjectFlow) -> Value {
    Value::Str(match flow {
        ObjectFlow::Arg(i) => format!("arg:{i}"),
        ObjectFlow::Returned => "ret".to_string(),
        ObjectFlow::ArgAndReturned(i) => format!("argret:{i}"),
    })
}

fn flow_from_json(v: &Value) -> Option<ObjectFlow> {
    let s = v.as_str()?;
    if s == "ret" {
        return Some(ObjectFlow::Returned);
    }
    if let Some(i) = s.strip_prefix("arg:") {
        return Some(ObjectFlow::Arg(i.parse().ok()?));
    }
    if let Some(i) = s.strip_prefix("argret:") {
        return Some(ObjectFlow::ArgAndReturned(i.parse().ok()?));
    }
    None
}

fn api_to_json(api: &RcApi) -> Value {
    obj([
        ("name", api.name.to_json()),
        (
            "class",
            Value::Str(
                match api.class {
                    RcClass::General => "general",
                    RcClass::Specific => "specific",
                    RcClass::Embedded => "embedded",
                }
                .to_string(),
            ),
        ),
        (
            "dir",
            Value::Str(
                match api.dir {
                    RcDir::Inc => "inc",
                    RcDir::Dec => "dec",
                }
                .to_string(),
            ),
        ),
        ("flow", flow_to_json(api.flow)),
        ("dec_names", api.dec_names.to_json()),
        ("inc_on_error", api.inc_on_error.to_json()),
        ("may_return_null", api.may_return_null.to_json()),
        ("releases_resources", api.releases_resources.to_json()),
    ])
}

fn api_from_json(v: &Value) -> Option<RcApi> {
    Some(RcApi {
        name: v.get("name")?.as_str()?.to_string(),
        class: match v.get("class")?.as_str()? {
            "general" => RcClass::General,
            "specific" => RcClass::Specific,
            "embedded" => RcClass::Embedded,
            _ => return None,
        },
        dir: match v.get("dir")?.as_str()? {
            "inc" => RcDir::Inc,
            "dec" => RcDir::Dec,
            _ => return None,
        },
        flow: flow_from_json(v.get("flow")?)?,
        dec_names: v
            .get("dec_names")?
            .as_array()?
            .iter()
            .map(|d| d.as_str().map(str::to_string))
            .collect::<Option<Vec<_>>>()?,
        inc_on_error: v.get("inc_on_error")?.as_bool()?,
        may_return_null: v.get("may_return_null")?.as_bool()?,
        releases_resources: v.get("releases_resources")?.as_bool()?,
    })
}

fn indices_to_json(v: &[usize]) -> Value {
    Value::Arr(v.iter().map(|i| i.to_json()).collect())
}

fn indices_from_json(v: &Value) -> Option<Vec<usize>> {
    v.as_array()?
        .iter()
        .map(|i| i.as_u64().map(|i| i as usize))
        .collect()
}

fn call_site_to_json(c: &CallSite) -> Value {
    obj([
        ("callee", c.callee.to_json()),
        (
            "args",
            Value::Arr(
                c.args
                    .iter()
                    .map(|a| match a {
                        Some(i) => i.to_json(),
                        None => Value::Null,
                    })
                    .collect(),
            ),
        ),
    ])
}

fn call_site_from_json(v: &Value) -> Option<CallSite> {
    let args: Option<Vec<Option<usize>>> = v
        .get("args")?
        .as_array()?
        .iter()
        .map(|a| match a {
            Value::Null => Some(None),
            n => n.as_u64().map(|i| Some(i as usize)),
        })
        .collect();
    Some(CallSite {
        callee: v.get("callee")?.as_str()?.to_string(),
        args: args?,
    })
}

fn unit_exports_to_json(u: &UnitExports) -> Value {
    obj([
        ("path", u.path.to_json()),
        (
            "fns",
            Value::Arr(
                u.fns
                    .iter()
                    .map(|f| {
                        obj([
                            ("name", f.name.to_json()),
                            ("is_static", f.is_static.to_json()),
                            (
                                "calls",
                                Value::Arr(f.calls.iter().map(call_site_to_json).collect()),
                            ),
                            ("stores", indices_to_json(&f.stores)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn unit_exports_from_json(v: &Value) -> Option<UnitExports> {
    let fns: Option<Vec<FnExport>> = v
        .get("fns")?
        .as_array()?
        .iter()
        .map(|f| {
            Some(FnExport {
                name: f.get("name")?.as_str()?.to_string(),
                is_static: f.get("is_static")?.as_bool()?,
                calls: f
                    .get("calls")?
                    .as_array()?
                    .iter()
                    .map(call_site_from_json)
                    .collect::<Option<_>>()?,
                stores: indices_from_json(f.get("stores")?)?,
            })
        })
        .collect();
    Some(UnitExports {
        path: v.get("path")?.as_str()?.to_string(),
        fns: fns?,
    })
}

fn unit_discovery_to_json(d: &UnitDiscovery) -> Value {
    obj([
        (
            "structs",
            Value::Arr(
                d.structs
                    .iter()
                    .map(|s| {
                        obj([
                            ("tag", s.tag.to_json()),
                            ("direct", s.direct.to_json()),
                            ("embeds", s.embeds.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("apis", Value::Arr(d.apis.iter().map(api_to_json).collect())),
    ])
}

fn unit_discovery_from_json(v: &Value) -> Option<UnitDiscovery> {
    let structs: Option<Vec<StructFact>> = v
        .get("structs")?
        .as_array()?
        .iter()
        .map(|s| {
            Some(StructFact {
                tag: s.get("tag")?.as_str()?.to_string(),
                direct: s.get("direct")?.as_bool()?,
                embeds: s
                    .get("embeds")?
                    .as_array()?
                    .iter()
                    .map(|e| e.as_str().map(str::to_string))
                    .collect::<Option<_>>()?,
            })
        })
        .collect();
    let apis: Option<Vec<RcApi>> = v
        .get("apis")?
        .as_array()?
        .iter()
        .map(api_from_json)
        .collect();
    Some(UnitDiscovery {
        structs: structs?,
        apis: apis?,
    })
}

fn loop_to_json(sl: &SmartLoop) -> Value {
    obj([
        ("name", sl.name.to_json()),
        ("iter_arg", sl.iter_arg.to_json()),
        ("dec_name", sl.dec_name.to_json()),
        (
            "embedded_api",
            match &sl.embedded_api {
                Some(a) => a.to_json(),
                None => Value::Null,
            },
        ),
    ])
}

fn loop_from_json(v: &Value) -> Option<SmartLoop> {
    Some(SmartLoop {
        name: v.get("name")?.as_str()?.to_string(),
        iter_arg: v.get("iter_arg")?.as_u64()? as usize,
        dec_name: v.get("dec_name")?.as_str()?.to_string(),
        embedded_api: match v.get("embedded_api")? {
            Value::Null => None,
            s => Some(s.as_str()?.to_string()),
        },
    })
}

/// Serializes a knowledge base with APIs and smartloops in sorted-name
/// order, so equal KBs serialize (and fingerprint) identically.
pub fn kb_to_json(kb: &ApiKb) -> Value {
    let mut apis: Vec<&RcApi> = kb.apis().collect();
    apis.sort_by(|a, b| a.name.cmp(&b.name));
    let mut loops: Vec<&SmartLoop> = kb.smartloops().collect();
    loops.sort_by(|a, b| a.name.cmp(&b.name));
    obj([
        (
            "apis",
            Value::Arr(apis.into_iter().map(api_to_json).collect()),
        ),
        (
            "loops",
            Value::Arr(loops.into_iter().map(loop_to_json).collect()),
        ),
    ])
}

/// Rebuilds a knowledge base from [`kb_to_json`] output. Returns `None`
/// if any member is malformed (a partially-loaded KB would silently
/// change findings — all or nothing).
pub fn kb_from_json(v: &Value) -> Option<ApiKb> {
    let mut kb = ApiKb::new();
    for a in v.get("apis")?.as_array()? {
        kb.insert(api_from_json(a)?);
    }
    for l in v.get("loops")?.as_array()? {
        kb.insert_loop(loop_from_json(l)?);
    }
    Some(kb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "refminer-cache-test-{}-{:x}",
            std::process::id(),
            content_hash(tag)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn parsed(lines: usize) -> ParsedUnit {
        ParsedUnit {
            tu: None,
            parsed_ok: true,
            defines: Vec::new(),
            errors: Vec::new(),
            lines,
            discovery: UnitDiscovery::default(),
            syms: Vec::new(),
            called: Vec::new(),
        }
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn content_hash_is_sensitive() {
        let a = content_hash("int x;\n");
        assert_eq!(a, content_hash("int x;\n"));
        assert_ne!(a, content_hash("int x; \n"));
        assert_ne!(mix(a, 1), mix(a, 2));
    }

    #[test]
    fn kb_fingerprint_ignores_insertion_order() {
        let mut a = ApiKb::new();
        let mut b = ApiKb::new();
        let x = RcApi::dec("x_put", RcClass::Specific, ObjectFlow::Arg(0));
        let y = RcApi::dec("y_put", RcClass::Specific, ObjectFlow::Arg(0));
        a.insert(x.clone());
        a.insert(y.clone());
        b.insert(y);
        b.insert(x);
        assert_eq!(kb_fingerprint(&a), kb_fingerprint(&b));
        assert_ne!(kb_fingerprint(&a), kb_fingerprint(&ApiKb::new()));
    }

    #[test]
    fn kb_round_trips_through_json() {
        let kb = ApiKb::builtin();
        let back = kb_from_json(&kb_to_json(&kb)).expect("round trip");
        assert_eq!(kb_fingerprint(&kb), kb_fingerprint(&back));
        assert_eq!(back.len(), kb.len());
        assert!(back.get("pm_runtime_get_sync").unwrap().inc_on_error);
        assert_eq!(
            back.smartloop("for_each_child_of_node").unwrap().iter_arg,
            1
        );
    }

    #[test]
    fn finding_round_trips_through_json() {
        let f = Finding {
            pattern: AntiPattern::P2,
            impact: Impact::Npd,
            file: "drivers/a/a.c".into(),
            function: "probe".into(),
            line: 12,
            api: "mdesc_grab".into(),
            object: None,
            message: "deref without NULL check".into(),
            feasibility: refminer_checkers::Feasibility::Proven,
            checkers: vec!["ReturnNullChecker".into()],
            engines: vec![refminer_checkers::EngineId::Template],
        };
        assert_eq!(finding_from_json(&f.to_json()), Some(f));
    }

    #[test]
    fn macro_round_trips_through_json() {
        let m = MacroDef {
            name: "for_each_w".into(),
            params: Some(vec!["w".into()]),
            body: "for (w = w_first(); w; w = w_next(w))".into(),
            line: 3,
        };
        assert_eq!(macro_from_json(&macro_to_json(&m)), Some(m));
        let obj_like = MacroDef {
            name: "N".into(),
            params: None,
            body: "4".into(),
            line: 1,
        };
        assert_eq!(macro_from_json(&macro_to_json(&obj_like)), Some(obj_like));
    }

    #[test]
    fn persists_and_reloads_all_layers() {
        let dir = test_dir("persists_and_reloads");

        let mut cache = AuditCache::with_dir(&dir);
        assert!(cache.is_empty());
        cache.check_put(
            7,
            9,
            CheckedUnit {
                findings: Vec::new(),
                functions: 4,
                errors: vec![CachedError {
                    kind: UnitErrorKind::GraphBlowup,
                    detail: "big() exceeded cap".into(),
                }],
            },
        );
        cache.discovery_put(11, ApiKb::builtin());
        let mut p = parsed(40);
        p.discovery.apis.push(RcApi::dec(
            "widget_put",
            RcClass::Specific,
            ObjectFlow::Arg(0),
        ));
        p.syms = vec![("probe".into(), true)];
        p.called = vec!["of_node_put".into()];
        cache.parse_put(5, p);
        cache.export_put(
            13,
            UnitExports {
                path: "drivers/a/a.c".into(),
                fns: vec![FnExport {
                    name: "helper_put".into(),
                    is_static: false,
                    calls: vec![CallSite {
                        callee: "of_node_put".into(),
                        args: vec![Some(0), None],
                    }],
                    stores: vec![1],
                }],
            },
        );
        cache.save().expect("save");

        let mut reloaded = AuditCache::with_dir(&dir);
        assert_eq!(reloaded.load_outcome(), &CacheLoadOutcome::Loaded);
        let c = reloaded.check_get(7, 9).expect("check entry");
        assert_eq!(c.functions, 4);
        assert_eq!(c.errors[0].kind, UnitErrorKind::GraphBlowup);
        let kb = reloaded.discovery_get(11).expect("discovery entry");
        assert_eq!(kb_fingerprint(&kb), kb_fingerprint(&ApiKb::builtin()));
        let p = reloaded.parse_get(5).expect("parse entry");
        assert!(p.parsed_ok);
        assert!(p.tu.is_none(), "ASTs must not round-trip through disk");
        assert_eq!(p.lines, 40);
        assert_eq!(p.discovery.apis[0].name, "widget_put");
        assert_eq!(p.syms, vec![(Arc::<str>::from("probe"), true)]);
        assert_eq!(p.called, vec![Arc::<str>::from("of_node_put")]);
        let e = reloaded.export_get(13).expect("export entry");
        assert_eq!(e.fns[0].calls[0].callee, "of_node_put");
        assert_eq!(reloaded.stats.check_hits, 1);
        assert_eq!(reloaded.stats.parse_hits, 1);
        assert_eq!(reloaded.stats.export_hits, 1);
        assert!(reloaded.export_get(14).is_none());
        assert_eq!(reloaded.stats.export_misses, 0, "a miss is counted on put");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_config_fingerprint_differs_from_check() {
        let config = AuditConfig::default();
        assert_ne!(
            export_config_fingerprint(&config),
            check_config_fingerprint(&config)
        );
        assert_ne!(
            export_config_fingerprint(&config),
            parse_config_fingerprint(&config)
        );
        let single_unit = AuditConfig {
            whole_program: false,
            ..AuditConfig::default()
        };
        assert_ne!(
            check_config_fingerprint(&config),
            check_config_fingerprint(&single_unit),
            "whole-program mode must key the check layer"
        );
    }

    #[test]
    fn binary_file_round_trips_and_resaves_byte_identically() {
        // A reloaded cache whose disk slots were never decoded must
        // re-serialize to the exact same bytes (raw-slice copy), and
        // one that *was* fully decoded must too (deterministic codec).
        let mut cache = AuditCache::new();
        cache.parse_put(1, parsed(10));
        cache.parse_put(2, parsed(20));
        cache.check_put(3, 4, CheckedUnit::default());
        cache.discovery_put(5, ApiKb::builtin());
        let bytes = cache.to_bytes();

        let mut lazy = AuditCache::new();
        assert!(lazy.load_bytes(bytes.clone()));
        assert_eq!(lazy.len(), (2, 0, 1, 1));
        assert_eq!(lazy.to_bytes(), bytes, "undecoded resave is a byte copy");

        lazy.parse_get(1);
        lazy.parse_get(2);
        lazy.check_get(3, 4);
        lazy.discovery_get(5);
        assert_eq!(lazy.to_bytes(), bytes, "decoded resave re-encodes equal");
    }

    #[test]
    fn json_doc_carries_the_same_content_as_the_binary() {
        let mut cache = AuditCache::new();
        let mut p = parsed(17);
        p.syms = vec![("f".into(), false)];
        p.called = vec!["g".into()];
        cache.parse_put(1, p);
        cache.export_put(
            2,
            UnitExports {
                path: "a.c".into(),
                fns: Vec::new(),
            },
        );
        cache.discovery_put(3, ApiKb::builtin());

        let doc = cache.to_json_doc();
        let mut back = AuditCache::new();
        assert!(back.load_json_doc(&doc));
        assert_eq!(back.to_bytes(), cache.to_bytes());
    }

    #[test]
    fn old_version_is_rejected_as_cold_never_wrong() {
        let dir = test_dir("version_bump");
        let mut cache = AuditCache::with_dir(&dir);
        cache.parse_put(1, parsed(10));
        cache.save().unwrap();

        // Rewind the version field. The checksum covers the body only,
        // so the file still checksums clean — rejection must come from
        // the version gate alone.
        let live = dir.join(CACHE_FILE);
        let mut bytes = std::fs::read(&live).unwrap();
        bytes[8..16].copy_from_slice(&(CACHE_VERSION - 1).to_le_bytes());
        std::fs::write(&live, &bytes).unwrap();

        let mut old = AuditCache::with_dir(&dir);
        assert!(
            matches!(old.load_outcome(), CacheLoadOutcome::Quarantined(_)),
            "old version must go cold, got {:?}",
            old.load_outcome()
        );
        assert!(old.is_empty());
        assert!(old.parse_get(1).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        // FNV-1a's per-byte step is a bijection of the running state,
        // so any single-byte change to the body always changes the
        // checksum; header damage trips the magic/version/checksum
        // gates directly. Flip every byte (capped stride for speed) and
        // require a cold load each time.
        let mut cache = AuditCache::new();
        cache.parse_put(1, parsed(10));
        cache.check_put(2, 3, CheckedUnit::default());
        let bytes = cache.to_bytes();
        for i in 0..bytes.len() {
            let mut dented = bytes.clone();
            dented[i] ^= 0x20;
            let mut c = AuditCache::new();
            assert!(!c.load_bytes(dented), "byte {i} flip must reject");
        }
        // Truncations: every proper prefix must reject too.
        for cut in 0..bytes.len() {
            let mut c = AuditCache::new();
            assert!(!c.load_bytes(bytes[..cut].to_vec()), "prefix {cut}");
        }
    }

    #[test]
    fn seeded_cache_states_round_trip() {
        // A deterministic mini-fuzzer: derive pseudo-random cache
        // states from a seed and require encode→load→re-encode byte
        // stability for each.
        let mut state = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..8 {
            let mut cache = AuditCache::new();
            for e in 0..(next() % 5) {
                let mut p = parsed((next() % 1000) as usize);
                p.parsed_ok = next() % 2 == 0;
                for s in 0..(next() % 4) {
                    p.syms
                        .push((format!("fn_{round}_{e}_{s}").into(), next() % 2 == 0));
                    p.called.push(format!("callee_{}", next() % 7).into());
                }
                if next() % 2 == 0 {
                    p.errors.push(CachedError {
                        kind: UnitErrorKind::all()
                            [(next() % UnitErrorKind::all().len() as u64) as usize],
                        detail: format!("detail {}", next()),
                    });
                }
                cache.parse_put(next(), p);
            }
            for _ in 0..(next() % 4) {
                let mut fns = Vec::new();
                for f in 0..(next() % 3) {
                    fns.push(FnExport {
                        name: format!("exp_{f}"),
                        is_static: next() % 2 == 0,
                        calls: vec![CallSite {
                            callee: format!("c_{}", next() % 5),
                            args: vec![None, Some((next() % 4) as usize)],
                        }],
                        stores: vec![(next() % 3) as usize],
                    });
                }
                cache.export_put(
                    next(),
                    UnitExports {
                        path: format!("p{}.c", next() % 9),
                        fns,
                    },
                );
            }
            for _ in 0..(next() % 4) {
                let mut findings = Vec::new();
                if next() % 2 == 0 {
                    findings.push(Finding {
                        pattern: AntiPattern::all()
                            [(next() % AntiPattern::all().len() as u64) as usize],
                        impact: [Impact::Leak, Impact::Uaf, Impact::Npd][(next() % 3) as usize],
                        file: format!("f{}.c", next() % 3),
                        function: format!("fn{}", next() % 3),
                        line: (next() % 500) as u32,
                        api: "of_node_get".into(),
                        object: (next() % 2 == 0).then(|| "obj".to_string()),
                        message: format!("m {}", next() % 100),
                        feasibility: [
                            refminer_checkers::Feasibility::Infeasible,
                            refminer_checkers::Feasibility::Assumed,
                            refminer_checkers::Feasibility::Proven,
                        ][(next() % 3) as usize],
                        checkers: vec!["C".into()],
                        engines: Vec::new(),
                    });
                }
                cache.check_put(
                    next(),
                    next(),
                    CheckedUnit {
                        findings,
                        functions: (next() % 40) as usize,
                        errors: Vec::new(),
                    },
                );
            }
            let bytes = cache.to_bytes();
            let mut back = AuditCache::new();
            assert!(back.load_bytes(bytes.clone()), "round {round} must load");
            assert_eq!(back.len(), cache.len(), "round {round} entry counts");
            assert_eq!(back.to_bytes(), bytes, "round {round} byte stability");
            // And through the JSON doc as well.
            let mut via_json = AuditCache::new();
            assert!(via_json.load_json_doc(&cache.to_json_doc()));
            assert_eq!(via_json.to_bytes(), bytes, "round {round} via JSON");
        }
    }

    #[test]
    fn torn_payload_degrades_to_a_miss_not_a_wrong_answer() {
        // Corrupt one payload *and* fix up the checksum, simulating the
        // checksum-collision worst case: the framing loads, but the
        // poisoned entry must fail decode and vanish — a miss — while
        // its neighbors stay servable.
        let mut cache = AuditCache::new();
        cache.parse_put(1, parsed(10));
        cache.parse_put(2, parsed(20));
        let mut bytes = cache.to_bytes();
        // Body layout: count u64 | key=1 u64 | len u64 | payload ...
        // The first payload byte is `parsed_ok`; any value > 1 cannot
        // decode as a bool.
        let first_payload = HEADER_LEN + 8 + 8 + 8;
        bytes[first_payload] = 7;
        let sum = fnv1a(&bytes[HEADER_LEN..]);
        bytes[16..24].copy_from_slice(&sum.to_le_bytes());

        let mut c = AuditCache::new();
        assert!(c.load_bytes(bytes));
        assert_eq!(c.len().0, 2);
        assert!(c.parse_get(1).is_none(), "poisoned entry must miss");
        assert_eq!(c.len().0, 1, "poisoned entry is dropped");
        assert_eq!(c.parse_get(2).expect("neighbor survives").lines, 20);
        assert_eq!(c.stats.parse_hits, 1);
    }

    #[test]
    fn check_snapshot_serves_disk_and_mem_slots() {
        let mut cache = AuditCache::new();
        cache.check_put(
            1,
            2,
            CheckedUnit {
                findings: Vec::new(),
                functions: 6,
                errors: Vec::new(),
            },
        );
        let bytes = cache.to_bytes();
        let mut reloaded = AuditCache::new();
        assert!(reloaded.load_bytes(bytes));
        let snap = reloaded.check_snapshot();
        assert_eq!(snap.get(1, 2).expect("disk slot").functions, 6);
        assert!(snap.get(9, 9).is_none());
        // Memoizing a snapshot hit keeps the layer servable without
        // counting a duplicate hit.
        let arc = snap.get(1, 2).unwrap();
        reloaded.check_memoize(1, 2, arc);
        assert_eq!(reloaded.stats.check_hits, 0);
        assert_eq!(reloaded.check_get(1, 2).unwrap().functions, 6);
        assert_eq!(reloaded.stats.check_hits, 1);
    }

    #[test]
    fn interrupted_save_leaves_old_or_new_cache_never_garbage() {
        let dir = test_dir("interrupted_save");

        // A first successful save: the old, valid generation.
        let mut cache = AuditCache::with_dir(&dir);
        cache.parse_put(1, parsed(11));
        cache.save().unwrap();
        let old = std::fs::read(dir.join(CACHE_FILE)).unwrap();
        assert!(AuditCache::with_dir(&dir).parse_get(1).is_some());

        // A writer killed mid-write leaves only a truncated temp file;
        // the live cache file is untouched, so readers still get the
        // complete old generation — never a garbage prefix.
        let killed = dir.join(format!("{CACHE_FILE}.tmp.{}.999", std::process::id()));
        std::fs::write(&killed, &old[..old.len() / 2]).unwrap();
        assert_eq!(std::fs::read(dir.join(CACHE_FILE)).unwrap(), old);
        assert!(AuditCache::with_dir(&dir).parse_get(1).is_some());
        std::fs::remove_file(&killed).unwrap();

        // The next completed save atomically publishes the new
        // generation and leaves no temp debris behind.
        let mut cache = AuditCache::with_dir(&dir);
        cache.parse_get(1);
        cache.parse_put(2, parsed(22));
        cache.save().unwrap();
        let mut reloaded = AuditCache::with_dir(&dir);
        assert!(reloaded.parse_get(1).is_some());
        assert!(reloaded.parse_get(2).is_some());
        let debris: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| Some(e.ok()?.file_name().to_string_lossy().into_owned()))
            .filter(|n| n != CACHE_FILE)
            .collect();
        assert_eq!(debris, Vec::<String>::new());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_cache_file_is_ignored() {
        let dir = test_dir("malformed_cache_file");
        std::fs::create_dir_all(&dir).unwrap();
        // Not even our magic (e.g. a leftover JSON-era cache).
        std::fs::write(dir.join(CACHE_FILE), "{\"version\":3}").unwrap();
        let cache = AuditCache::with_dir(&dir);
        assert!(cache.is_empty());
        // Right magic, garbage after it.
        let mut junk = MAGIC.to_vec();
        junk.extend_from_slice(&[0xab; 40]);
        std::fs::write(dir.join(CACHE_FILE), &junk).unwrap();
        let cache = AuditCache::with_dir(&dir);
        assert!(cache.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_warm_cache_is_quarantined_and_rebuilds_cold() {
        use crate::{audit_with_cache, AuditConfig, Project};

        let dir = test_dir("quarantine_regression");

        // Warm the cache with a real audit over a buggy source so the
        // post-quarantine rebuild has findings to compare against.
        let p = Project::from_sources(vec![(
            "drivers/q/q.c".to_string(),
            r#"
struct widget { struct kref refs; };
int widget_probe(struct widget *w)
{
        kref_get(&w->refs);
        if (!w)
                return -EINVAL;
        return 0;
}
"#
            .to_string(),
        )]);
        let cfg = AuditConfig::default();
        let baseline = {
            let mut cache = AuditCache::with_dir(&dir);
            let report = audit_with_cache(&p, &cfg, &mut cache);
            cache.save().unwrap();
            report
        };

        let live = dir.join(CACHE_FILE);
        let aside = dir.join(format!("{CACHE_FILE}{QUARANTINE_SUFFIX}"));
        let good = std::fs::read(&live).unwrap();

        // Corruption one: a single bit flip in the magic.
        let mut flipped = good.clone();
        assert_eq!(flipped[0], b'R');
        flipped[0] ^= 0x20;
        std::fs::write(&live, &flipped).unwrap();
        let mut cache = AuditCache::with_dir(&dir);
        assert_eq!(
            cache.load_outcome(),
            &CacheLoadOutcome::Quarantined(aside.clone())
        );
        assert!(cache.is_empty(), "quarantine must rebuild cold");
        // Moved aside intact (evidence), not copied and not deleted.
        assert_eq!(std::fs::read(&aside).unwrap(), flipped);
        assert!(!live.exists(), "the corrupt generation must not stay live");
        let rebuilt = audit_with_cache(&p, &cfg, &mut cache);
        assert_eq!(rebuilt.findings, baseline.findings);
        assert!(rebuilt.cache.parse_misses > 0, "rebuild must be cold");
        cache.save().unwrap();
        assert_eq!(
            AuditCache::with_dir(&dir).load_outcome(),
            &CacheLoadOutcome::Loaded
        );

        // Corruption two: truncate the (healed) file mid-way, as a
        // crash during a non-atomic copy would.
        let healed = std::fs::read(&live).unwrap();
        std::fs::write(&live, &healed[..healed.len() / 2]).unwrap();
        let mut cache = AuditCache::with_dir(&dir);
        assert!(
            matches!(cache.load_outcome(), CacheLoadOutcome::Quarantined(p) if *p == aside),
            "truncated cache must quarantine, got {:?}",
            cache.load_outcome()
        );
        assert!(cache.is_empty());
        let rebuilt = audit_with_cache(&p, &cfg, &mut cache);
        assert_eq!(rebuilt.findings, baseline.findings);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

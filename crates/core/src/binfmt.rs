//! The binary payload codec for the persisted audit cache.
//!
//! `audit-cache.bin` is a length-prefixed container (framed in
//! [`crate::cache`]); this module encodes and decodes the *per-entry
//! payloads* — one [`ParsedUnit`], [`UnitExports`], [`CheckedUnit`] or
//! [`ApiKb`] each. The design goals, in order:
//!
//! - **Lazy**: every payload is self-contained, so the loader can index
//!   `(key, offset, length)` without touching a single payload byte and
//!   decode only the entries a run actually addresses.
//! - **Total decoding**: `decode_*` returns `Option` and never panics
//!   on any byte string — lengths are bounds-checked against the
//!   remaining input, strings are UTF-8-validated, enum tags are
//!   matched exhaustively. (The container checksums the whole body, so
//!   a failing payload decode is a checksum-collision-grade event; it
//!   degrades to a cache miss, never to wrong results.)
//! - **Deterministic**: equal values encode to equal bytes. Knowledge
//!   bases serialize their APIs and smartloops in sorted-name order,
//!   exactly like the JSON codec, so fingerprints are order-free.
//!
//! Primitive wire forms, all little-endian: `u64` (8 bytes), `u32`
//! (4 bytes), `u8` tags, `bool` as `0/1`, strings and vectors prefixed
//! with a `u32` count. Enum tags are positional indices into the
//! taxonomy-order lists (`UnitErrorKind::all()`, `AntiPattern::all()`)
//! or explicit `match`es — stable as long as the order is, which the
//! cache version guards.

use refminer_checkers::{AntiPattern, EngineId, Finding, Impact};
use refminer_clex::MacroDef;
use refminer_cpg::Feasibility;
use refminer_progdb::{CallSite, FnExport, UnitExports};
use refminer_rcapi::{
    ApiKb, ObjectFlow, RcApi, RcClass, RcDir, SmartLoop, StructFact, UnitDiscovery,
};

use crate::audit::UnitErrorKind;
use crate::cache::{CachedError, CheckedUnit, ParsedUnit};

// ----------------------------------------------------------------------
// Primitives.
// ----------------------------------------------------------------------

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked read cursor over an entry payload (or the container
/// itself). Every accessor returns `None` past the end instead of
/// panicking.
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    /// Skips `n` bytes (used by the container indexer to hop over
    /// payloads without decoding them).
    pub(crate) fn skip(&mut self, n: usize) -> Option<()> {
        self.take(n).map(|_| ())
    }

    /// The cursor position (container framing records payload offsets).
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).ok().map(str::to_string)
    }

    /// Reads a `u32` element count, rejecting counts that could not
    /// possibly fit in the remaining input (every element encodes to at
    /// least one byte) — a corrupt count then fails fast instead of
    /// provoking a giant allocation.
    fn count(&mut self) -> Option<usize> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return None;
        }
        Some(n)
    }
}

fn put_vec<T>(out: &mut Vec<u8>, items: &[T], f: impl Fn(&mut Vec<u8>, &T)) {
    put_u32(out, items.len() as u32);
    for it in items {
        f(out, it);
    }
}

fn get_vec<T>(d: &mut Dec<'_>, f: impl Fn(&mut Dec<'_>) -> Option<T>) -> Option<Vec<T>> {
    let n = d.count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(f(d)?);
    }
    Some(out)
}

fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => put_u8(out, 0),
        Some(s) => {
            put_u8(out, 1);
            put_str(out, s);
        }
    }
}

fn get_opt_str(d: &mut Dec<'_>) -> Option<Option<String>> {
    match d.u8()? {
        0 => Some(None),
        1 => Some(Some(d.str()?)),
        _ => None,
    }
}

// ----------------------------------------------------------------------
// Leaf codecs.
// ----------------------------------------------------------------------

fn put_error(out: &mut Vec<u8>, e: &CachedError) {
    let kind = UnitErrorKind::all()
        .iter()
        .position(|k| *k == e.kind)
        .expect("every kind is in the taxonomy") as u8;
    put_u8(out, kind);
    put_str(out, &e.detail);
}

fn get_error(d: &mut Dec<'_>) -> Option<CachedError> {
    let kind = *UnitErrorKind::all().get(d.u8()? as usize)?;
    Some(CachedError {
        kind,
        detail: d.str()?,
    })
}

fn put_macro(out: &mut Vec<u8>, m: &MacroDef) {
    put_str(out, &m.name);
    match &m.params {
        None => put_u8(out, 0),
        Some(ps) => {
            put_u8(out, 1);
            put_vec(out, ps, |o, p| put_str(o, p));
        }
    }
    put_str(out, &m.body);
    put_u32(out, m.line);
}

fn get_macro(d: &mut Dec<'_>) -> Option<MacroDef> {
    let name = d.str()?;
    let params = match d.u8()? {
        0 => None,
        1 => Some(get_vec(d, |d| d.str())?),
        _ => return None,
    };
    Some(MacroDef {
        name,
        params,
        body: d.str()?,
        line: d.u32()?,
    })
}

fn put_flow(out: &mut Vec<u8>, flow: ObjectFlow) {
    match flow {
        ObjectFlow::Arg(i) => {
            put_u8(out, 0);
            put_u32(out, i as u32);
        }
        ObjectFlow::Returned => put_u8(out, 1),
        ObjectFlow::ArgAndReturned(i) => {
            put_u8(out, 2);
            put_u32(out, i as u32);
        }
    }
}

fn get_flow(d: &mut Dec<'_>) -> Option<ObjectFlow> {
    match d.u8()? {
        0 => Some(ObjectFlow::Arg(d.u32()? as usize)),
        1 => Some(ObjectFlow::Returned),
        2 => Some(ObjectFlow::ArgAndReturned(d.u32()? as usize)),
        _ => None,
    }
}

fn put_api(out: &mut Vec<u8>, api: &RcApi) {
    put_str(out, &api.name);
    put_u8(
        out,
        match api.class {
            RcClass::General => 0,
            RcClass::Specific => 1,
            RcClass::Embedded => 2,
        },
    );
    put_u8(
        out,
        match api.dir {
            RcDir::Inc => 0,
            RcDir::Dec => 1,
        },
    );
    put_flow(out, api.flow);
    put_vec(out, &api.dec_names, |o, n| put_str(o, n));
    put_bool(out, api.inc_on_error);
    put_bool(out, api.may_return_null);
    put_bool(out, api.releases_resources);
}

fn get_api(d: &mut Dec<'_>) -> Option<RcApi> {
    Some(RcApi {
        name: d.str()?,
        class: match d.u8()? {
            0 => RcClass::General,
            1 => RcClass::Specific,
            2 => RcClass::Embedded,
            _ => return None,
        },
        dir: match d.u8()? {
            0 => RcDir::Inc,
            1 => RcDir::Dec,
            _ => return None,
        },
        flow: get_flow(d)?,
        dec_names: get_vec(d, |d| d.str())?,
        inc_on_error: d.bool()?,
        may_return_null: d.bool()?,
        releases_resources: d.bool()?,
    })
}

fn put_struct_fact(out: &mut Vec<u8>, s: &StructFact) {
    put_str(out, &s.tag);
    put_bool(out, s.direct);
    put_vec(out, &s.embeds, |o, e| put_str(o, e));
}

fn get_struct_fact(d: &mut Dec<'_>) -> Option<StructFact> {
    Some(StructFact {
        tag: d.str()?,
        direct: d.bool()?,
        embeds: get_vec(d, |d| d.str())?,
    })
}

fn put_discovery(out: &mut Vec<u8>, disc: &UnitDiscovery) {
    put_vec(out, &disc.structs, put_struct_fact);
    put_vec(out, &disc.apis, put_api);
}

fn get_discovery(d: &mut Dec<'_>) -> Option<UnitDiscovery> {
    Some(UnitDiscovery {
        structs: get_vec(d, get_struct_fact)?,
        apis: get_vec(d, get_api)?,
    })
}

fn put_call_site(out: &mut Vec<u8>, c: &CallSite) {
    put_str(out, &c.callee);
    put_vec(out, &c.args, |o, a| match a {
        None => put_u8(o, 0),
        Some(i) => {
            put_u8(o, 1);
            put_u32(o, *i as u32);
        }
    });
}

fn get_call_site(d: &mut Dec<'_>) -> Option<CallSite> {
    Some(CallSite {
        callee: d.str()?,
        args: get_vec(d, |d| match d.u8()? {
            0 => Some(None),
            1 => Some(Some(d.u32()? as usize)),
            _ => None,
        })?,
    })
}

fn put_finding(out: &mut Vec<u8>, f: &Finding) {
    let pattern = AntiPattern::all()
        .iter()
        .position(|p| *p == f.pattern)
        .expect("every pattern is in all()") as u8;
    put_u8(out, pattern);
    put_u8(
        out,
        match f.impact {
            Impact::Leak => 0,
            Impact::Uaf => 1,
            Impact::Npd => 2,
        },
    );
    put_str(out, &f.file);
    put_str(out, &f.function);
    put_u32(out, f.line);
    put_str(out, &f.api);
    put_opt_str(out, f.object.as_deref());
    put_str(out, &f.message);
    put_u8(
        out,
        match f.feasibility {
            Feasibility::Infeasible => 0,
            Feasibility::Assumed => 1,
            Feasibility::Proven => 2,
        },
    );
    put_vec(out, &f.checkers, |o, c| put_str(o, c));
    put_vec(out, &f.engines, |o, e| {
        put_u8(
            o,
            match e {
                EngineId::Template => 0,
                EngineId::Delta => 1,
            },
        )
    });
}

fn get_finding(d: &mut Dec<'_>) -> Option<Finding> {
    let pattern = *AntiPattern::all().get(d.u8()? as usize)?;
    Some(Finding {
        pattern,
        impact: match d.u8()? {
            0 => Impact::Leak,
            1 => Impact::Uaf,
            2 => Impact::Npd,
            _ => return None,
        },
        file: d.str()?,
        function: d.str()?,
        line: d.u32()?,
        api: d.str()?,
        object: get_opt_str(d)?,
        message: d.str()?,
        feasibility: match d.u8()? {
            0 => Feasibility::Infeasible,
            1 => Feasibility::Assumed,
            2 => Feasibility::Proven,
            _ => return None,
        },
        checkers: get_vec(d, |d| d.str())?,
        engines: get_vec(d, |d| match d.u8()? {
            0 => Some(EngineId::Template),
            1 => Some(EngineId::Delta),
            _ => None,
        })?,
    })
}

fn put_smartloop(out: &mut Vec<u8>, sl: &SmartLoop) {
    put_str(out, &sl.name);
    put_u32(out, sl.iter_arg as u32);
    put_str(out, &sl.dec_name);
    put_opt_str(out, sl.embedded_api.as_deref());
}

fn get_smartloop(d: &mut Dec<'_>) -> Option<SmartLoop> {
    Some(SmartLoop {
        name: d.str()?,
        iter_arg: d.u32()? as usize,
        dec_name: d.str()?,
        embedded_api: get_opt_str(d)?,
    })
}

// ----------------------------------------------------------------------
// Entry payloads.
// ----------------------------------------------------------------------

/// Encodes a parse-layer entry. The AST is never serialized — a decoded
/// entry always has `tu: None` and later stages rehydrate on demand.
pub(crate) fn encode_parsed(out: &mut Vec<u8>, p: &ParsedUnit) {
    put_bool(out, p.parsed_ok);
    put_u64(out, p.lines as u64);
    put_vec(out, &p.errors, put_error);
    put_vec(out, &p.defines, put_macro);
    put_discovery(out, &p.discovery);
    put_vec(out, &p.syms, |o, (name, is_static)| {
        put_str(o, name);
        put_bool(o, *is_static);
    });
    put_vec(out, &p.called, |o, n| put_str(o, n));
}

pub(crate) fn decode_parsed(bytes: &[u8]) -> Option<ParsedUnit> {
    let mut d = Dec::new(bytes);
    let p = ParsedUnit {
        tu: None,
        parsed_ok: d.bool()?,
        lines: d.u64()? as usize,
        errors: get_vec(&mut d, get_error)?,
        defines: get_vec(&mut d, get_macro)?,
        discovery: get_discovery(&mut d)?,
        syms: get_vec(&mut d, |d| {
            Some((std::sync::Arc::from(d.str()?), d.bool()?))
        })?,
        called: get_vec(&mut d, |d| d.str().map(std::sync::Arc::from))?,
    };
    d.is_done().then_some(p)
}

pub(crate) fn encode_exports(out: &mut Vec<u8>, u: &UnitExports) {
    put_str(out, &u.path);
    put_vec(out, &u.fns, |o, f| {
        put_str(o, &f.name);
        put_bool(o, f.is_static);
        put_vec(o, &f.calls, put_call_site);
        put_vec(o, &f.stores, |o, s| put_u32(o, *s as u32));
    });
}

pub(crate) fn decode_exports(bytes: &[u8]) -> Option<UnitExports> {
    let mut d = Dec::new(bytes);
    let u = UnitExports {
        path: d.str()?,
        fns: get_vec(&mut d, |d| {
            Some(FnExport {
                name: d.str()?,
                is_static: d.bool()?,
                calls: get_vec(d, get_call_site)?,
                stores: get_vec(d, |d| Some(d.u32()? as usize))?,
            })
        })?,
    };
    d.is_done().then_some(u)
}

pub(crate) fn encode_checked(out: &mut Vec<u8>, c: &CheckedUnit) {
    put_u64(out, c.functions as u64);
    put_vec(out, &c.findings, put_finding);
    put_vec(out, &c.errors, put_error);
}

pub(crate) fn decode_checked(bytes: &[u8]) -> Option<CheckedUnit> {
    let mut d = Dec::new(bytes);
    let c = CheckedUnit {
        functions: d.u64()? as usize,
        findings: get_vec(&mut d, get_finding)?,
        errors: get_vec(&mut d, get_error)?,
    };
    d.is_done().then_some(c)
}

/// Encodes a knowledge base with APIs and smartloops in sorted-name
/// order — equal KBs encode identically regardless of map iteration
/// order, mirroring the JSON codec used by `kb_fingerprint`.
pub(crate) fn encode_kb(out: &mut Vec<u8>, kb: &ApiKb) {
    let mut apis: Vec<&RcApi> = kb.apis().collect();
    apis.sort_by(|a, b| a.name.cmp(&b.name));
    put_u32(out, apis.len() as u32);
    for api in apis {
        put_api(out, api);
    }
    let mut loops: Vec<&SmartLoop> = kb.smartloops().collect();
    loops.sort_by(|a, b| a.name.cmp(&b.name));
    put_u32(out, loops.len() as u32);
    for sl in loops {
        put_smartloop(out, sl);
    }
}

/// Rebuilds a knowledge base; all-or-nothing like the JSON codec — a
/// partially-loaded KB would silently change findings.
pub(crate) fn decode_kb(bytes: &[u8]) -> Option<ApiKb> {
    let mut d = Dec::new(bytes);
    let mut kb = ApiKb::new();
    for api in get_vec(&mut d, get_api)? {
        kb.insert(api);
    }
    for sl in get_vec(&mut d, get_smartloop)? {
        kb.insert_loop(sl);
    }
    d.is_done().then_some(kb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsed_unit_round_trips() {
        let p = ParsedUnit {
            tu: None,
            parsed_ok: true,
            defines: vec![MacroDef {
                name: "for_each_w".into(),
                params: Some(vec!["w".into()]),
                body: "for (w = w_first(); w; w = w_next(w))".into(),
                line: 3,
            }],
            errors: vec![CachedError {
                kind: UnitErrorKind::LexNoise,
                detail: "2 lex error(s)".into(),
            }],
            lines: 412,
            discovery: UnitDiscovery {
                structs: vec![StructFact {
                    tag: "widget".into(),
                    direct: true,
                    embeds: vec!["inner".into()],
                }],
                apis: vec![RcApi::dec(
                    "widget_put",
                    RcClass::Specific,
                    ObjectFlow::Arg(0),
                )],
            },
            syms: vec![("probe".into(), true), ("widget_put".into(), false)],
            called: vec!["kref_put".into(), "of_node_get".into()],
        };
        let mut bytes = Vec::new();
        encode_parsed(&mut bytes, &p);
        let back = decode_parsed(&bytes).expect("round trip");
        assert!(back.tu.is_none());
        assert_eq!(back.parsed_ok, p.parsed_ok);
        assert_eq!(back.lines, p.lines);
        assert_eq!(back.errors, p.errors);
        assert_eq!(back.defines, p.defines);
        assert_eq!(back.discovery, p.discovery);
        assert_eq!(back.syms, p.syms);
        assert_eq!(back.called, p.called);
    }

    #[test]
    fn exports_round_trip() {
        let u = UnitExports {
            path: "drivers/a/a.c".into(),
            fns: vec![FnExport {
                name: "helper_put".into(),
                is_static: false,
                calls: vec![CallSite {
                    callee: "of_node_put".into(),
                    args: vec![Some(0), None],
                }],
                stores: vec![1],
            }],
        };
        let mut bytes = Vec::new();
        encode_exports(&mut bytes, &u);
        assert_eq!(decode_exports(&bytes), Some(u));
    }

    #[test]
    fn checked_unit_round_trips() {
        let c = CheckedUnit {
            findings: vec![Finding {
                pattern: AntiPattern::P2,
                impact: Impact::Npd,
                file: "drivers/a/a.c".into(),
                function: "probe".into(),
                line: 12,
                api: "mdesc_grab".into(),
                object: Some("md".into()),
                message: "deref without NULL check".into(),
                feasibility: Feasibility::Proven,
                checkers: vec!["ReturnNullChecker".into()],
                engines: vec![EngineId::Template],
            }],
            functions: 7,
            errors: vec![CachedError {
                kind: UnitErrorKind::GraphBlowup,
                detail: "big() exceeded cap".into(),
            }],
        };
        let mut bytes = Vec::new();
        encode_checked(&mut bytes, &c);
        let back = decode_checked(&bytes).expect("round trip");
        assert_eq!(back.findings, c.findings);
        assert_eq!(back.functions, c.functions);
        assert_eq!(back.errors, c.errors);
    }

    #[test]
    fn kb_round_trips_and_is_order_free() {
        let kb = ApiKb::builtin();
        let mut bytes = Vec::new();
        encode_kb(&mut bytes, &kb);
        let back = decode_kb(&bytes).expect("round trip");
        assert_eq!(back.len(), kb.len());
        assert!(back.get("pm_runtime_get_sync").unwrap().inc_on_error);
        let mut again = Vec::new();
        encode_kb(&mut again, &back);
        assert_eq!(bytes, again, "re-encoding is byte-stable");
    }

    #[test]
    fn every_truncation_of_a_payload_fails_closed() {
        let c = CheckedUnit {
            findings: vec![Finding {
                pattern: AntiPattern::P5,
                impact: Impact::Leak,
                file: "a.c".into(),
                function: "f".into(),
                line: 3,
                api: "of_node_get".into(),
                object: None,
                message: "m".into(),
                feasibility: Feasibility::Assumed,
                checkers: vec!["ErrorPathChecker".into()],
                engines: vec![EngineId::Template, EngineId::Delta],
            }],
            functions: 1,
            errors: Vec::new(),
        };
        let mut bytes = Vec::new();
        encode_checked(&mut bytes, &c);
        for cut in 0..bytes.len() {
            assert!(
                decode_checked(&bytes[..cut]).is_none(),
                "truncation at {cut} must not decode"
            );
        }
        // Trailing garbage is rejected too: a payload must consume its
        // slice exactly.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_checked(&padded).is_none());
    }

    #[test]
    fn enum_tags_out_of_range_fail_closed() {
        let mut bytes = Vec::new();
        encode_kb(&mut bytes, &ApiKb::builtin());
        // The first API's class tag sits right after the count and the
        // name; stomp every byte in turn and require no panic — decode
        // either fails or yields *some* KB, never UB or unwinding.
        for i in 0..bytes.len().min(64) {
            let mut dented = bytes.clone();
            dented[i] = 0xff;
            let _ = decode_kb(&dented);
        }
    }
}

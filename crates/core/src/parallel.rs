//! A work-stealing scheduler for per-unit pipeline stages.
//!
//! The audit pipeline is embarrassingly parallel *between* units: each
//! translation unit lexes, parses, graphs and checks independently, and
//! only the cross-unit discovery pass needs everything at once. This
//! module fans a per-unit stage across worker threads while keeping the
//! result order — and therefore the final report — byte-identical to a
//! sequential run.
//!
//! Design:
//!
//! - **Scoped threads, no pool.** Workers are spawned with
//!   [`std::thread::scope`] per stage, so the work closure may borrow
//!   the units, the knowledge base and the limits without `Arc`-wrapping
//!   any of them. Stages are long (whole files), so per-stage spawn cost
//!   is noise.
//! - **Work stealing.** Every worker owns a deque seeded with a
//!   contiguous chunk of unit indices. An owner pops from the front; an
//!   idle worker steals from the *back* of the longest victim queue.
//!   Contiguous seeding keeps the common case (balanced trees) touching
//!   each lock only at its own queue; stealing handles the pathological
//!   tree where one directory holds all the big files.
//! - **Deterministic merge.** Workers tag each result with its input
//!   index; the caller sorts the combined output by index. Scheduling
//!   order can vary freely between runs and job counts — result order
//!   cannot.
//!
//! Fault isolation composes with this scheduler rather than living in
//! it: the audit wraps each unit's work in its own `catch_unwind`
//! boundary *inside* the work closure, so a panicking unit degrades
//! itself without taking down its worker thread.

use std::collections::VecDeque;
use std::sync::Mutex;

use refminer_trace::TraceHandle;

/// Resolves a `--jobs` request to a concrete worker count.
///
/// `0` means "auto": one worker per available hardware thread. Any
/// other value is clamped to the available parallelism — more workers
/// than cores is pure oversubscription for this CPU-bound pipeline
/// (the stages do no blocking I/O), and on small hosts the extra
/// context switching measurably *slows* the audit. The report is
/// byte-identical at any worker count, so the clamp is invisible
/// except in wall time.
pub fn effective_jobs(requested: usize) -> usize {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if requested == 0 {
        available
    } else {
        requested.min(available)
    }
}

/// Runs `work` over every element of `items` across `jobs` workers,
/// returning the results in input order.
///
/// `jobs` is resolved through [`effective_jobs`] and clamped to the
/// item count. With one worker (or zero/one items) the work runs inline
/// on the calling thread — no threads, no locks — which keeps `--jobs 1`
/// an exact replica of the historical sequential pipeline.
///
/// The work closure receives `(index, &item)` so it can key caches or
/// diagnostics off the original position.
///
/// # Examples
///
/// ```
/// use refminer::parallel::run_indexed;
///
/// let items = vec![3u32, 1, 4, 1, 5];
/// let doubled = run_indexed(&items, 4, |_, x| x * 2);
/// assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
/// ```
pub fn run_indexed<T, R, F>(items: &[T], jobs: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_indexed_traced(items, jobs, &TraceHandle::disabled(), "", work)
}

/// Like [`run_indexed`], reporting scheduler behavior to a trace
/// recorder: the number of cross-worker steals lands in a
/// `{stage}.steals` counter and the worker count in `{stage}.workers`.
/// Scheduling is observation-only — a disabled handle, or any handle at
/// all, never changes which items run where or the output order.
pub fn run_indexed_traced<T, R, F>(
    items: &[T],
    jobs: usize,
    trace: &TraceHandle,
    stage: &str,
    work: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_indexed_exact(items, effective_jobs(jobs), trace, stage, work)
}

/// The scheduler proper, taking the worker count literally (no
/// `effective_jobs` resolution beyond the item-count clamp). Kept
/// separate so scheduler tests can exercise real multi-worker runs
/// even on single-core hosts, where [`effective_jobs`] would clamp
/// them to an inline run.
fn run_indexed_exact<T, R, F>(
    items: &[T],
    jobs: usize,
    trace: &TraceHandle,
    stage: &str,
    work: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.min(items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| work(i, t)).collect();
    }
    if trace.is_enabled() && !stage.is_empty() {
        trace.add(&format!("{stage}.workers"), jobs as u64);
    }

    // Seed each worker's deque with a contiguous slice of indices.
    let queues: Vec<Mutex<VecDeque<usize>>> = split_chunks(items.len(), jobs)
        .into_iter()
        .map(Mutex::new)
        .collect();

    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(items.len());
    let mut steals = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|me| {
                let queues = &queues;
                let work = &work;
                s.spawn(move || {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    let mut stolen = 0u64;
                    while let Some((i, was_steal)) = next_index(queues, me) {
                        stolen += u64::from(was_steal);
                        out.push((i, work(i, &items[i])));
                    }
                    (out, stolen)
                })
            })
            .collect();
        for h in handles {
            // A panic here means one escaped the per-unit fault
            // boundary inside `work`; propagate it rather than lose it.
            let (out, stolen) = h.join().expect("audit worker panicked");
            tagged.extend(out);
            steals += stolen;
        }
    });
    if !stage.is_empty() {
        trace.add(&format!("{stage}.steals"), steals);
    }

    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Like [`run_indexed`], additionally returning the stage's wall-clock
/// duration in seconds. The two-phase audit uses this to report how
/// long each fan-out took without the timing influencing any cached or
/// serialized result — findings stay byte-identical at any job count.
pub fn run_indexed_timed<T, R, F>(items: &[T], jobs: usize, work: F) -> (Vec<R>, f64)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let start = std::time::Instant::now();
    let out = run_indexed(items, jobs, work);
    (out, start.elapsed().as_secs_f64())
}

/// Splits `0..n` into `jobs` contiguous chunks, front-loading the
/// remainder so sizes differ by at most one.
fn split_chunks(n: usize, jobs: usize) -> Vec<VecDeque<usize>> {
    let base = n / jobs;
    let extra = n % jobs;
    let mut start = 0;
    (0..jobs)
        .map(|w| {
            let len = base + usize::from(w < extra);
            let q: VecDeque<usize> = (start..start + len).collect();
            start += len;
            q
        })
        .collect()
}

/// Pops the next index for worker `me`: own queue front first, then a
/// steal from the back of the fullest victim. Returns `None` only when
/// every queue is empty — no work is ever added after seeding, so an
/// all-empty sweep is a stable termination condition. The flag reports
/// whether the pop was a cross-worker steal, for the trace counters.
fn next_index(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<(usize, bool)> {
    if let Some(i) = queues[me].lock().unwrap().pop_front() {
        return Some((i, false));
    }
    // Pick the victim with the most remaining work to halve the largest
    // backlog; sizes are read unlocked-then-relocked, so a stale read
    // costs at most a failed steal and another sweep.
    loop {
        let victim = queues
            .iter()
            .enumerate()
            .filter(|(w, _)| *w != me)
            .map(|(w, q)| (w, q.lock().unwrap().len()))
            .max_by_key(|(_, len)| *len)
            .filter(|(_, len)| *len > 0)
            .map(|(w, _)| w)?;
        if let Some(i) = queues[victim].lock().unwrap().pop_back() {
            return Some((i, true));
        }
        // Lost the race for that victim's last item; sweep again.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn auto_jobs_is_positive() {
        assert!(effective_jobs(0) >= 1);
    }

    #[test]
    fn requested_jobs_clamp_to_available_parallelism() {
        let available = effective_jobs(0);
        // Never oversubscribe: a request beyond the core count resolves
        // to the core count; a request within it is honored.
        assert_eq!(effective_jobs(available + 7), available);
        assert_eq!(effective_jobs(1), 1);
        assert_eq!(effective_jobs(available), available);
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(run_indexed(&none, 8, |_, x| *x).is_empty());
        assert_eq!(run_indexed(&[9u32], 8, |_, x| *x + 1), vec![10]);
    }

    #[test]
    fn order_matches_sequential_at_any_job_count() {
        let items: Vec<usize> = (0..101).collect();
        let sequential = run_indexed(&items, 1, |i, x| i * 1000 + x);
        for jobs in [2, 3, 8, 64] {
            // Exercise the scheduler with literal worker counts so the
            // determinism claim is tested with real threads regardless
            // of how many cores the host has.
            let parallel = run_indexed_exact(&items, jobs, &TraceHandle::disabled(), "", |i, x| {
                i * 1000 + x
            });
            assert_eq!(parallel, sequential, "jobs={jobs}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let n = 257;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..n).collect();
        run_indexed_exact(&items, 8, &TraceHandle::disabled(), "", |i, _| {
            counters[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "item {i}");
        }
    }

    #[test]
    fn stealing_drains_imbalanced_work() {
        // One "heavy" item per chunk boundary would serialize without
        // stealing; with it, the run completes and order still holds.
        let items: Vec<u64> = (0..32).map(|i| if i == 0 { 400 } else { 1 }).collect();
        let spins = run_indexed_exact(&items, 4, &TraceHandle::disabled(), "", |_, &ms| {
            // Busy-wait proportional to the item weight.
            let mut acc = 0u64;
            for _ in 0..ms * 1000 {
                acc = acc.wrapping_add(1);
            }
            acc
        });
        assert_eq!(spins.len(), items.len());
    }

    #[test]
    fn timed_variant_preserves_results_and_reports_elapsed() {
        let items: Vec<usize> = (0..40).collect();
        let (out, secs) = run_indexed_timed(&items, 4, |i, x| i + x);
        assert_eq!(out, run_indexed(&items, 1, |i, x| i + x));
        assert!(secs >= 0.0 && secs.is_finite());
    }

    #[test]
    fn traced_variant_counts_steals_without_changing_results() {
        // Item 0 is heavy enough that worker 0 is still busy on it while
        // the other workers drain their own chunks and come stealing.
        // Run the scheduler proper with a literal worker count so this
        // exercises real threads even on a single-core host, where
        // `effective_jobs` would clamp 4 down to an inline run.
        let items: Vec<u64> = (0..32).map(|i| if i == 0 { 20_000 } else { 1 }).collect();
        let trace = TraceHandle::recording();
        let out = run_indexed_exact(&items, 4, &trace, "stage", |_, &ms| {
            let mut acc = 0u64;
            for _ in 0..ms * 1000 {
                acc = acc.wrapping_add(1);
            }
            acc
        });
        assert_eq!(out, run_indexed(&items, 1, |_, &ms| ms * 1000));
        let log = trace.finish().unwrap();
        assert_eq!(log.counters.get("stage.workers"), Some(&4));
        // The heavy item serializes worker 0; the others must steal.
        assert!(log.counters.get("stage.steals").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn chunks_cover_range_without_overlap() {
        for (n, jobs) in [(10, 3), (3, 8), (0, 2), (16, 4)] {
            let chunks = split_chunks(n, jobs);
            let mut all: Vec<usize> = chunks.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..n).collect::<Vec<_>>(), "n={n} jobs={jobs}");
        }
    }
}

//! # refminer
//!
//! A reproduction of *"One Simple API Can Cause Hundreds of Bugs: An
//! Analysis of Refcounting Bugs in All Modern Linux Kernels"*
//! (SOSP '23) as a Rust library: anti-pattern static checkers for
//! refcounting bugs in C codebases, plus the empirical-study pipeline
//! (commit mining, taxonomy, statistics, word2vec keyword analysis).
//!
//! The facade re-exports the subsystem crates and offers the
//! end-to-end [`audit`] pipeline:
//!
//! ```
//! use refminer::{audit, AuditConfig, Project};
//!
//! let project = Project::from_sources(vec![(
//!     "drivers/demo/demo.c".to_string(),
//!     "int f(struct device *d) { int r = pm_runtime_get_sync(d); if (r < 0) return r; pm_runtime_put(d); return 0; }".to_string(),
//! )]);
//! let report = audit(&project, &AuditConfig::default());
//! assert_eq!(report.findings.len(), 1); // the P1 leak
//! ```

mod audit;
mod binfmt;
mod cache;
pub mod cancel;
mod diff;
mod eval;
mod fixcheck;
mod history;
pub mod parallel;
mod project;
pub mod serve;
mod stream;

pub use audit::{
    audit, audit_cancellable, audit_traced, audit_with_cache, AuditConfig, AuditDiagnostics,
    AuditLimits, AuditReport, UnitDiagnostic, UnitErrorKind, UnitOutcome,
};
pub use cache::{
    content_hash, kb_fingerprint, AuditCache, CacheLoadOutcome, CacheStats, CACHE_FILE,
    QUARANTINE_SUFFIX,
};
pub use cancel::{CancelReason, CancelToken, Cancelled};
pub use diff::{
    diff_audit, diff_delta, diff_findings, diff_projects, render_diff_lines, sweep_left_behind,
    DiffDelta, DiffOptions, DiffReport, LeftBehind,
};
pub use eval::{
    evaluate, evaluate_engines, evaluate_sweep, finding_attributed, Counts, EngineEvalReport,
    EvalReport, EvalRow, SweepCounts, SweepEvalReport, SweepGroupRow,
};
pub use fixcheck::{
    evaluate_fixcheck, fixcheck_audit, fixcheck_project, render_fixcheck_lines, FixcheckEvalReport,
    FixcheckEvalRow, FixcheckReport,
};
pub use history::{
    history_audit, render_history_lines, subsystem_of, HistoryRelease, HistoryReport, HistoryRow,
};
pub use parallel::{effective_jobs, run_indexed, run_indexed_timed, run_indexed_traced};
pub use project::{Project, ScanDiagnostic, ScanErrorKind, ScanOptions, SourceUnit};

pub use refminer_checkers as checkers;
pub use refminer_checkers::{AntiPattern, Confidence, EngineId, EngineSet, Finding, Impact};
pub use refminer_clex as clex;
pub use refminer_corpus as corpus;
pub use refminer_cparse as cparse;
pub use refminer_cpg as cpg;
pub use refminer_dataset as dataset;
pub use refminer_delta as delta;
pub use refminer_delta::DeltaEngine;
pub use refminer_fixcheck as fixdiff;
pub use refminer_fixcheck::{
    infer_intents, parse_diff, render_file_diff, FixDiff, FixIntent, IncompleteFix,
};
pub use refminer_progdb as progdb;
pub use refminer_progdb::ProgramDb;
pub use refminer_rcapi as rcapi;
pub use refminer_rcapi::ApiKb;
pub use refminer_report as report;
pub use refminer_sweep as sweep;
pub use refminer_sweep::{BugTemplate, CloneMatch, StructSig};
pub use refminer_template as template;
pub use refminer_trace as trace;
pub use refminer_trace::{TraceHandle, TraceLog, TraceSummary};
pub use refminer_w2v as w2v;

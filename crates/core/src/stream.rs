//! The streaming phase-1→phase-2 handoff.
//!
//! The barrier pipeline exports *every* unit, merges the program
//! database, then checks every unit — so the fastest check waits for
//! the slowest export. This module replaces the barrier with a
//! dependency-aware scheduler: a unit becomes checkable the moment the
//! function-effect exports of its *resolution closure* (itself plus
//! every unit its calls could resolve into, transitively) are merged,
//! so export and check work overlap on the worker pool instead of
//! serializing.
//!
//! # Why a per-closure database is exact
//!
//! Checkers resolve helper effects through a [`ProgramDb`]. Resolution
//! picks the unit's own definition first, else the first external
//! definition in ascending unit order; summaries then run to their
//! least fixed point (the round cap was removed for exactly this
//! property). For a unit set *closed under resolution* and kept in
//! ascending unit order, both the resolution choices and the fixpoint
//! iterates are therefore identical to the global database's — any
//! closed subset converges to the same summaries, the same
//! `deps_fingerprint`, and byte-identical findings. The closure here is
//! computed from the *AST-level* symbol/call digests captured at parse
//! time, which over-approximate the export-level call facts (a faulted
//! export loses calls, never gains them), so the closure is always
//! closed under what the database will actually resolve.
//!
//! Units with very wide closures (hub callees defined in dozens of
//! units, or closures past a size cap) degrade to the *full* set: they
//! wait for the last export and share one global database — exactly
//! the barrier pipeline, scoped to only the units that need it.
//!
//! Cache discipline matches the barrier path: workers only *read* the
//! cache (through a lock-free [`CheckSnapshot`]); every insert happens
//! on the calling thread after the pool joins — and after the
//! cancellation check — so a cancelled streaming audit leaves the
//! cache untouched, placeholders and all.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use refminer_checkers::{AntiPattern, EngineSet, ProgramDb, UnitExports};
use refminer_cparse::ParseLimits;
use refminer_rcapi::ApiKb;
use refminer_trace::TraceHandle;

use crate::audit::{check_one, export_one, AuditLimits};
use crate::cache::{mix, CheckSnapshot, CheckedUnit, ParsedUnit};
use crate::cancel::CancelToken;
use crate::project::SourceUnit;

/// A unit's resolution closure: the unit indices whose exports its
/// checks can observe, or `All` when the closure degenerated to the
/// whole tree (hub callee or size cap).
#[derive(Debug, Clone)]
enum Closure {
    Units(Vec<usize>),
    All,
}

/// Closure size past which a unit degrades to the shared global
/// database — bounding per-check database builds.
const MAX_CLOSURE: usize = 256;

/// Definer count past which a callee name is treated as a hub: any
/// caller degrades to the global database rather than pulling dozens
/// of units into its closure.
const MAX_DEFINERS: usize = 32;

/// How one scheduled check resolved.
pub(crate) enum CheckOutcome {
    /// Served from the snapshot; the caller memoizes it and counts the
    /// hit.
    Hit(Arc<CheckedUnit>),
    /// Computed fresh; the caller inserts it and counts the miss.
    Miss(CheckedUnit),
}

/// Everything the scheduler needs, borrowed from the audit.
pub(crate) struct StreamInput<'a> {
    pub units: &'a [SourceUnit],
    pub unit_keys: &'a [u64],
    pub parsed: &'a [Option<Arc<ParsedUnit>>],
    /// Per-unit export slots; cache hits pre-filled by the caller.
    pub exported: Vec<Option<Arc<UnitExports>>>,
    /// Unit indices whose exports must be computed.
    pub export_todo: &'a [usize],
    /// Units eligible for checking (parsed and inside the subsystem
    /// filter).
    pub check_todo: &'a [usize],
    pub kb: &'a ApiKb,
    /// `mix(kb_fingerprint, check_config_fingerprint)` — the first half
    /// of every check key.
    pub kb_fp: u64,
    pub snapshot: CheckSnapshot,
    pub whole_program: bool,
    pub limits: &'a AuditLimits,
    pub parse_limits: &'a ParseLimits,
    pub only_patterns: Option<&'a [AntiPattern]>,
    /// Which analysis engines each check runs; mirrors the barrier
    /// path's `config.engines` (the set is already folded into
    /// `kb_fp`, so keys distinguish engine configurations).
    pub engines: EngineSet,
    pub jobs: usize,
    pub trace: &'a TraceHandle,
    pub cancel: &'a CancelToken,
}

/// What the scheduler hands back for the caller to commit.
pub(crate) struct StreamResult {
    /// Every unit's exports (cache hits and fresh ones).
    pub exported: Vec<Option<Arc<UnitExports>>>,
    /// Indices of `export_todo` exports actually computed (for cache
    /// insertion); equals `export_todo` unless cancelled.
    pub new_exports: Vec<usize>,
    /// `(unit, deps_fp, outcome)` per scheduled check that ran.
    pub checks: Vec<(usize, u64, CheckOutcome)>,
    /// Time from scheduler start until the last export landed — the
    /// boundary the trace uses to present the overlapped window as
    /// sequential "export" then "check" stages. Timing only.
    pub exports_done: Duration,
}

/// Computes each check-eligible unit's resolution closure from the
/// parse-layer symbol digests.
///
/// Edges go from a caller to **every** unit holding a non-`static`
/// AST-level definition of a called name, not just the one resolution
/// will pick: the database resolves over *exports*, and a unit whose
/// export stage faulted contributes no functions, shifting resolution
/// to a later definer — which the conservative edge set already
/// contains. Own-unit (static) resolution needs no edge: a unit is
/// always in its own closure.
fn closures(
    n: usize,
    parsed: &[Option<Arc<ParsedUnit>>],
    check_todo: &[usize],
    whole_program: bool,
) -> Vec<Option<Closure>> {
    let mut out: Vec<Option<Closure>> = vec![None; n];
    if !whole_program {
        // Single-unit resolution: every closure is the unit itself.
        for &i in check_todo {
            out[i] = Some(Closure::Units(vec![i]));
        }
        return out;
    }

    // Name -> units with a non-static definition, in unit order.
    let mut definers: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, p) in parsed.iter().enumerate() {
        for (name, is_static) in &p.as_ref().unwrap().syms {
            if !is_static {
                definers.entry(name.as_ref()).or_default().push(i);
            }
        }
    }

    for &i in check_todo {
        let mut seen: Vec<usize> = vec![i];
        let mut frontier: Vec<usize> = vec![i];
        let mut all = false;
        'grow: while let Some(j) = frontier.pop() {
            for name in &parsed[j].as_ref().unwrap().called {
                let Some(defs) = definers.get(name.as_ref()) else {
                    continue;
                };
                if defs.len() > MAX_DEFINERS {
                    all = true;
                    break 'grow;
                }
                for &d in defs {
                    if !seen.contains(&d) {
                        if seen.len() >= MAX_CLOSURE {
                            all = true;
                            break 'grow;
                        }
                        seen.push(d);
                        frontier.push(d);
                    }
                }
            }
        }
        out[i] = Some(if all {
            Closure::All
        } else {
            seen.sort_unstable();
            Closure::Units(seen)
        });
    }
    out
}

enum Task {
    Export(usize),
    /// Check with a closed unit subset (exports cloned at dispatch).
    Check(usize, Vec<Arc<UnitExports>>, Vec<usize>),
    /// Check against the shared global database.
    CheckAll(usize, Arc<ProgramDb>),
    /// Build the global database, then re-enter the queue.
    BuildFull,
}

struct State {
    t0: Instant,
    /// Set when the last pending export lands.
    exports_done: Option<Duration>,
    exported: Vec<Option<Arc<UnitExports>>>,
    /// Pending export unit indices (popped LIFO; order is a scheduling
    /// detail, results are index-merged).
    export_tasks: Vec<usize>,
    /// Check-ready units with closed closures.
    ready: Vec<usize>,
    /// Units whose closure is `All`, waiting for the last export.
    all_waiting: Vec<usize>,
    /// Per-unit count of closure members whose exports are missing.
    remaining: HashMap<usize, usize>,
    /// Export index -> eligible units waiting on it.
    dependents: HashMap<usize, Vec<usize>>,
    exports_left: usize,
    full_db: Option<Arc<ProgramDb>>,
    full_db_building: bool,
    in_flight: usize,
    new_exports: Vec<usize>,
    checks: Vec<(usize, u64, CheckOutcome)>,
    cancelled: bool,
}

impl State {
    fn idle_done(&self) -> bool {
        self.cancelled
            || (self.in_flight == 0
                && self.export_tasks.is_empty()
                && self.ready.is_empty()
                && self.all_waiting.is_empty())
    }
}

/// Runs the overlapped export/check phase. Returns with no cache
/// mutation performed; the caller commits results (or discards them on
/// cancellation).
pub(crate) fn run(mut input: StreamInput<'_>) -> StreamResult {
    let n = input.units.len();
    let closures = closures(n, input.parsed, input.check_todo, input.whole_program);
    let exported = std::mem::take(&mut input.exported);

    let t0 = Instant::now();
    let mut state = State {
        t0,
        exports_done: None,
        export_tasks: input.export_todo.to_vec(),
        ready: Vec::new(),
        all_waiting: Vec::new(),
        remaining: HashMap::new(),
        dependents: HashMap::new(),
        exports_left: input.export_todo.len(),
        full_db: None,
        full_db_building: false,
        in_flight: 0,
        new_exports: Vec::new(),
        checks: Vec::with_capacity(input.check_todo.len()),
        cancelled: false,
        exported,
    };

    for &i in input.check_todo {
        match closures[i].as_ref().unwrap() {
            Closure::All => state.all_waiting.push(i),
            Closure::Units(members) => {
                let missing: Vec<usize> = members
                    .iter()
                    .copied()
                    .filter(|&m| state.exported[m].is_none())
                    .collect();
                if missing.is_empty() {
                    state.ready.push(i);
                } else {
                    state.remaining.insert(i, missing.len());
                    for m in missing {
                        state.dependents.entry(m).or_default().push(i);
                    }
                }
            }
        }
    }
    let shared = (Mutex::new(state), Condvar::new());
    let workers = input
        .jobs
        .max(1)
        .min(input.export_todo.len() + input.check_todo.len())
        .max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| worker(&input, &closures, &shared));
        }
    });

    let state = shared.0.into_inner().unwrap();
    StreamResult {
        exported: state.exported,
        new_exports: state.new_exports,
        checks: state.checks,
        exports_done: state.exports_done.unwrap_or_else(|| t0.elapsed()),
    }
}

fn worker(input: &StreamInput<'_>, closures: &[Option<Closure>], shared: &(Mutex<State>, Condvar)) {
    let (lock, cvar) = shared;
    loop {
        let task = {
            let mut st = lock.lock().unwrap();
            loop {
                if input.cancel.is_cancelled() {
                    st.cancelled = true;
                }
                if st.cancelled {
                    cvar.notify_all();
                    return;
                }
                // Checks first: they retire dependency state and keep
                // the pipeline draining toward the report.
                if let Some(i) = st.ready.pop() {
                    st.in_flight += 1;
                    match closures[i].as_ref().unwrap() {
                        Closure::Units(members) => {
                            let exports: Vec<Arc<UnitExports>> = members
                                .iter()
                                .map(|&m| st.exported[m].clone().expect("closure complete"))
                                .collect();
                            break Task::Check(i, exports, members.clone());
                        }
                        Closure::All => {
                            let db = st.full_db.clone().expect("promoted before db");
                            break Task::CheckAll(i, db);
                        }
                    }
                }
                if let Some(i) = st.export_tasks.pop() {
                    st.in_flight += 1;
                    break Task::Export(i);
                }
                if st.exports_left == 0
                    && !st.all_waiting.is_empty()
                    && st.full_db.is_none()
                    && !st.full_db_building
                {
                    st.full_db_building = true;
                    st.in_flight += 1;
                    break Task::BuildFull;
                }
                if st.idle_done() {
                    cvar.notify_all();
                    return;
                }
                st = cvar.wait(st).unwrap();
            }
        };

        match task {
            Task::Export(i) => {
                let result = if input.cancel.is_cancelled() {
                    UnitExports {
                        path: input.units[i].path.clone(),
                        fns: Vec::new(),
                    }
                } else {
                    let _span = input.trace.unit_span("export.unit", &input.units[i].path);
                    export_one(
                        &input.units[i],
                        input.parsed[i].as_ref().unwrap(),
                        input.limits,
                        input.parse_limits,
                        input.trace,
                    )
                };
                let mut st = lock.lock().unwrap();
                st.exported[i] = Some(Arc::new(result));
                st.new_exports.push(i);
                st.exports_left -= 1;
                if st.exports_left == 0 {
                    st.exports_done = Some(st.t0.elapsed());
                }
                if let Some(deps) = st.dependents.remove(&i) {
                    for d in deps {
                        let left = st.remaining.get_mut(&d).expect("tracked dependent");
                        *left -= 1;
                        if *left == 0 {
                            st.remaining.remove(&d);
                            st.ready.push(d);
                        }
                    }
                }
                st.in_flight -= 1;
                cvar.notify_all();
            }
            Task::BuildFull => {
                // Snapshot the complete export set under the lock, build
                // the database outside it.
                let refs: Vec<Arc<UnitExports>> = {
                    let st = lock.lock().unwrap();
                    st.exported
                        .iter()
                        .map(|e| e.clone().expect("all exports done"))
                        .collect()
                };
                let borrowed: Vec<&UnitExports> = refs.iter().map(|a| a.as_ref()).collect();
                let db = Arc::new(ProgramDb::build(&borrowed, input.kb, input.whole_program));
                let mut st = lock.lock().unwrap();
                st.full_db = Some(db);
                st.full_db_building = false;
                let parked = std::mem::take(&mut st.all_waiting);
                st.ready.extend(parked);
                st.in_flight -= 1;
                cvar.notify_all();
            }
            Task::Check(i, exports, _members) => {
                let borrowed: Vec<&UnitExports> = exports.iter().map(|a| a.as_ref()).collect();
                let db = ProgramDb::build(&borrowed, input.kb, input.whole_program);
                run_check(input, i, &db, shared);
            }
            Task::CheckAll(i, db) => {
                run_check(input, i, &db, shared);
            }
        }
    }
}

/// Computes one unit's deps fingerprint against `db`, serves it from
/// the snapshot when possible, and records the outcome.
fn run_check(input: &StreamInput<'_>, i: usize, db: &ProgramDb, shared: &(Mutex<State>, Condvar)) {
    let (lock, cvar) = shared;
    let deps_fp = mix(input.kb_fp, db.deps_fingerprint(&input.units[i].path));
    let outcome = match input.snapshot.get(input.unit_keys[i], deps_fp) {
        Some(hit) => CheckOutcome::Hit(hit),
        None => {
            let fresh = if input.cancel.is_cancelled() {
                CheckedUnit::default()
            } else {
                let _span = input.trace.unit_span("check.unit", &input.units[i].path);
                check_one(
                    &input.units[i],
                    input.parsed[i].as_ref().unwrap(),
                    input.kb,
                    db,
                    input.limits,
                    input.parse_limits,
                    input.only_patterns,
                    input.engines,
                    input.trace,
                )
            };
            CheckOutcome::Miss(fresh)
        }
    };
    let mut st = lock.lock().unwrap();
    st.checks.push((i, deps_fp, outcome));
    st.in_flight -= 1;
    // The last export may have retired while this check ran; if the
    // full-db gate is now open the wake-up below lets a worker take it.
    cvar.notify_all();
}

//! `refminer fixcheck`: audit both sides of a fix and report what the
//! fix left behind.
//!
//! The diff-side mechanics (parsing, reverse-apply, intent inference,
//! the left-behind sweep) live in `refminer-fixcheck`; this module
//! owns the tree-side orchestration:
//!
//! 1. reverse-apply the fix diff onto the *post-fix* tree to
//!    reconstruct the pre-fix sources in memory;
//! 2. audit both trees through one shared [`AuditCache`] (only the
//!    touched units differ, so the second audit re-parses just the
//!    delta);
//! 3. `diff_findings(pre, post)` — the `fixed` bucket is exactly the
//!    set of findings the fix resolved, the `introduced` bucket is
//!    what the fix itself broke;
//! 4. attribute each fixed finding to a diff intent (the acquire or
//!    release API named on a changed line) and sweep the post-fix
//!    findings for sibling sites the fix did not touch.
//!
//! A neutral diff (refactor, comment churn) reverse-applies to a tree
//! with identical findings, so `fixed` is empty and the report is
//! clean by construction — intent inference annotates, it never
//! filters recall.

use std::path::Path;

use refminer_checkers::Finding;
use refminer_fixcheck::{
    check_incomplete, infer_intents, parse_diff, paths_match, FixIntent, IncompleteFix,
};
use refminer_json::{obj, ToJson, Value};

use crate::audit::{audit_with_cache, AuditConfig, AuditReport};
use crate::cache::AuditCache;
use crate::diff::diff_findings;
use crate::project::Project;
use crate::serve::render_finding_line;

/// Everything `refminer fixcheck` reports for one fix diff.
#[derive(Debug)]
pub struct FixcheckReport {
    /// The acquire/release APIs the diff's changed lines name.
    pub intents: Vec<FixIntent>,
    /// Findings present before the fix and gone after it.
    pub fixed: Vec<Finding>,
    /// Findings the fix itself introduced.
    pub introduced: Vec<Finding>,
    /// Per fixed finding: the clone sites still buggy after the fix.
    pub incomplete: Vec<IncompleteFix>,
    /// Source files the diff touched in the tree.
    pub files_changed: usize,
    /// The post-fix audit (findings, KB, cache stats).
    pub report: AuditReport,
}

impl FixcheckReport {
    /// Total left-behind clone matches across all fixed findings.
    pub fn incomplete_total(&self) -> usize {
        self.incomplete.iter().map(|i| i.matches.len()).sum()
    }

    /// A fix is complete when it left nothing behind and broke
    /// nothing: no incomplete matches, no introduced findings.
    pub fn is_clean(&self) -> bool {
        self.incomplete_total() == 0 && self.introduced.is_empty()
    }
}

/// Finds the unit in `project` a diff path names, tolerating the
/// `a/`-style and directory prefixes `paths_match` accepts.
fn unit_index(project: &Project, diff_path: &str) -> Option<usize> {
    project
        .units()
        .iter()
        .position(|u| paths_match(diff_path, &u.path))
}

/// True for the file kinds the scanner audits; diffs routinely also
/// touch manifests, Makefiles and docs, which have no units to match.
fn is_source_path(path: &str) -> bool {
    path.ends_with(".c") || path.ends_with(".h")
}

/// Runs the full fixcheck pipeline against an in-memory post-fix tree.
///
/// Errors (all of which the CLI maps to exit 2) when the diff is not
/// unified-diff text, names a source file the tree does not contain,
/// does not apply to the tree's contents, or touches no source file
/// at all.
pub fn fixcheck_project(
    post: &Project,
    diff_text: &str,
    config: &AuditConfig,
    cache: &mut AuditCache,
) -> Result<FixcheckReport, String> {
    let diff = parse_diff(diff_text)?;
    let mut pre_sources: Vec<(String, String)> = post
        .units()
        .iter()
        .map(|u| (u.path.clone(), u.text.clone()))
        .collect();
    let mut files_changed = 0usize;
    for file in &diff.files {
        if !is_source_path(file.path()) {
            continue;
        }
        if file.is_added() {
            if unit_index(post, file.path()).is_none() {
                return Err(format!(
                    "diff adds `{}` but the tree does not contain it",
                    file.path()
                ));
            }
            // An added file has no pre-fix text: drop it from the
            // reconstructed pre tree.
            pre_sources.retain(|(p, _)| !paths_match(file.path(), p));
            files_changed += 1;
            continue;
        }
        if file.is_deleted() {
            let pre_text = file.reverse_apply("")?;
            pre_sources.push((file.path().to_string(), pre_text));
            files_changed += 1;
            continue;
        }
        let Some(idx) = unit_index(post, file.path()) else {
            return Err(format!(
                "diff touches `{}` but the tree does not contain it",
                file.path()
            ));
        };
        let unit = &post.units()[idx];
        let pre_text = file.reverse_apply(&unit.text)?;
        if let Some(slot) = pre_sources.iter_mut().find(|(p, _)| *p == unit.path) {
            slot.1 = pre_text;
        }
        files_changed += 1;
    }
    if files_changed == 0 {
        return Err("diff does not touch any C source file in the tree".to_string());
    }
    let pre_project = Project::from_sources(pre_sources);
    let report_pre = audit_with_cache(&pre_project, config, cache);
    let report_post = audit_with_cache(post, config, cache);
    let (introduced, fixed, _moved) = diff_findings(&report_pre.findings, &report_post.findings);
    let intents = infer_intents(&diff, &report_post.kb);
    fn source_in(project: &Project) -> impl FnMut(&str) -> Option<String> + '_ {
        move |path: &str| {
            project
                .units()
                .iter()
                .find(|u| u.path == path)
                .map(|u| u.text.clone())
        }
    }
    let incomplete = check_incomplete(
        &fixed,
        &intents,
        &report_post.findings,
        &report_post.kb,
        source_in(&pre_project),
        source_in(post),
    );
    Ok(FixcheckReport {
        intents,
        fixed,
        introduced,
        incomplete,
        files_changed,
        report: report_post,
    })
}

/// Scans `root` (the post-fix tree) and runs [`fixcheck_project`].
pub fn fixcheck_audit(
    root: &Path,
    diff_text: &str,
    config: &AuditConfig,
    cache: &mut AuditCache,
) -> Result<FixcheckReport, String> {
    let post = Project::scan(root).map_err(|e| format!("cannot scan {}: {e}", root.display()))?;
    fixcheck_project(&post, diff_text, config, cache)
}

/// Renders a fixcheck report as the JSONL lines `refminer fixcheck
/// --json` prints: intents, fixed findings, introduced findings, one
/// line per left-behind clone match (ranked by sweep score within
/// each origin), then a summary line. Deterministic for a given tree
/// and diff at any `--jobs` or cache temperature.
pub fn render_fixcheck_lines(r: &FixcheckReport) -> Vec<String> {
    let mut lines = Vec::new();
    for intent in &r.intents {
        let mut v = intent.to_json();
        if let Value::Obj(members) = &mut v {
            members.insert(
                0,
                ("fixcheck".to_string(), Value::Str("intent".to_string())),
            );
        }
        lines.push(v.to_string());
    }
    for f in &r.fixed {
        lines.push(
            obj([
                ("fixcheck", Value::Str("fixed".to_string())),
                ("line", Value::Str(render_finding_line(f))),
            ])
            .to_string(),
        );
    }
    for f in &r.introduced {
        lines.push(
            obj([
                ("fixcheck", Value::Str("introduced".to_string())),
                ("line", Value::Str(render_finding_line(f))),
            ])
            .to_string(),
        );
    }
    for inc in &r.incomplete {
        for m in &inc.matches {
            lines.push(
                obj([
                    ("fixcheck", Value::Str("incomplete".to_string())),
                    (
                        "origin",
                        obj([
                            ("file", inc.origin.file.to_json()),
                            ("function", inc.origin.function.to_json()),
                            ("line", inc.origin.line.to_json()),
                            ("api", inc.origin.api.to_json()),
                        ]),
                    ),
                    (
                        "intent",
                        match &inc.intent {
                            Some(api) => Value::Str(api.clone()),
                            None => Value::Null,
                        },
                    ),
                    ("score", m.score.to_json()),
                    (
                        "confidence",
                        Value::Str(m.finding.confidence().name().to_string()),
                    ),
                    (
                        "engines",
                        Value::Arr(
                            m.finding
                                .engines
                                .iter()
                                .map(|e| Value::Str(e.name().to_string()))
                                .collect(),
                        ),
                    ),
                    ("line", Value::Str(render_finding_line(&m.finding))),
                ])
                .to_string(),
            );
        }
    }
    lines.push(
        obj([
            ("fixcheck", Value::Str("summary".to_string())),
            ("files_changed", r.files_changed.to_json()),
            ("fixed", r.fixed.len().to_json()),
            ("introduced", r.introduced.len().to_json()),
            ("incomplete", r.incomplete_total().to_json()),
            ("clean", r.is_clean().into()),
        ])
        .to_string(),
    );
    lines
}

/// One replayed fix commit in `eval --fixcheck`.
#[derive(Debug)]
pub struct FixcheckEvalRow {
    /// Revision id (`rev01`, …).
    pub revision: String,
    /// The clone group the commit fixed (`cg0`, …), when it fixed one.
    pub group: Option<String>,
    /// Unfixed sibling sites the manifest says should be reported.
    pub expected: usize,
    /// Found / missed / spurious against that ground truth.
    pub counts: crate::eval::SweepCounts,
}

/// `eval --fixcheck` over a `histgen` fix-history root.
#[derive(Debug)]
pub struct FixcheckEvalReport {
    /// One row per non-base revision.
    pub rows: Vec<FixcheckEvalRow>,
    /// Column sums.
    pub totals: crate::eval::SweepCounts,
}

impl ToJson for FixcheckEvalReport {
    fn to_json(&self) -> Value {
        obj([
            (
                "rows",
                Value::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            obj([
                                ("revision", r.revision.to_json()),
                                (
                                    "group",
                                    match &r.group {
                                        Some(g) => g.to_json(),
                                        None => Value::Null,
                                    },
                                ),
                                ("expected", r.expected.to_json()),
                                ("found", r.counts.found.to_json()),
                                ("missed", r.counts.missed.to_json()),
                                ("spurious", r.counts.spurious.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "totals",
                obj([
                    ("found", self.totals.found.to_json()),
                    ("missed", self.totals.missed.to_json()),
                    ("spurious", self.totals.spurious.to_json()),
                    ("recall", self.totals.recall().to_json()),
                ]),
            ),
        ])
    }
}

/// Replays every commit of a `histgen` fix-history root through the
/// fixcheck pipeline and scores the incomplete-fix reports against
/// the manifest's clone-group ground truth.
///
/// For a commit that fixes group `g` member 0, the expected reports
/// are exactly the group's still-unfixed members; `found`/`missed`
/// score those, and any reported site that is not an injected bug at
/// all counts as `spurious`. The trailing neutral-churn commit must
/// come back clean — everything it reports is spurious.
pub fn evaluate_fixcheck(root: &Path, config: &AuditConfig) -> Result<FixcheckEvalReport, String> {
    let text = std::fs::read_to_string(root.join("history.json"))
        .map_err(|e| format!("cannot read {}/history.json: {e}", root.display()))?;
    let v = Value::parse(&text).map_err(|e| format!("malformed history.json: {e:?}"))?;
    let revisions = v
        .get("revisions")
        .and_then(|r| r.as_array())
        .ok_or_else(|| "history.json has no `revisions` array".to_string())?;
    if revisions.len() < 2 {
        return Err(format!(
            "fix history under {} has {} revision(s); need a base plus at least one commit",
            root.display(),
            revisions.len()
        ));
    }
    let mut cache = AuditCache::new();
    let mut rows = Vec::new();
    let mut totals = crate::eval::SweepCounts::default();
    let mut prev: Option<Project> = None;
    for rev in revisions {
        let id = rev
            .get("id")
            .and_then(|x| x.as_str())
            .ok_or_else(|| "revision without `id` in history.json".to_string())?
            .to_string();
        let dir = rev
            .get("dir")
            .and_then(|x| x.as_str())
            .ok_or_else(|| "revision without `dir` in history.json".to_string())?;
        let post = Project::scan(&root.join(dir))
            .map_err(|e| format!("cannot scan revision {id}: {e}"))?;
        let Some(pre) = prev.take() else {
            prev = Some(post);
            continue; // the base import has no diff to check
        };
        let mut diff_text = String::new();
        for unit in post.units() {
            let old = pre
                .units()
                .iter()
                .find(|u| u.path == unit.path)
                .map(|u| u.text.as_str())
                .unwrap_or("");
            if let Some(d) = refminer_fixcheck::render_file_diff(&unit.path, old, &unit.text) {
                diff_text.push_str(&d);
            }
        }
        let r = fixcheck_project(&post, &diff_text, config, &mut cache)
            .map_err(|e| format!("fixcheck failed on {id}: {e}"))?;
        let manifest_text = std::fs::read_to_string(root.join(dir).join("manifest.json"))
            .map_err(|e| format!("cannot read manifest for {id}: {e}"))?;
        let manifest_json = Value::parse(&manifest_text)
            .map_err(|e| format!("malformed manifest for {id}: {e:?}"))?;
        let manifest = refminer_corpus::Manifest::from_json(&manifest_json)
            .ok_or_else(|| format!("manifest for {id} does not parse"))?;
        let group = rev
            .get("fixed")
            .and_then(|f| f.as_array())
            .and_then(|f| f.first())
            .and_then(|f| f.get("group"))
            .and_then(|g| g.as_str())
            .map(|g| g.to_string());
        let expected: Vec<(String, String)> = match &group {
            Some(g) => manifest
                .clone_groups
                .iter()
                .filter(|cg| cg.group == *g)
                .flat_map(|cg| &cg.members)
                .filter(|m| !m.fixed)
                .map(|m| (m.path.clone(), m.function.clone()))
                .collect(),
            None => Vec::new(),
        };
        let reported: Vec<(&str, &str)> = r
            .incomplete
            .iter()
            .flat_map(|i| &i.matches)
            .map(|m| (m.finding.file.as_str(), m.finding.function.as_str()))
            .collect();
        let mut counts = crate::eval::SweepCounts::default();
        for (path, function) in &expected {
            if reported
                .iter()
                .any(|(f, func)| f == path && func == function)
            {
                counts.found += 1;
            } else {
                counts.missed += 1;
            }
        }
        for (file, function) in &reported {
            let is_injected = manifest
                .bugs
                .iter()
                .any(|b| b.path == *file && b.function == *function);
            if !is_injected {
                counts.spurious += 1;
            }
        }
        totals.found += counts.found;
        totals.missed += counts.missed;
        totals.spurious += counts.spurious;
        rows.push(FixcheckEvalRow {
            revision: id,
            group,
            expected: expected.len(),
            counts,
        });
        prev = Some(post);
    }
    Ok(FixcheckEvalReport { rows, totals })
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_fixcheck::render_file_diff;

    // A P4 two-site shape: both functions forget `of_node_put` on the
    // error path; the "fix" patches only `alpha_probe`.
    fn buggy_unit() -> (String, String) {
        (
            "drivers/demo/pair.c".to_string(),
            "static int alpha_probe(void)\n{\n\
             \tstruct device_node *np;\n\
             \tnp = of_find_node_by_name(NULL, \"alpha\");\n\
             \tif (!np)\n\t\treturn -ENODEV;\n\
             \tif (alpha_setup(np))\n\t\treturn -EIO;\n\
             \tof_node_put(np);\n\treturn 0;\n}\n\
             \n\
             static int beta_probe(void)\n{\n\
             \tstruct device_node *np;\n\
             \tnp = of_find_node_by_name(NULL, \"beta\");\n\
             \tif (!np)\n\t\treturn -ENODEV;\n\
             \tif (beta_setup(np))\n\t\treturn -EIO;\n\
             \tof_node_put(np);\n\treturn 0;\n}\n"
                .to_string(),
        )
    }

    fn fixed_alpha(text: &str) -> String {
        text.replacen(
            "\tif (alpha_setup(np))\n\t\treturn -EIO;\n",
            "\tif (alpha_setup(np)) {\n\t\tof_node_put(np);\n\t\treturn -EIO;\n\t}\n",
            1,
        )
    }

    #[test]
    fn partial_fix_reports_the_sibling_left_behind() {
        let (path, pre_text) = buggy_unit();
        let post_text = fixed_alpha(&pre_text);
        let diff = render_file_diff(&path, &pre_text, &post_text).expect("texts differ");
        let post = Project::from_sources(vec![(path.clone(), post_text)]);
        let mut cache = AuditCache::new();
        let r = fixcheck_project(&post, &diff, &AuditConfig::default(), &mut cache)
            .expect("fixcheck runs");
        assert_eq!(r.files_changed, 1);
        assert!(
            r.fixed.iter().any(|f| f.function == "alpha_probe"),
            "the patched error path should count as fixed; fixed = {:?}",
            r.fixed
        );
        assert!(!r.is_clean());
        assert!(
            r.incomplete
                .iter()
                .flat_map(|i| &i.matches)
                .any(|m| m.finding.function == "beta_probe"),
            "beta_probe still leaks and must be reported as left behind"
        );
        let intent = r.intents.iter().find(|i| i.api == "of_node_put");
        assert!(intent.is_some(), "the added release names the intent");
        let lines = render_fixcheck_lines(&r);
        assert!(lines.iter().any(|l| l.contains("\"incomplete\"")));
        assert!(lines.last().unwrap().contains("\"clean\":false"));
    }

    #[test]
    fn neutral_diff_is_clean() {
        let (path, pre_text) = buggy_unit();
        // Rename-only churn: the tree still has both bugs, but the
        // diff fixes nothing, so fixcheck has nothing to hold against
        // it — pre and post findings are identical.
        let post_text = pre_text.replace("alpha_setup", "alpha_setup_hw");
        let diff = render_file_diff(&path, &pre_text, &post_text).expect("texts differ");
        let post = Project::from_sources(vec![(path, post_text)]);
        let mut cache = AuditCache::new();
        let r = fixcheck_project(&post, &diff, &AuditConfig::default(), &mut cache)
            .expect("fixcheck runs");
        assert!(r.fixed.is_empty());
        assert!(r.is_clean());
        let lines = render_fixcheck_lines(&r);
        assert!(lines.last().unwrap().contains("\"clean\":true"));
    }

    #[test]
    fn errors_are_diagnostic_not_panics() {
        let post = Project::from_sources(vec![("a.c".to_string(), "int x;\n".to_string())]);
        let mut cache = AuditCache::new();
        let cfg = AuditConfig::default();
        assert!(fixcheck_project(&post, "not a diff", &cfg, &mut cache).is_err());
        let wrong_file = "--- a/missing.c\n+++ b/missing.c\n@@ -1,1 +1,1 @@\n-old\n+new\n";
        let err = fixcheck_project(&post, wrong_file, &cfg, &mut cache).unwrap_err();
        assert!(err.contains("missing.c"), "got: {err}");
        let stale = "--- a/a.c\n+++ b/a.c\n@@ -1,1 +1,1 @@\n-int y;\n+int z;\n";
        let err = fixcheck_project(&post, stale, &cfg, &mut cache).unwrap_err();
        assert!(err.contains("does not apply"), "got: {err}");
    }
}

//! `refminer history`: the longitudinal fault-density study.
//!
//! Replays the audit across a multi-revision corpus (a directory of
//! release trees) through one shared [`AuditCache`], so each release
//! after the first re-parses only its delta, and reports findings per
//! KLoC per subsystem per release — the Faults-in-Linux Figure-1
//! methodology the paper's longitudinal claims build on.
//!
//! Revision discovery, most specific first:
//!
//! 1. `releases.json` in the root (`histgen --releases` output):
//!    explicit `version` labels per directory;
//! 2. `history.json` (`histgen` fix-history output): revision ids as
//!    labels;
//! 3. otherwise every subdirectory of the root, sorted by name.
//!
//! Output is byte-identical at any `--jobs` setting and any cache
//! temperature: findings are canonical, line counts are facts of the
//! tree, and densities are rendered with fixed precision.

use std::path::{Path, PathBuf};

use refminer_json::{obj, ToJson, Value};

use crate::audit::{audit_with_cache, AuditConfig};
use crate::cache::AuditCache;
use crate::project::Project;

/// Findings density for one subsystem in one release.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryRow {
    /// Subsystem label: `drivers/<sub>` for driver paths, otherwise
    /// the first path component.
    pub subsystem: String,
    /// Findings whose file falls in the subsystem.
    pub findings: usize,
    /// Source lines in the subsystem.
    pub lines: usize,
}

impl HistoryRow {
    /// Findings per thousand lines; 0 for an empty subsystem.
    pub fn per_kloc(&self) -> f64 {
        if self.lines == 0 {
            0.0
        } else {
            self.findings as f64 * 1000.0 / self.lines as f64
        }
    }
}

/// One audited release.
#[derive(Debug)]
pub struct HistoryRelease {
    /// Version label (`v2.6.12`, …) or directory name.
    pub version: String,
    /// Directory under the history root.
    pub dir: String,
    /// Files audited.
    pub files: usize,
    /// Total source lines.
    pub lines: usize,
    /// Total findings.
    pub findings: usize,
    /// Units this release re-parsed (cache misses): the whole tree
    /// for the first release, only the delta afterwards.
    pub parse_misses: usize,
    /// Per-subsystem densities, sorted by subsystem name.
    pub rows: Vec<HistoryRow>,
}

/// The whole study.
#[derive(Debug)]
pub struct HistoryReport {
    /// Releases in history order.
    pub releases: Vec<HistoryRelease>,
}

/// The subsystem a path belongs to, Faults-in-Linux style: drivers
/// split one level deeper than everything else.
pub fn subsystem_of(path: &str) -> String {
    let mut parts = path.split('/');
    let first = parts.next().unwrap_or("");
    if first == "drivers" {
        if let Some(second) = parts.next() {
            if parts.next().is_some() {
                return format!("drivers/{second}");
            }
        }
        return "drivers".to_string();
    }
    if path.contains('/') {
        first.to_string()
    } else {
        ".".to_string()
    }
}

/// One labeled revision directory.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RevisionRef {
    version: String,
    dir: String,
}

fn labeled_revisions(
    root: &Path,
    file: &str,
    list_key: &str,
    label_key: &str,
) -> Option<Vec<RevisionRef>> {
    let text = std::fs::read_to_string(root.join(file)).ok()?;
    let v = Value::parse(&text).ok()?;
    let entries = v.get(list_key)?.as_array()?;
    let mut out = Vec::new();
    for e in entries {
        let dir = e.get("dir")?.as_str()?.to_string();
        let version = e.get(label_key)?.as_str()?.to_string();
        out.push(RevisionRef { version, dir });
    }
    Some(out)
}

fn discover_revisions(root: &Path) -> Result<Vec<RevisionRef>, String> {
    if let Some(revs) = labeled_revisions(root, "releases.json", "releases", "version") {
        return Ok(revs);
    }
    if let Some(revs) = labeled_revisions(root, "history.json", "revisions", "id") {
        return Ok(revs);
    }
    let entries = std::fs::read_dir(root)
        .map_err(|e| format!("cannot read history root {}: {e}", root.display()))?;
    let mut dirs: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .filter_map(|e| e.file_name().into_string().ok())
        .collect();
    dirs.sort();
    Ok(dirs
        .into_iter()
        .map(|d| RevisionRef {
            version: d.clone(),
            dir: d,
        })
        .collect())
}

/// Audits every release under `root` through one shared cache and
/// computes the per-subsystem density table.
pub fn history_audit(
    root: &Path,
    config: &AuditConfig,
    cache: &mut AuditCache,
) -> Result<HistoryReport, String> {
    let revisions = discover_revisions(root)?;
    if revisions.is_empty() {
        return Err(format!(
            "no revisions found under {}: expected releases.json, history.json, or revision subdirectories",
            root.display()
        ));
    }
    let mut releases = Vec::new();
    for rev in revisions {
        let dir: PathBuf = root.join(&rev.dir);
        let project = Project::scan(&dir).map_err(|e| {
            format!(
                "cannot scan revision {} ({}): {e}",
                rev.version,
                dir.display()
            )
        })?;
        let report = audit_with_cache(&project, config, cache);
        let mut rows: Vec<HistoryRow> = Vec::new();
        fn row_index(rows: &mut Vec<HistoryRow>, subsystem: String) -> usize {
            if let Some(i) = rows.iter().position(|r| r.subsystem == subsystem) {
                i
            } else {
                rows.push(HistoryRow {
                    subsystem,
                    findings: 0,
                    lines: 0,
                });
                rows.len() - 1
            }
        }
        for unit in project.units() {
            let i = row_index(&mut rows, subsystem_of(&unit.path));
            rows[i].lines += unit.text.lines().count();
        }
        for finding in &report.findings {
            let i = row_index(&mut rows, subsystem_of(&finding.file));
            rows[i].findings += 1;
        }
        rows.sort_by(|a, b| a.subsystem.cmp(&b.subsystem));
        releases.push(HistoryRelease {
            version: rev.version,
            dir: rev.dir,
            files: report.files,
            lines: project.total_lines(),
            findings: report.findings.len(),
            parse_misses: report.cache.parse_misses,
            rows,
        });
    }
    Ok(HistoryReport { releases })
}

/// Renders the study as JSONL: one line per release with its density
/// rows (densities as fixed-precision strings for byte stability),
/// then a summary line.
pub fn render_history_lines(report: &HistoryReport) -> Vec<String> {
    let mut lines = Vec::new();
    for rel in &report.releases {
        lines.push(
            obj([
                ("history", Value::Str("release".to_string())),
                ("version", rel.version.to_json()),
                ("dir", rel.dir.to_json()),
                ("files", rel.files.to_json()),
                ("lines", rel.lines.to_json()),
                ("findings", rel.findings.to_json()),
                // Deliberately no cache stats here: `parse_misses` is a
                // fact of the cache's temperature, not of the release,
                // and these lines are byte-stable across temperatures.
                // The text mode reports it on stderr instead.
                (
                    "rows",
                    Value::Arr(
                        rel.rows
                            .iter()
                            .map(|r| {
                                obj([
                                    ("subsystem", r.subsystem.to_json()),
                                    ("findings", r.findings.to_json()),
                                    (
                                        "kloc",
                                        Value::Str(format!("{:.3}", r.lines as f64 / 1000.0)),
                                    ),
                                    ("per_kloc", Value::Str(format!("{:.3}", r.per_kloc()))),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
            .to_string(),
        );
    }
    lines.push(
        obj([
            ("history", Value::Str("summary".to_string())),
            ("releases", report.releases.len().to_json()),
        ])
        .to_string(),
    );
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsystem_labels_follow_faults_in_linux() {
        assert_eq!(subsystem_of("drivers/net/eth.c"), "drivers/net");
        assert_eq!(subsystem_of("drivers/core.c"), "drivers");
        assert_eq!(subsystem_of("fs/ext4/inode.c"), "fs");
        assert_eq!(subsystem_of("kernel/sched.c"), "kernel");
        assert_eq!(subsystem_of("main.c"), ".");
    }

    #[test]
    fn per_kloc_handles_empty_subsystem() {
        let row = HistoryRow {
            subsystem: "fs".to_string(),
            findings: 3,
            lines: 0,
        };
        assert_eq!(row.per_kloc(), 0.0);
        let row = HistoryRow {
            subsystem: "fs".to_string(),
            findings: 2,
            lines: 4000,
        };
        assert!((row.per_kloc() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn missing_root_is_a_diagnostic_error() {
        let err = history_audit(
            Path::new("/nonexistent/refminer/history"),
            &AuditConfig::default(),
            &mut AuditCache::new(),
        )
        .unwrap_err();
        assert!(err.contains("cannot read history root"), "got: {err}");
    }
}

//! The end-to-end audit pipeline: parse → discover → graph → check.

use std::collections::BTreeMap;

use refminer_checkers::{check_unit_with_graphs, AntiPattern, Finding, Impact};
use refminer_clex::{scan_defines, MacroDef};
use refminer_cparse::{parse_str, TranslationUnit};
use refminer_cpg::FunctionGraph;
use refminer_rcapi::{discover, ApiKb, DiscoverConfig};

use crate::project::Project;

/// Audit configuration.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Run API/smartloop discovery over the project and merge the
    /// results into the knowledge base (§6.1's lexer-parsing stage).
    pub discover_apis: bool,
    /// Struct-nesting threshold for discovery.
    pub nesting_threshold: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            discover_apis: true,
            nesting_threshold: 3,
        }
    }
}

/// The result of auditing a project.
#[derive(Debug)]
pub struct AuditReport {
    /// All findings, in path/line order.
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files: usize,
    /// Functions analyzed.
    pub functions: usize,
    /// Source lines scanned.
    pub lines: usize,
    /// The knowledge base the checkers ran with (after discovery).
    pub kb: ApiKb,
}

impl AuditReport {
    /// Findings per anti-pattern.
    pub fn by_pattern(&self) -> BTreeMap<AntiPattern, usize> {
        let mut map = BTreeMap::new();
        for f in &self.findings {
            *map.entry(f.pattern).or_insert(0) += 1;
        }
        map
    }

    /// Findings per impact.
    pub fn by_impact(&self) -> BTreeMap<Impact, usize> {
        let mut map = BTreeMap::new();
        for f in &self.findings {
            *map.entry(f.impact).or_insert(0) += 1;
        }
        map
    }

    /// Findings per (subsystem, module), derived from paths.
    pub fn by_module(&self) -> BTreeMap<(String, String), Vec<&Finding>> {
        let mut map: BTreeMap<(String, String), Vec<&Finding>> = BTreeMap::new();
        for f in &self.findings {
            let mut parts = f.file.split('/');
            let subsystem = parts.next().unwrap_or("").to_string();
            let module = parts.next().unwrap_or("").to_string();
            map.entry((subsystem, module)).or_default().push(f);
        }
        map
    }
}

/// Runs the full audit over a project.
///
/// # Examples
///
/// ```
/// use refminer::{audit, AuditConfig, Project};
///
/// let p = Project::from_sources(vec![(
///     "drivers/x/x.c".to_string(),
///     r#"
///     int probe(void)
///     {
///             struct device_node *np = of_find_node_by_name(NULL, "x");
///             if (!np)
///                     return -ENODEV;
///             return 0;
///     }
///     "#
///     .to_string(),
/// )]);
/// let report = audit(&p, &AuditConfig::default());
/// assert_eq!(report.findings.len(), 1);
/// ```
pub fn audit(project: &Project, config: &AuditConfig) -> AuditReport {
    // Parse every unit and gather macro definitions.
    let mut tus: Vec<TranslationUnit> = Vec::new();
    let mut defines: Vec<MacroDef> = Vec::new();
    let mut lines = 0usize;
    for unit in project.units() {
        lines += unit.text.lines().count();
        defines.extend(scan_defines(&unit.text));
        tus.push(parse_str(&unit.path, &unit.text));
    }

    // Knowledge base: builtin, optionally extended by discovery.
    let kb = if config.discover_apis {
        let d = discover(
            &tus,
            &defines,
            &ApiKb::builtin(),
            &DiscoverConfig {
                nesting_threshold: config.nesting_threshold,
            },
        );
        d.into_kb(ApiKb::builtin())
    } else {
        ApiKb::builtin()
    };

    // Check each unit.
    let mut findings = Vec::new();
    let mut functions = 0usize;
    for tu in &tus {
        let graphs = FunctionGraph::build_all(tu);
        functions += graphs.len();
        findings.extend(check_unit_with_graphs(tu, &kb, &graphs));
    }
    findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));

    AuditReport {
        findings,
        files: project.units().len(),
        functions,
        lines,
        kb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_corpus::{generate_tree, TreeConfig};

    #[test]
    fn audits_synthetic_tree_slice() {
        let tree = generate_tree(&TreeConfig {
            scale: 0.05,
            include_tricky: false,
            ..Default::default()
        });
        let project = Project::from_tree(&tree);
        let report = audit(&project, &AuditConfig::default());
        assert!(report.functions > 50);
        // Every injected bug should be found (recall ≈ 1 on the
        // generated shapes).
        let found = tree
            .manifest
            .bugs
            .iter()
            .filter(|b| {
                report
                    .findings
                    .iter()
                    .any(|f| f.file == b.path && f.function == b.function)
            })
            .count();
        assert_eq!(found, tree.manifest.bugs.len(), "missed bugs");
    }

    #[test]
    fn discovery_adds_apis() {
        let p = Project::from_sources(vec![(
            "drivers/w/w.c".to_string(),
            r#"
struct widget { struct kref refs; };
void widget_put(struct widget *w) { kref_put(&w->refs, widget_free); }
"#
            .to_string(),
        )]);
        let report = audit(&p, &AuditConfig::default());
        assert!(report.kb.is_dec("widget_put"));
    }

    #[test]
    fn groupings_consistent() {
        let tree = generate_tree(&TreeConfig {
            scale: 0.03,
            ..Default::default()
        });
        let project = Project::from_tree(&tree);
        let report = audit(&project, &AuditConfig::default());
        let per_pattern: usize = report.by_pattern().values().sum();
        let per_impact: usize = report.by_impact().values().sum();
        assert_eq!(per_pattern, report.findings.len());
        assert_eq!(per_impact, report.findings.len());
    }
}

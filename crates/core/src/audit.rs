//! The end-to-end two-phase whole-program audit.
//!
//! **Phase 1** fans out the parse per unit. Parsing also captures each
//! unit's discovery facts and its symbol digest (functions defined,
//! names called), so the knowledge-base merge happens right at the
//! parse barrier — before any export exists.
//!
//! **Phase 2** exports each unit's function-effect digest
//! ([`refminer_checkers::UnitExports`]) and checks each unit against
//! the [`ProgramDb`] — the function-summary database every checker
//! resolves helper calls through, under linkage rules (`static`
//! helpers stay unit-local; external definitions resolve tree-wide) —
//! so an `of_node_put` wrapper defined in `a.c` pairs an acquisition
//! in `b.c`. With multiple workers the two stages *overlap*: the
//! streaming scheduler (see [`crate::stream`]) starts checking a unit
//! as soon as the exports of its resolution closure are in, instead of
//! holding every check behind the last export. With one worker — or
//! when [`AuditConfig::streaming`] is off — the stages run as a
//! classic barrier pipeline. Either way the report is byte-identical.
//!
//! Every translation unit runs inside a *fault boundary*: resource caps
//! (file bytes, token count, recursion depth, graph nodes) bound what a
//! hostile or corrupted file can consume, and `catch_unwind` converts
//! any panic that still escapes a stage into a structured
//! [`UnitDiagnostic`] instead of aborting the audit. One bad file can
//! degrade its own results; it cannot take down the run or perturb the
//! findings of its healthy siblings.
//!
//! Both phases memoize through the four-layer content-hash cache (see
//! [`crate::cache`]) and fan out across worker threads (see
//! [`crate::parallel`]). Both are exact optimizations: the report —
//! findings, counters, diagnostics — is byte-identical at any `jobs`
//! count and any cache temperature, because per-unit results are merged
//! in unit index order and findings get one canonical stable sort at
//! the end. Phase wall times are reported out of band and never enter
//! any cached or serialized result.

use std::collections::{BTreeMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use refminer_checkers::{
    checkers_for_patterns, default_checkers, merge_duplicate_findings, run_engines_traced,
    sort_findings_canonical, AnalysisEngine, AntiPattern, EngineSet, Feasibility, Finding, Impact,
    ProgramDb, TemplateEngine, UnitExports,
};
use refminer_clex::{scan_defines, MacroDef};
use refminer_cparse::{parse_str_limited, Block, ExprKind, ParseLimits, TranslationUnit};
use refminer_cpg::FunctionGraph;
use refminer_delta::DeltaEngine;
use refminer_rcapi::{discover_unit, merge_discoveries, ApiKb, DiscoverConfig, UnitDiscovery};
use refminer_trace::TraceHandle;

use crate::cache::{
    check_config_fingerprint, content_hash, discovery_config_fingerprint,
    export_config_fingerprint, fnv1a, kb_fingerprint, mix, parse_config_fingerprint, AuditCache,
    CacheStats, CachedError, CheckedUnit, ParsedUnit,
};
use crate::cancel::{CancelToken, Cancelled};
use crate::parallel::{effective_jobs, run_indexed_traced};
use crate::project::{Project, ScanErrorKind, SourceUnit};
use crate::stream;

/// Resource caps applied to each translation unit.
#[derive(Debug, Clone, Copy)]
pub struct AuditLimits {
    /// Units larger than this many bytes are skipped outright.
    pub max_file_bytes: usize,
    /// Token cap per unit; the stream is truncated past it.
    pub max_tokens: usize,
    /// Recursion-depth cap for the parser.
    pub max_parse_depth: u32,
    /// CFG node cap per function; bigger functions are not analyzed.
    pub max_graph_nodes: usize,
}

impl Default for AuditLimits {
    fn default() -> Self {
        AuditLimits {
            max_file_bytes: 8 * 1024 * 1024,
            max_tokens: 2_000_000,
            max_parse_depth: 128,
            max_graph_nodes: 50_000,
        }
    }
}

/// Audit configuration.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Run API/smartloop discovery over the project and merge the
    /// results into the knowledge base (§6.1's lexer-parsing stage).
    pub discover_apis: bool,
    /// Struct-nesting threshold for discovery.
    pub nesting_threshold: usize,
    /// Per-unit resource caps.
    pub limits: AuditLimits,
    /// Worker threads for the per-unit stages. `0` (the default) means
    /// one per available hardware thread; `1` runs everything inline on
    /// the calling thread. The report is identical either way.
    pub jobs: usize,
    /// Whether helper-effect summaries resolve across translation
    /// units (external linkage tree-wide). `false` restricts every
    /// lookup to the unit's own definitions, reproducing the
    /// pre-whole-program pipeline.
    pub whole_program: bool,
    /// Whether the path-feasibility engine's `Infeasible` verdicts
    /// suppress findings in the report (the default). `false` keeps
    /// every finding, tagged — the pre-feasibility behavior.
    ///
    /// Deliberately *not* part of the check-stage cache key: verdicts
    /// are always computed and cached with the findings; suppression is
    /// a post-cache report-layer filter, so both modes share entries.
    pub feasibility: bool,
    /// Restrict the run to a subset of anti-patterns (`--only-pattern`).
    /// `None` runs all nine.
    pub only_patterns: Option<Vec<AntiPattern>>,
    /// Which analysis engines phase 2 runs (`--engines`). The default
    /// is both: the template checkers and the ownership-delta dataflow
    /// engine cross-validate each other, and findings carry per-engine
    /// attribution plus a derived confidence. The engine set keys the
    /// check-stage cache — template-only entries never serve a
    /// two-engine run.
    pub engines: EngineSet,
    /// Restrict checking to units under this path prefix
    /// (`--subsystem drivers/net`). `None` checks everything. Filtered
    /// units still parse and export — exports are whole-tree — but skip
    /// the check stage.
    pub subsystem: Option<String>,
    /// Overlap the export and check stages through the dependency-aware
    /// streaming scheduler when more than one worker is available (the
    /// default). `false` forces the classic barrier pipeline. Purely a
    /// scheduling choice: the report is byte-identical either way, and
    /// the flag is deliberately part of no cache fingerprint.
    pub streaming: bool,
    /// Keep each unit's AST in the in-memory parse cache (the default),
    /// letting later stages skip re-parsing. `false` drops ASTs right
    /// after the parse stage — kernel-scale trees trade re-parse time
    /// for bounded memory, exactly like a disk-warm run (re-parsing is
    /// deterministic, so results are byte-identical). Part of no cache
    /// fingerprint.
    pub retain_asts: bool,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            discover_apis: true,
            nesting_threshold: 3,
            limits: AuditLimits::default(),
            jobs: 0,
            whole_program: true,
            feasibility: true,
            only_patterns: None,
            engines: EngineSet::default(),
            subsystem: None,
            streaming: true,
            retain_asts: true,
        }
    }
}

/// What a single unit's trip through the pipeline looked like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitOutcome {
    /// Fully analyzed, nothing lost.
    Ok,
    /// Analyzed, but part of the input was degraded or dropped.
    Degraded,
    /// Not analyzed at all.
    Skipped,
}

impl UnitOutcome {
    /// Stable lower-snake name, used in reports and JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            UnitOutcome::Ok => "ok",
            UnitOutcome::Degraded => "degraded",
            UnitOutcome::Skipped => "skipped",
        }
    }
}

/// The failure taxonomy for per-unit diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum UnitErrorKind {
    /// The file could not be read from disk (scan-time).
    Io,
    /// Content was not valid UTF-8 and was decoded lossily (scan-time).
    NonUtf8,
    /// The unit exceeded the byte cap and was skipped.
    Oversize,
    /// Lexing/parsing panicked; the unit was skipped.
    LexPanic,
    /// The lexer recovered from byte-level garbage (stray bytes,
    /// unterminated comments/strings); some input was dropped.
    LexNoise,
    /// The token stream was truncated at the token cap.
    TokenCap,
    /// The recursion-depth cap degraded part of the parse.
    ParseDepth,
    /// One or more functions exceeded the graph node cap.
    GraphBlowup,
    /// Graph construction or checking panicked; the unit's findings
    /// were dropped.
    CheckPanic,
}

impl UnitErrorKind {
    /// Every kind, in taxonomy order.
    pub fn all() -> [UnitErrorKind; 9] {
        use UnitErrorKind::*;
        [
            Io,
            NonUtf8,
            Oversize,
            LexPanic,
            LexNoise,
            TokenCap,
            ParseDepth,
            GraphBlowup,
            CheckPanic,
        ]
    }

    /// Parses the stable name back into the kind (inverse of
    /// [`UnitErrorKind::name`]); used when loading a persisted cache.
    pub fn from_name(name: &str) -> Option<UnitErrorKind> {
        UnitErrorKind::all().into_iter().find(|k| k.name() == name)
    }

    /// Stable lower-snake name, used in reports and JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            UnitErrorKind::Io => "io",
            UnitErrorKind::NonUtf8 => "non_utf8",
            UnitErrorKind::Oversize => "oversize",
            UnitErrorKind::LexPanic => "lex_panic",
            UnitErrorKind::LexNoise => "lex_noise",
            UnitErrorKind::TokenCap => "token_cap",
            UnitErrorKind::ParseDepth => "parse_depth",
            UnitErrorKind::GraphBlowup => "graph_blowup",
            UnitErrorKind::CheckPanic => "check_panic",
        }
    }
}

/// The per-file record of a non-clean trip through the pipeline.
#[derive(Debug, Clone)]
pub struct UnitDiagnostic {
    /// Project-relative path of the unit.
    pub path: String,
    /// Overall outcome for the unit.
    pub outcome: UnitOutcome,
    /// Everything that went wrong, deduplicated, in taxonomy order.
    pub errors: Vec<UnitErrorKind>,
    /// Human-readable detail for the most severe problem.
    pub detail: String,
}

/// Aggregated fault-isolation diagnostics for a whole audit.
#[derive(Debug, Clone, Default)]
pub struct AuditDiagnostics {
    /// Per-file records for every unit that was *not* clean. Clean
    /// units are counted in [`AuditDiagnostics::ok`] but get no record.
    pub units: Vec<UnitDiagnostic>,
    /// Units that were fully analyzed.
    pub ok: usize,
    /// Units analyzed with some loss.
    pub degraded: usize,
    /// Units not analyzed at all.
    pub skipped: usize,
}

impl AuditDiagnostics {
    /// `true` when every unit was fully analyzed with nothing lost.
    pub fn is_clean(&self) -> bool {
        self.degraded == 0 && self.skipped == 0
    }

    /// Occurrences of each error kind across all units.
    pub fn by_kind(&self) -> BTreeMap<UnitErrorKind, usize> {
        let mut map = BTreeMap::new();
        for u in &self.units {
            for k in &u.errors {
                *map.entry(*k).or_insert(0) += 1;
            }
        }
        map
    }
}

/// The result of auditing a project.
#[derive(Debug)]
pub struct AuditReport {
    /// All findings, in path/line order.
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files: usize,
    /// Functions analyzed.
    pub functions: usize,
    /// Source lines scanned.
    pub lines: usize,
    /// The knowledge base the checkers ran with (after discovery).
    pub kb: ApiKb,
    /// Per-file fault-isolation diagnostics.
    pub diagnostics: AuditDiagnostics,
    /// Cache hit/miss counters for this run (all zeros for the plain
    /// [`audit`] entry point, which starts from an empty cache).
    pub cache: CacheStats,
    /// Wall-clock seconds of phase 1 (parse + export fan-out, plus the
    /// barrier merge into KB and program database). Timing only — it
    /// never influences findings, keys or any serialized result.
    pub phase1_secs: f64,
    /// Wall-clock seconds of phase 2 (the graph + check fan-out).
    pub phase2_secs: f64,
}

impl AuditReport {
    /// Findings per anti-pattern.
    pub fn by_pattern(&self) -> BTreeMap<AntiPattern, usize> {
        let mut map = BTreeMap::new();
        for f in &self.findings {
            *map.entry(f.pattern).or_insert(0) += 1;
        }
        map
    }

    /// Findings per impact.
    pub fn by_impact(&self) -> BTreeMap<Impact, usize> {
        let mut map = BTreeMap::new();
        for f in &self.findings {
            *map.entry(f.impact).or_insert(0) += 1;
        }
        map
    }

    /// Findings per (subsystem, module), derived from paths.
    pub fn by_module(&self) -> BTreeMap<(String, String), Vec<&Finding>> {
        let mut map: BTreeMap<(String, String), Vec<&Finding>> = BTreeMap::new();
        for f in &self.findings {
            let mut parts = f.file.split('/');
            let subsystem = parts.next().unwrap_or("").to_string();
            let module = parts.next().unwrap_or("").to_string();
            map.entry((subsystem, module)).or_default().push(f);
        }
        map
    }
}

// ----------------------------------------------------------------------
// The fault boundary.
// ----------------------------------------------------------------------

thread_local! {
    static IN_BOUNDARY: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs (once) a panic hook that stays quiet for panics caught by a
/// fault boundary, so a corrupt file does not spray backtraces over the
/// audit output; panics outside a boundary keep the previous behavior.
fn install_quiet_panic_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if IN_BOUNDARY.with(|b| b.get()) {
                return;
            }
            prev(info);
        }));
    });
}

/// Runs `f` inside the per-unit fault boundary, converting a panic into
/// `Err(message)`.
fn fault_boundary<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_quiet_panic_hook();
    IN_BOUNDARY.with(|b| b.set(true));
    let result = catch_unwind(AssertUnwindSafe(f));
    IN_BOUNDARY.with(|b| b.set(false));
    result.map_err(|e| {
        if let Some(s) = e.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = e.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic with non-string payload".to_string()
        }
    })
}

/// Per-unit bookkeeping folded together when the report is assembled.
struct UnitState {
    path: String,
    /// Whether the unit produced an analyzable AST.
    analyzed: bool,
    errors: Vec<UnitErrorKind>,
    detail: String,
}

impl UnitState {
    fn push(&mut self, kind: UnitErrorKind, detail: impl Into<String>) {
        if !self.errors.contains(&kind) {
            self.errors.push(kind);
        }
        if self.detail.is_empty() {
            self.detail = detail.into();
        }
    }

    fn outcome(&self) -> UnitOutcome {
        if !self.analyzed {
            UnitOutcome::Skipped
        } else if self.errors.is_empty() {
            UnitOutcome::Ok
        } else {
            UnitOutcome::Degraded
        }
    }
}

/// A unit's symbol digest: `(name, is_static)` per function defined,
/// plus every name called — both sides interned so the streaming
/// closure map and the program database share the allocations.
type SymbolDigest = (Vec<(Arc<str>, bool)>, Vec<Arc<str>>);

/// Reads a unit's symbol digest off its AST: the `(name, is_static)`
/// of every defined function, and the sorted, deduplicated set of
/// names called anywhere in the unit. The digest is the raw material
/// for the streaming scheduler's dependency closures, so the call scan
/// must cover at least every call the program database can resolve:
/// [`Expr::walk`](refminer_cparse::Expr::walk) deliberately does not
/// descend into GNU statement-expressions, so those blocks are
/// recursed into explicitly here.
fn unit_symbols(tu: &TranslationUnit) -> SymbolDigest {
    let mut syms: Vec<(Arc<str>, bool)> = Vec::new();
    let mut called: std::collections::BTreeSet<Arc<str>> = std::collections::BTreeSet::new();
    for f in tu.functions() {
        syms.push((Arc::from(f.name.as_str()), f.is_static));
        let mut blocks: Vec<&Block> = vec![&f.body];
        while let Some(block) = blocks.pop() {
            let mut nested: Vec<&Block> = Vec::new();
            for s in &block.stmts {
                s.walk_exprs(&mut |e| {
                    if let Some((name, _)) = e.as_direct_call() {
                        if !called.contains(name) {
                            called.insert(Arc::from(name));
                        }
                    }
                    if let ExprKind::StmtExpr(b) = &e.kind {
                        nested.push(b);
                    }
                });
            }
            blocks.append(&mut nested);
        }
    }
    (syms, called.into_iter().collect())
}

/// The parse stage for one unit: byte-cap check, `#define` scan, the
/// limited parse, then the unit's discovery facts and symbol digest —
/// all inside the unit's fault boundary. Discovery and symbols ride
/// the parse layer so the knowledge base and the streaming scheduler's
/// dependency graph are both ready before any export runs.
fn parse_unit(
    unit: &SourceUnit,
    limits: &AuditLimits,
    parse_limits: &ParseLimits,
    retain_ast: bool,
) -> ParsedUnit {
    if unit.text.len() > limits.max_file_bytes {
        return ParsedUnit {
            tu: None,
            parsed_ok: false,
            defines: Vec::new(),
            errors: vec![CachedError {
                kind: UnitErrorKind::Oversize,
                detail: format!(
                    "{} bytes exceeds the {}-byte cap",
                    unit.text.len(),
                    limits.max_file_bytes
                ),
            }],
            // Skipped outright: contributes no lines to the totals.
            lines: 0,
            discovery: UnitDiscovery::default(),
            syms: Vec::new(),
            called: Vec::new(),
        };
    }
    let lines = unit.text.lines().count();
    let parsed = fault_boundary(|| {
        let defs = scan_defines(&unit.text);
        let out = parse_str_limited(&unit.path, &unit.text, parse_limits);
        let discovery = discover_unit(&out.unit, &ApiKb::builtin());
        let (syms, called) = unit_symbols(&out.unit);
        (defs, out, discovery, syms, called)
    });
    match parsed {
        Ok((defines, out, discovery, syms, called)) => {
            let mut errors = Vec::new();
            if let Some(first) = out.lex_errors.first() {
                errors.push(CachedError {
                    kind: UnitErrorKind::LexNoise,
                    detail: format!("{} lex error(s), first: {first}", out.lex_errors.len()),
                });
            }
            if out.truncated {
                errors.push(CachedError {
                    kind: UnitErrorKind::TokenCap,
                    detail: format!("token stream truncated at {}", parse_limits.max_tokens),
                });
            }
            if out.depth_capped {
                errors.push(CachedError {
                    kind: UnitErrorKind::ParseDepth,
                    detail: format!("nesting exceeded depth {}", parse_limits.max_depth),
                });
            }
            ParsedUnit {
                tu: if retain_ast { Some(out.unit) } else { None },
                parsed_ok: true,
                defines,
                errors,
                lines,
                discovery,
                syms,
                called,
            }
        }
        Err(msg) => ParsedUnit {
            tu: None,
            parsed_ok: false,
            defines: Vec::new(),
            errors: vec![CachedError {
                kind: UnitErrorKind::LexPanic,
                detail: format!("parse panicked: {msg}"),
            }],
            lines,
            discovery: UnitDiscovery::default(),
            syms: Vec::new(),
            called: Vec::new(),
        },
    }
}

/// The export stage for one unit: build graphs and read off the
/// function-effect digest, all inside the unit's fault boundary. Units
/// that did not parse — and units whose extraction faults — contribute
/// an empty digest under their own path, so unit indexing in the
/// merged database never shifts.
pub(crate) fn export_one(
    unit: &SourceUnit,
    parsed: &ParsedUnit,
    limits: &AuditLimits,
    parse_limits: &ParseLimits,
    trace: &TraceHandle,
) -> UnitExports {
    let empty = || UnitExports {
        path: unit.path.clone(),
        fns: Vec::new(),
    };
    if !parsed.parsed_ok {
        return empty();
    }
    let rehydrated;
    let tu: &TranslationUnit = match parsed.tu.as_ref() {
        Some(tu) => tu,
        None => {
            match fault_boundary(|| parse_str_limited(&unit.path, &unit.text, parse_limits).unit) {
                Ok(tu) => {
                    rehydrated = tu;
                    &rehydrated
                }
                Err(_) => return empty(),
            }
        }
    };
    let start = Instant::now();
    let exported = fault_boundary(|| {
        let (graphs, _capped, feas) =
            FunctionGraph::build_all_limited_timed(tu, limits.max_graph_nodes);
        let globals: Vec<String> = tu.globals().map(|g| g.name.clone()).collect();
        (UnitExports::extract(&unit.path, &graphs, &globals), feas)
    });
    match exported {
        Ok((out, feas)) => {
            trace.record_span("feasibility", Some(&unit.path), start, feas);
            out
        }
        Err(_) => empty(),
    }
}

/// The phase-2 check stage for one unit: graphs + the nine checkers
/// against the merged program database, inside the unit's fault
/// boundary. When the parse-layer entry came from disk (no retained
/// AST), the unit is re-parsed here first — parsing is deterministic,
/// so the rehydrated AST is the one the entry describes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn check_one(
    unit: &SourceUnit,
    parsed: &ParsedUnit,
    kb: &ApiKb,
    program: &ProgramDb,
    limits: &AuditLimits,
    parse_limits: &ParseLimits,
    only_patterns: Option<&[AntiPattern]>,
    engine_set: EngineSet,
    trace: &TraceHandle,
) -> CheckedUnit {
    let rehydrated;
    let tu: &TranslationUnit = match parsed.tu.as_ref() {
        Some(tu) => tu,
        None => {
            match fault_boundary(|| parse_str_limited(&unit.path, &unit.text, parse_limits).unit) {
                Ok(tu) => {
                    rehydrated = tu;
                    &rehydrated
                }
                Err(msg) => {
                    return CheckedUnit {
                        findings: Vec::new(),
                        functions: 0,
                        errors: vec![CachedError {
                            kind: UnitErrorKind::CheckPanic,
                            detail: format!("check panicked: {msg}"),
                        }],
                    }
                }
            }
        }
    };
    let start = Instant::now();
    let checked = fault_boundary(|| {
        let (graphs, capped, feas) =
            FunctionGraph::build_all_limited_timed(tu, limits.max_graph_nodes);
        let mut engines: Vec<Box<dyn AnalysisEngine>> = Vec::new();
        if engine_set.template {
            let checkers = match only_patterns {
                Some(ps) => checkers_for_patterns(ps),
                None => default_checkers(),
            };
            engines.push(Box::new(TemplateEngine::new(checkers)));
        }
        if engine_set.delta {
            engines.push(Box::new(match only_patterns {
                Some(ps) => DeltaEngine::for_patterns(ps),
                None => DeltaEngine::new(),
            }));
        }
        let fs = run_engines_traced(tu, kb, &graphs, &engines, program, trace);
        (graphs.len(), capped, fs, feas)
    });
    match checked {
        Ok((functions, capped, findings, feas)) => {
            trace.record_span("feasibility", Some(&unit.path), start, feas);
            let mut errors = Vec::new();
            if let Some(first) = capped.first() {
                errors.push(CachedError {
                    kind: UnitErrorKind::GraphBlowup,
                    detail: first.to_string(),
                });
            }
            CheckedUnit {
                findings,
                functions,
                errors,
            }
        }
        Err(msg) => CheckedUnit {
            findings: Vec::new(),
            functions: 0,
            errors: vec![CachedError {
                kind: UnitErrorKind::CheckPanic,
                detail: format!("check panicked: {msg}"),
            }],
        },
    }
}

/// Runs the full audit over a project.
///
/// # Examples
///
/// ```
/// use refminer::{audit, AuditConfig, Project};
///
/// let p = Project::from_sources(vec![(
///     "drivers/x/x.c".to_string(),
///     r#"
///     int probe(void)
///     {
///             struct device_node *np = of_find_node_by_name(NULL, "x");
///             if (!np)
///                     return -ENODEV;
///             return 0;
///     }
///     "#
///     .to_string(),
/// )]);
/// let report = audit(&p, &AuditConfig::default());
/// assert_eq!(report.findings.len(), 1);
/// assert!(report.diagnostics.is_clean());
/// ```
pub fn audit(project: &Project, config: &AuditConfig) -> AuditReport {
    audit_with_cache(project, config, &mut AuditCache::new())
}

/// Runs the full audit through an explicit [`AuditCache`].
///
/// The first run over a tree populates the cache; later runs through
/// the *same* cache skip every stage whose inputs are unchanged. The
/// report is byte-identical to [`audit`]'s — caching only changes which
/// work executes, never its result — and [`AuditReport::cache`] records
/// this run's hits and misses.
pub fn audit_with_cache(
    project: &Project,
    config: &AuditConfig,
    cache: &mut AuditCache,
) -> AuditReport {
    audit_traced(project, config, cache, &TraceHandle::disabled())
}

/// Runs the full audit, recording structured spans and counters into a
/// [`TraceHandle`] — the `refminer audit --trace` entry point.
///
/// Tracing is strictly observational: the report (findings, counters,
/// diagnostics) is byte-identical whether the handle records or is
/// disabled, at any `jobs` count and any cache temperature. Every
/// pipeline stage opens a span (`hash`, `parse`, `export`, `merge.kb`,
/// `merge.progdb`, `check`, `report`), per-unit work opens
/// `{stage}.unit` spans, the feasibility fixpoint's share of graph
/// construction lands in `feasibility` spans, and cache traffic,
/// scheduler steals, per-checker time and limit trips land in counters.
pub fn audit_traced(
    project: &Project,
    config: &AuditConfig,
    cache: &mut AuditCache,
    trace: &TraceHandle,
) -> AuditReport {
    audit_cancellable(project, config, cache, trace, &CancelToken::never())
        .expect("a never-cancelled audit cannot be cancelled")
}

/// Runs the full audit under a [`CancelToken`] — the daemon entry
/// point, where every request carries a deadline.
///
/// The token is polled cooperatively at *unit boundaries*: once per
/// unit inside each fan-out stage and once between stages. A tripped
/// token makes in-flight workers return cheap placeholders, and the
/// pipeline bails at the next boundary — crucially **before** the
/// stage's cache-put loop, so placeholders never pollute any cache
/// layer. A cancelled audit therefore costs at most one unit's worth
/// of residual work per worker and leaves the cache exactly as
/// consistent as it found it.
pub fn audit_cancellable(
    project: &Project,
    config: &AuditConfig,
    cache: &mut AuditCache,
    trace: &TraceHandle,
    cancel: &CancelToken,
) -> Result<AuditReport, Cancelled> {
    cache.reset_stats();
    cancel.check()?;
    let limits = &config.limits;
    let parse_limits = ParseLimits {
        max_tokens: limits.max_tokens,
        max_depth: limits.max_parse_depth,
    };
    let units = project.units();
    let n = units.len();

    // Scan-time problems (unreadable/oversize files never became
    // units; non-UTF-8 units are in the project, decoded lossily).
    let mut scan_skipped: Vec<UnitDiagnostic> = Vec::new();
    for d in project.scan_diagnostics() {
        match d.kind {
            ScanErrorKind::UnreadableFile => scan_skipped.push(UnitDiagnostic {
                path: d.path.clone(),
                outcome: UnitOutcome::Skipped,
                errors: vec![UnitErrorKind::Io],
                detail: d.detail.clone(),
            }),
            ScanErrorKind::Oversize => scan_skipped.push(UnitDiagnostic {
                path: d.path.clone(),
                outcome: UnitOutcome::Skipped,
                errors: vec![UnitErrorKind::Oversize],
                detail: d.detail.clone(),
            }),
            // NonUtf8 attaches to a live unit below; directory-level
            // problems have no unit to attach to.
            _ => {}
        }
    }
    let non_utf8: std::collections::BTreeSet<&str> = project
        .scan_diagnostics()
        .iter()
        .filter(|d| d.kind == ScanErrorKind::NonUtf8)
        .map(|d| d.path.as_str())
        .collect();

    // Per-unit cache keys: path and content hash mixed with the
    // parse-stage configuration. The path is part of the key because it
    // is part of every cached *value* — diagnostics, export linkage
    // scoping, and finding locations all embed it — so two files with
    // identical bytes at different paths must not share an entry (at
    // kernel scale the synthetic corpus really does produce such
    // twins). Hashing is pure per-unit work, so it fans out too.
    let parse_cfg = parse_config_fingerprint(config);
    let hash_span = trace.span("hash");
    let unit_keys: Vec<u64> = run_indexed_traced(units, config.jobs, trace, "hash", |_, u| {
        if cancel.is_cancelled() {
            return 0;
        }
        mix(
            mix(fnv1a(u.path.as_bytes()), content_hash(&u.text)),
            parse_cfg,
        )
    });
    drop(hash_span);
    cancel.check()?;

    // Tree fingerprint: every unit's path and key, plus the discovery
    // configuration; keys the whole-tree discovery *merge*.
    let mut tree_fp = discovery_config_fingerprint(config);
    for (u, k) in units.iter().zip(&unit_keys) {
        tree_fp = mix(tree_fp, fnv1a(u.path.as_bytes()));
        tree_fp = mix(tree_fp, *k);
    }

    // ------------------------------------------------------------------
    // Phase 1: per-unit parse fan-out, then the knowledge-base merge.
    // ------------------------------------------------------------------
    let phase1_start = std::time::Instant::now();

    // Parse: lex + parse + discovery + symbol digest, work-stealing
    // across workers, each unit inside its own fault boundary.
    // Disk-loaded entries (no retained AST) are full hits — later
    // stages rehydrate their own unit on demand.
    let parse_span = trace.span("parse");
    let mut parsed: Vec<Option<Arc<ParsedUnit>>> = (0..n).map(|_| None).collect();
    let mut parse_todo: Vec<usize> = Vec::new();
    for i in 0..n {
        match cache.parse_get(unit_keys[i]) {
            Some(p) => parsed[i] = Some(p),
            None => parse_todo.push(i),
        }
    }
    let retain_asts = config.retain_asts;
    let parsed_new = run_indexed_traced(&parse_todo, config.jobs, trace, "parse", |_, &i| {
        if cancel.is_cancelled() {
            return cancelled_parse_placeholder();
        }
        let _unit_span = trace.unit_span("parse.unit", &units[i].path);
        parse_unit(&units[i], limits, &parse_limits, retain_asts)
    });
    // Bail *before* the put loop: a tripped token means some results
    // are placeholders, and none of them may enter the cache.
    cancel.check()?;
    for (&i, p) in parse_todo.iter().zip(parsed_new) {
        parsed[i] = Some(cache.parse_put(unit_keys[i], p));
    }
    drop(parse_span);

    // Barrier: merge per-unit discovery facts into the knowledge base.
    // Discovery rides the parse layer, so the merged KB exists before
    // any export runs — the streaming scheduler depends on that
    // ordering. The merge folds cached digests — no AST is touched —
    // and runs in its own fault boundary: if a degraded unit trips it,
    // fall back to the builtin KB rather than losing the audit.
    cancel.check()?;
    let merge_kb_span = trace.span("merge.kb");
    let kb: Arc<ApiKb> = if !config.discover_apis {
        Arc::new(ApiKb::builtin())
    } else if let Some(kb) = cache.discovery_get(tree_fp) {
        kb
    } else {
        let discs: Vec<&UnitDiscovery> = parsed
            .iter()
            .map(|p| &p.as_ref().unwrap().discovery)
            .collect();
        let defines: Vec<MacroDef> = parsed
            .iter()
            .flat_map(|p| p.as_ref().unwrap().defines.iter().cloned())
            .collect();
        let nesting_threshold = config.nesting_threshold;
        let discovered = fault_boundary(|| {
            let d = merge_discoveries(
                &discs,
                &defines,
                &ApiKb::builtin(),
                &DiscoverConfig { nesting_threshold },
            );
            d.into_kb(ApiKb::builtin())
        })
        .unwrap_or_else(|_| ApiKb::builtin());
        cache.discovery_put(tree_fp, discovered)
    };
    drop(merge_kb_span);
    let phase1_secs = phase1_start.elapsed().as_secs_f64();

    // ------------------------------------------------------------------
    // Phase 2: export + check — overlapped by the streaming scheduler,
    // or as the classic barrier pipeline.
    // ------------------------------------------------------------------
    // Check keys fold the KB fingerprint — a changed KB (say, a newly
    // discovered API) re-checks everything, as any unit might call it —
    // with the unit's *summary-deps* fingerprint, which folds the
    // resolution and summary of every helper the unit calls. Editing a
    // helper's defining file therefore re-checks exactly that file and
    // the units whose calls resolve into it.
    let kb_fp = mix(kb_fingerprint(&kb), check_config_fingerprint(config));
    let subsystem = config.subsystem.as_deref().map(|s| s.trim_end_matches('/'));
    let phase2_start = Instant::now();

    // Probe the export layer, keyed by `(unit key, export config)` so
    // editing one file re-exports exactly that file.
    let export_cfg = export_config_fingerprint(config);
    let mut exported: Vec<Option<Arc<UnitExports>>> = (0..n).map(|_| None).collect();
    let mut export_todo: Vec<usize> = Vec::new();
    for i in 0..n {
        match cache.export_get(mix(unit_keys[i], export_cfg)) {
            Some(e) => exported[i] = Some(e),
            None => export_todo.push(i),
        }
    }

    // Units eligible for checking: parsed, inside the subsystem filter.
    let mut check_units: Vec<usize> = Vec::new();
    for i in 0..n {
        if !parsed[i].as_ref().unwrap().parsed_ok {
            continue;
        }
        if let Some(prefix) = subsystem {
            let path = units[i].path.as_str();
            if path != prefix && !path.starts_with(&format!("{prefix}/")) {
                continue;
            }
        }
        check_units.push(i);
    }

    let only_patterns = config.only_patterns.as_deref();
    let jobs = effective_jobs(config.jobs);
    // An *explicit* `jobs >= 2` request is honored literally by the
    // streaming scheduler (mirroring the scheduler-test idiom in
    // `parallel::run_indexed_exact`), so single-core hosts can still
    // exercise — and test — the overlapped path. `jobs: 0` (auto)
    // defers to the available parallelism as everywhere else.
    let stream_jobs = if config.jobs == 0 { jobs } else { config.jobs };
    let mut checked: Vec<Option<Arc<CheckedUnit>>> = (0..n).map(|_| None).collect();
    let mut check_keys: HashSet<(u64, u64)> = HashSet::new();

    if config.streaming && stream_jobs > 1 && !export_todo.is_empty() {
        // Streaming: exports and checks share one worker pool; a
        // unit's check dispatches the moment its resolution closure's
        // exports are in. Workers only *read* the cache (through a
        // snapshot); every insert happens below, after the pool joins
        // and after the cancellation check — the same cancel-safety
        // contract as the barrier path.
        let result = stream::run(stream::StreamInput {
            units,
            unit_keys: &unit_keys,
            parsed: &parsed,
            exported,
            export_todo: &export_todo,
            check_todo: &check_units,
            kb: &kb,
            kb_fp,
            snapshot: cache.check_snapshot(),
            whole_program: config.whole_program,
            limits,
            parse_limits: &parse_limits,
            only_patterns,
            engines: config.engines,
            jobs: stream_jobs,
            trace,
            cancel,
        });
        if trace.is_enabled() {
            // The sequential stage view of the overlapped window:
            // "export" runs until the last export lands, "check" is
            // the drain after it. Observational only, like all
            // tracing.
            let total = phase2_start.elapsed();
            let exports_done = result.exports_done.min(total);
            trace.record_span("export", None, phase2_start, exports_done);
            trace.record_span(
                "merge.progdb",
                None,
                phase2_start + exports_done,
                std::time::Duration::ZERO,
            );
            trace.record_span(
                "check",
                None,
                phase2_start + exports_done,
                total - exports_done,
            );
        }
        cancel.check()?;
        exported = result.exported;
        for &i in &result.new_exports {
            cache.export_put_arc(
                mix(unit_keys[i], export_cfg),
                exported[i].clone().expect("stream filled every export"),
            );
        }
        for (i, deps_fp, outcome) in result.checks {
            check_keys.insert((unit_keys[i], deps_fp));
            match outcome {
                stream::CheckOutcome::Hit(c) => {
                    cache.stats.check_hits += 1;
                    cache.check_memoize(unit_keys[i], deps_fp, c.clone());
                    checked[i] = Some(c);
                }
                stream::CheckOutcome::Miss(c) => {
                    checked[i] = Some(cache.check_put(unit_keys[i], deps_fp, c));
                }
            }
        }
    } else {
        // Barrier: export fan-out, program-database merge, check
        // fan-out — each stage waiting out the previous one. This is
        // also the warm path: with every export cached there is
        // nothing to overlap.
        let export_span = trace.span("export");
        let exported_new =
            run_indexed_traced(&export_todo, config.jobs, trace, "export", |_, &i| {
                if cancel.is_cancelled() {
                    return UnitExports {
                        path: units[i].path.clone(),
                        fns: Vec::new(),
                    };
                }
                let _unit_span = trace.unit_span("export.unit", &units[i].path);
                export_one(
                    &units[i],
                    parsed[i].as_ref().unwrap(),
                    limits,
                    &parse_limits,
                    trace,
                )
            });
        cancel.check()?;
        for (&i, e) in export_todo.iter().zip(exported_new) {
            exported[i] = Some(cache.export_put(mix(unit_keys[i], export_cfg), e));
        }
        drop(export_span);

        // Barrier: merge per-unit exports into the program database,
        // in unit index order. Checkers resolve helper effects through
        // it under linkage rules.
        let merge_db_span = trace.span("merge.progdb");
        let export_refs: Vec<&UnitExports> = exported
            .iter()
            .map(|e| e.as_ref().unwrap().as_ref())
            .collect();
        let program = ProgramDb::build(&export_refs, &kb, config.whole_program);
        drop(merge_db_span);

        let check_span = trace.span("check");
        let mut check_todo: Vec<usize> = Vec::new();
        for &i in &check_units {
            let deps_fp = mix(kb_fp, program.deps_fingerprint(&units[i].path));
            check_keys.insert((unit_keys[i], deps_fp));
            match cache.check_get(unit_keys[i], deps_fp) {
                Some(c) => checked[i] = Some(c),
                None => check_todo.push(i),
            }
        }
        let checked_new = run_indexed_traced(&check_todo, config.jobs, trace, "check", |_, &i| {
            if cancel.is_cancelled() {
                return CheckedUnit::default();
            }
            let _unit_span = trace.unit_span("check.unit", &units[i].path);
            check_one(
                &units[i],
                parsed[i].as_ref().unwrap(),
                &kb,
                &program,
                limits,
                &parse_limits,
                only_patterns,
                config.engines,
                trace,
            )
        });
        cancel.check()?;
        for (&i, c) in check_todo.iter().zip(checked_new) {
            let deps_fp = mix(kb_fp, program.deps_fingerprint(&units[i].path));
            checked[i] = Some(cache.check_put(unit_keys[i], deps_fp, c));
        }
        drop(check_span);
    }
    let phase2_secs = phase2_start.elapsed().as_secs_f64();

    // Merge, in unit index order, exactly as the sequential pipeline
    // would have: findings concatenated then canonically sorted, error
    // details taking the first-recorded value per unit.
    cancel.check()?;
    let report_span = trace.span("report");
    let mut findings: Vec<Finding> = Vec::new();
    let mut functions = 0usize;
    let mut lines = 0usize;
    let mut diagnostics = AuditDiagnostics::default();
    for d in scan_skipped {
        diagnostics.skipped += 1;
        diagnostics.units.push(d);
    }
    for i in 0..n {
        let p = parsed[i].as_ref().unwrap();
        lines += p.lines;
        let mut st = UnitState {
            path: units[i].path.clone(),
            analyzed: p.parsed_ok,
            errors: Vec::new(),
            detail: String::new(),
        };
        if non_utf8.contains(units[i].path.as_str()) {
            st.push(UnitErrorKind::NonUtf8, "decoded lossily");
        }
        for e in &p.errors {
            st.push(e.kind, e.detail.clone());
        }
        if let Some(c) = &checked[i] {
            functions += c.functions;
            findings.extend(c.findings.iter().cloned());
            for e in &c.errors {
                st.push(e.kind, e.detail.clone());
            }
        }
        let outcome = st.outcome();
        match outcome {
            UnitOutcome::Ok => diagnostics.ok += 1,
            UnitOutcome::Degraded => diagnostics.degraded += 1,
            UnitOutcome::Skipped => diagnostics.skipped += 1,
        }
        if outcome != UnitOutcome::Ok {
            let mut errors = st.errors;
            errors.sort();
            diagnostics.units.push(UnitDiagnostic {
                path: st.path,
                outcome,
                errors,
                detail: st.detail,
            });
        }
    }
    sort_findings_canonical(&mut findings);
    // Report-layer filters, after the canonical sort so the result is
    // deterministic at any worker count: suppress paths the feasibility
    // engine proved unreachable, then collapse same-site findings of
    // one root-cause family into a single record.
    if config.feasibility {
        findings.retain(|f| f.feasibility != Feasibility::Infeasible);
    }
    merge_duplicate_findings(&mut findings);
    diagnostics.units.sort_by(|a, b| a.path.cmp(&b.path));
    drop(report_span);

    if trace.is_enabled() {
        trace.add("units.total", n as u64);
        let s = &cache.stats;
        for (name, value) in [
            ("cache.parse.hit", s.parse_hits),
            ("cache.parse.miss", s.parse_misses),
            ("cache.export.hit", s.export_hits),
            ("cache.export.miss", s.export_misses),
            ("cache.check.hit", s.check_hits),
            ("cache.check.miss", s.check_misses),
            ("cache.discovery.hit", s.discovery_hits),
            ("cache.discovery.miss", s.discovery_misses),
        ] {
            trace.add(name, value as u64);
        }
        // Stale entries: leftovers from earlier trees/configs that no
        // key produced this run could ever address.
        let parse_keys: HashSet<u64> = unit_keys.iter().copied().collect();
        let export_keys: HashSet<u64> = unit_keys.iter().map(|&k| mix(k, export_cfg)).collect();
        let stale = cache.stale_counts(&parse_keys, &export_keys, &check_keys, tree_fp);
        trace.add("cache.parse.stale", stale.parse as u64);
        trace.add("cache.export.stale", stale.export as u64);
        trace.add("cache.check.stale", stale.check as u64);
        trace.add("cache.discovery.stale", stale.discovery as u64);
        // Limit trips, keyed by the diagnostic taxonomy.
        for (kind, count) in diagnostics.by_kind() {
            trace.add(&format!("limit.{}", kind.name()), count as u64);
        }
    }

    Ok(AuditReport {
        findings,
        files: n,
        functions,
        lines,
        kb: (*kb).clone(),
        diagnostics,
        cache: cache.stats,
        phase1_secs,
        phase2_secs,
    })
}

/// The cheap stand-in a parse worker returns after observing a tripped
/// token mid-fan-out. Never cached, never reported — the pipeline bails
/// at the next boundary before either could happen.
fn cancelled_parse_placeholder() -> ParsedUnit {
    ParsedUnit {
        tu: None,
        parsed_ok: false,
        defines: Vec::new(),
        errors: Vec::new(),
        lines: 0,
        discovery: UnitDiscovery::default(),
        syms: Vec::new(),
        called: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_corpus::{generate_tree, TreeConfig};

    #[test]
    fn audits_synthetic_tree_slice() {
        let tree = generate_tree(&TreeConfig {
            scale: 0.05,
            include_tricky: false,
            ..Default::default()
        });
        let project = Project::from_tree(&tree);
        let report = audit(&project, &AuditConfig::default());
        assert!(report.functions > 50);
        assert!(report.diagnostics.is_clean());
        assert_eq!(report.diagnostics.ok, report.files);
        // Every injected bug should be found (recall ≈ 1 on the
        // generated shapes).
        let found = tree
            .manifest
            .bugs
            .iter()
            .filter(|b| {
                report
                    .findings
                    .iter()
                    .any(|f| f.file == b.path && f.function == b.function)
            })
            .count();
        assert_eq!(found, tree.manifest.bugs.len(), "missed bugs");
    }

    #[test]
    fn cancelled_audit_leaves_cache_unpolluted() {
        use crate::cancel::{CancelReason, CancelToken};

        let tree = generate_tree(&TreeConfig {
            scale: 0.03,
            include_tricky: false,
            ..Default::default()
        });
        let project = Project::from_tree(&tree);
        let cfg = AuditConfig::default();
        let trace = TraceHandle::disabled();

        // Pre-cancelled: the audit must bail without persisting any of
        // the placeholder results its workers produce.
        let mut cache = AuditCache::new();
        let token = CancelToken::new();
        token.cancel();
        let err = audit_cancellable(&project, &cfg, &mut cache, &trace, &token).unwrap_err();
        assert_eq!(err.reason, CancelReason::Explicit);
        assert!(cache.is_empty(), "cancelled audit polluted the cache");

        // Same for a deadline that has already passed.
        let token = CancelToken::with_timeout(std::time::Duration::ZERO);
        let err = audit_cancellable(&project, &cfg, &mut cache, &trace, &token).unwrap_err();
        assert_eq!(err.reason, CancelReason::DeadlineExceeded);
        assert!(cache.is_empty());

        // The untouched cache then behaves exactly like a fresh one:
        // the follow-up audit runs fully cold and matches a clean run.
        let after = audit_with_cache(&project, &cfg, &mut cache);
        let clean = audit_with_cache(&project, &cfg, &mut AuditCache::new());
        assert_eq!(after.findings, clean.findings);
        assert_eq!(after.cache.parse_hits, 0, "cache was not cold");
    }

    /// A config running the streaming scheduler: multiple workers (the
    /// 1-job case falls back to the barrier path by design, so tests
    /// must force a pool) with streaming on.
    fn streaming_cfg() -> AuditConfig {
        AuditConfig {
            jobs: 4,
            streaming: true,
            ..Default::default()
        }
    }

    fn barrier_cfg() -> AuditConfig {
        AuditConfig {
            jobs: 4,
            streaming: false,
            ..Default::default()
        }
    }

    fn diag_rows(d: &AuditDiagnostics) -> Vec<(String, &'static str, Vec<UnitErrorKind>)> {
        d.units
            .iter()
            .map(|u| (u.path.clone(), u.outcome.name(), u.errors.clone()))
            .collect()
    }

    #[test]
    fn streaming_report_is_byte_identical_to_barrier() {
        let tree = generate_tree(&TreeConfig {
            scale: 0.05,
            ..Default::default()
        });
        let project = Project::from_tree(&tree);
        let a = audit(&project, &barrier_cfg());
        let b = audit(&project, &streaming_cfg());
        assert_eq!(a.findings, b.findings, "streaming changed the findings");
        assert_eq!(a.functions, b.functions);
        assert_eq!(a.lines, b.lines);
        assert_eq!(a.files, b.files);
        assert_eq!(diag_rows(&a.diagnostics), diag_rows(&b.diagnostics));
        assert_eq!(
            (
                a.diagnostics.ok,
                a.diagnostics.degraded,
                a.diagnostics.skipped
            ),
            (
                b.diagnostics.ok,
                b.diagnostics.degraded,
                b.diagnostics.skipped
            )
        );
        // Cold-run cache traffic is identical too: same misses, same
        // snapshot hits (none), regardless of the scheduler.
        assert_eq!(a.cache, b.cache, "cache stats diverged");
        assert!(!a.findings.is_empty());
    }

    #[test]
    fn streaming_matches_barrier_under_subsystem_and_single_unit_resolution() {
        let tree = generate_tree(&TreeConfig {
            scale: 0.05,
            include_tricky: false,
            ..Default::default()
        });
        let project = Project::from_tree(&tree);
        for (subsystem, whole_program) in [
            (Some("drivers".to_string()), true),
            (None, false),
            (Some("arch/".to_string()), false),
        ] {
            let barrier = AuditConfig {
                subsystem: subsystem.clone(),
                whole_program,
                ..barrier_cfg()
            };
            let streaming = AuditConfig {
                subsystem: subsystem.clone(),
                whole_program,
                ..streaming_cfg()
            };
            let a = audit(&project, &barrier);
            let b = audit(&project, &streaming);
            assert_eq!(
                a.findings, b.findings,
                "diverged for subsystem={subsystem:?} whole_program={whole_program}"
            );
            assert_eq!(a.cache, b.cache);
        }
    }

    #[test]
    fn streaming_and_barrier_address_the_same_cache_entries() {
        // The strongest cross-scheduler invariant: entries written by a
        // cold *streaming* run must be exact hits for a warm *barrier*
        // run (and vice versa) — closure-local program databases
        // produce the very same deps fingerprints as the global one.
        let tree = generate_tree(&TreeConfig {
            scale: 0.05,
            ..Default::default()
        });
        let project = Project::from_tree(&tree);

        let mut cache = AuditCache::new();
        let cold = audit_with_cache(&project, &streaming_cfg(), &mut cache);
        assert!(cold.cache.check_misses > 0, "cold run did no checking");
        let warm = audit_with_cache(&project, &barrier_cfg(), &mut cache);
        assert_eq!(warm.cache.parse_misses, 0, "parse keys diverged");
        assert_eq!(warm.cache.export_misses, 0, "export keys diverged");
        assert_eq!(warm.cache.check_misses, 0, "check keys diverged");
        assert_eq!(warm.findings, cold.findings);

        let mut cache = AuditCache::new();
        let cold = audit_with_cache(&project, &barrier_cfg(), &mut cache);
        // A warm streaming config routes through the barrier path (no
        // exports to overlap), so force the scheduler by invalidating
        // one unit's export: edit one file.
        let mut sources: Vec<(String, String)> = project
            .units()
            .iter()
            .map(|u| (u.path.clone(), u.text.clone()))
            .collect();
        sources[0]
            .1
            .push_str("\nint nudged_tail(void) { return 1; }\n");
        let edited = Project::from_sources(sources);
        let streamed = audit_with_cache(&edited, &streaming_cfg(), &mut cache);
        let fresh = audit(&edited, &barrier_cfg());
        assert_eq!(streamed.findings, fresh.findings);
        assert_eq!(
            streamed.cache.parse_misses, 1,
            "only the edited unit re-parses"
        );
        assert_eq!(
            streamed.cache.export_misses, 1,
            "only the edited unit re-exports"
        );
        assert!(
            streamed.cache.check_hits > 0,
            "unaffected units must hit the snapshot: {:?}",
            streamed.cache
        );
        let _ = cold;
    }

    #[test]
    fn dropping_asts_changes_nothing_but_memory() {
        let tree = generate_tree(&TreeConfig {
            scale: 0.04,
            ..Default::default()
        });
        let project = Project::from_tree(&tree);
        let keep = audit(&project, &streaming_cfg());
        let drop_cfg = AuditConfig {
            retain_asts: false,
            ..streaming_cfg()
        };
        let dropped = audit(&project, &drop_cfg);
        assert_eq!(keep.findings, dropped.findings);
        assert_eq!(keep.functions, dropped.functions);
        assert_eq!(keep.cache, dropped.cache);
    }

    #[test]
    fn discovery_adds_apis() {
        let p = Project::from_sources(vec![(
            "drivers/w/w.c".to_string(),
            r#"
struct widget { struct kref refs; };
void widget_put(struct widget *w) { kref_put(&w->refs, widget_free); }
"#
            .to_string(),
        )]);
        let report = audit(&p, &AuditConfig::default());
        assert!(report.kb.is_dec("widget_put"));
    }

    #[test]
    fn groupings_consistent() {
        let tree = generate_tree(&TreeConfig {
            scale: 0.03,
            ..Default::default()
        });
        let project = Project::from_tree(&tree);
        let report = audit(&project, &AuditConfig::default());
        let per_pattern: usize = report.by_pattern().values().sum();
        let per_impact: usize = report.by_impact().values().sum();
        assert_eq!(per_pattern, report.findings.len());
        assert_eq!(per_impact, report.findings.len());
    }

    #[test]
    fn oversize_unit_is_skipped_with_diagnostic() {
        let big = "int x;\n".repeat(400);
        let p = Project::from_sources(vec![
            ("a.c".to_string(), "int f(void) { return 0; }".to_string()),
            ("big.c".to_string(), big),
        ]);
        let config = AuditConfig {
            limits: AuditLimits {
                max_file_bytes: 1024,
                ..Default::default()
            },
            ..Default::default()
        };
        let report = audit(&p, &config);
        assert_eq!(report.diagnostics.ok, 1);
        assert_eq!(report.diagnostics.skipped, 1);
        let d = &report.diagnostics.units[0];
        assert_eq!(d.path, "big.c");
        assert_eq!(d.outcome, UnitOutcome::Skipped);
        assert_eq!(d.errors, vec![UnitErrorKind::Oversize]);
    }

    #[test]
    fn deep_nesting_degrades_one_unit_without_losing_the_other() {
        let depth = 3000;
        let bomb = format!(
            "int f(void) {{ return {}1{}; }}",
            "(".repeat(depth),
            ")".repeat(depth)
        );
        let healthy = r#"
int probe(void)
{
        struct device_node *np = of_find_node_by_name(NULL, "x");
        if (!np)
                return -ENODEV;
        return 0;
}
"#
        .to_string();
        let p = Project::from_sources(vec![
            ("bomb.c".to_string(), bomb),
            ("ok.c".to_string(), healthy),
        ]);
        let report = audit(&p, &AuditConfig::default());
        assert_eq!(report.diagnostics.degraded, 1);
        assert_eq!(report.diagnostics.ok, 1);
        let d = &report.diagnostics.units[0];
        assert_eq!(d.path, "bomb.c");
        assert!(d.errors.contains(&UnitErrorKind::ParseDepth));
        // The healthy sibling still yields its finding.
        assert!(report.findings.iter().any(|f| f.file == "ok.c"));
    }

    #[test]
    fn identical_content_at_two_paths_keeps_per_path_results_warm() {
        // Two byte-identical buggy files at different paths. Every
        // cached value embeds its unit's path (diagnostics, export
        // linkage scoping, finding locations), so the twins must not
        // share cache entries: the warm run has to report the finding
        // under *both* paths, from pure hits. The kernel-scale corpus
        // really produces such twins across replicas.
        let leaky = r#"
int probe(void)
{
        struct device_node *np = of_find_node_by_name(NULL, "x");
        if (!np)
                return -ENODEV;
        return 0;
}
"#
        .to_string();
        let p = Project::from_sources(vec![
            ("drivers/a/probe.c".to_string(), leaky.clone()),
            ("drivers/b/probe.c".to_string(), leaky),
        ]);
        let cfg = AuditConfig::default();
        let mut cache = AuditCache::new();
        let cold = audit_with_cache(&p, &cfg, &mut cache);
        let warm = audit_with_cache(&p, &cfg, &mut cache);
        for (name, report) in [("cold", &cold), ("warm", &warm)] {
            for path in ["drivers/a/probe.c", "drivers/b/probe.c"] {
                assert!(
                    report.findings.iter().any(|f| f.file == path),
                    "{name} run lost the finding for {path}"
                );
            }
        }
        assert_eq!(cold.findings, warm.findings);
        assert_eq!(warm.cache.parse_misses, 0, "warm twin re-parsed");
        assert_eq!(warm.cache.check_misses, 0, "warm twin re-checked");
    }

    #[test]
    fn fault_boundary_reports_panics() {
        let r: Result<(), String> = fault_boundary(|| panic!("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        let ok = fault_boundary(|| 41 + 1);
        assert_eq!(ok.unwrap(), 42);
    }

    #[test]
    fn graph_cap_degrades_unit() {
        let mut body = String::from("int big(void) {\n");
        for i in 0..300 {
            body.push_str(&format!("        if (c{i}) do_thing({i});\n"));
        }
        body.push_str("        return 0;\n}\n");
        let p = Project::from_sources(vec![("big.c".to_string(), body)]);
        let config = AuditConfig {
            limits: AuditLimits {
                max_graph_nodes: 100,
                ..Default::default()
            },
            ..Default::default()
        };
        let report = audit(&p, &config);
        assert_eq!(report.diagnostics.degraded, 1);
        assert_eq!(
            report.diagnostics.units[0].errors,
            vec![UnitErrorKind::GraphBlowup]
        );
        // The over-cap function was not analyzed.
        assert_eq!(report.functions, 0);
    }
}

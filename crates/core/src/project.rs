//! Project loading: a set of C sources to audit, from disk or from a
//! generated synthetic tree.
//!
//! Disk scanning is hardened against hostile trees: unreadable files
//! and directories become [`ScanDiagnostic`]s instead of aborting the
//! scan, non-UTF-8 content is decoded lossily (and flagged), oversized
//! files are skipped under a byte cap, and symlink cycles are broken by
//! tracking canonical directory identities.

use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};

use refminer_corpus::SyntheticTree;

/// One source file queued for analysis.
#[derive(Debug, Clone)]
pub struct SourceUnit {
    /// Project-relative path.
    pub path: String,
    /// File contents.
    pub text: String,
}

/// Why a path was skipped or flagged during a disk scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanErrorKind {
    /// A file could not be read; it was skipped.
    UnreadableFile,
    /// A directory could not be listed; its subtree was skipped.
    UnreadableDir,
    /// File content was not valid UTF-8; it was decoded lossily and
    /// kept.
    NonUtf8,
    /// The file exceeded [`ScanOptions::max_file_bytes`]; it was
    /// skipped.
    Oversize,
    /// A directory was reached twice through symlinks; the repeat visit
    /// was skipped.
    SymlinkCycle,
}

impl ScanErrorKind {
    /// Stable lower-snake name, used in reports and JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            ScanErrorKind::UnreadableFile => "unreadable_file",
            ScanErrorKind::UnreadableDir => "unreadable_dir",
            ScanErrorKind::NonUtf8 => "non_utf8",
            ScanErrorKind::Oversize => "oversize",
            ScanErrorKind::SymlinkCycle => "symlink_cycle",
        }
    }
}

/// One problem the scanner recovered from.
#[derive(Debug, Clone)]
pub struct ScanDiagnostic {
    /// The path involved (project-relative where possible).
    pub path: String,
    /// What went wrong.
    pub kind: ScanErrorKind,
    /// Human-readable detail (e.g. the I/O error text).
    pub detail: String,
}

/// Resource limits and behavior switches for [`Project::scan_with`].
#[derive(Debug, Clone, Copy)]
pub struct ScanOptions {
    /// Files larger than this many bytes are skipped (and diagnosed).
    pub max_file_bytes: u64,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            // 8 MiB: far above any real kernel source file, low enough
            // to bound memory on a hostile tree.
            max_file_bytes: 8 * 1024 * 1024,
        }
    }
}

/// A set of C sources.
///
/// # Examples
///
/// ```
/// use refminer::Project;
///
/// let p = Project::from_sources(vec![(
///     "drivers/foo/foo.c".to_string(),
///     "int foo_probe(void) { return 0; }".to_string(),
/// )]);
/// assert_eq!(p.units().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Project {
    units: Vec<SourceUnit>,
    scan_diags: Vec<ScanDiagnostic>,
}

impl Project {
    /// Builds a project from in-memory sources.
    pub fn from_sources(sources: Vec<(String, String)>) -> Project {
        Project {
            units: sources
                .into_iter()
                .map(|(path, text)| SourceUnit { path, text })
                .collect(),
            scan_diags: Vec::new(),
        }
    }

    /// Builds a project from a generated synthetic tree.
    pub fn from_tree(tree: &SyntheticTree) -> Project {
        Project {
            units: tree
                .files
                .iter()
                .map(|f| SourceUnit {
                    path: f.path.clone(),
                    text: f.content.clone(),
                })
                .collect(),
            scan_diags: Vec::new(),
        }
    }

    /// Recursively scans a directory for `.c` and `.h` files with
    /// default [`ScanOptions`].
    pub fn scan(root: &Path) -> io::Result<Project> {
        Self::scan_with(root, &ScanOptions::default())
    }

    /// Recursively scans a directory for `.c` and `.h` files.
    ///
    /// Only an unreadable *root* is an `Err`; every other problem is
    /// recorded as a [`ScanDiagnostic`] (see
    /// [`Project::scan_diagnostics`]) and the scan continues.
    pub fn scan_with(root: &Path, opts: &ScanOptions) -> io::Result<Project> {
        // Probe the root first so a missing/unreadable argument is a
        // hard error rather than a silently empty project. Scan
        // syscalls go through the fault-injection seam so a chaos
        // harness can flake them deterministically.
        refminer_faultio::read_dir(root)?;

        let mut units = Vec::new();
        let mut diags: Vec<ScanDiagnostic> = Vec::new();
        let mut seen_dirs: HashSet<PathBuf> = HashSet::new();
        let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];

        let rel_of = |path: &Path| -> String {
            path.strip_prefix(root)
                .unwrap_or(path)
                .to_string_lossy()
                .replace('\\', "/")
        };

        while let Some(dir) = stack.pop() {
            // Symlink-cycle guard: a directory is visited at most once
            // under its canonical identity.
            match std::fs::canonicalize(&dir) {
                Ok(canon) => {
                    if !seen_dirs.insert(canon) {
                        diags.push(ScanDiagnostic {
                            path: rel_of(&dir),
                            kind: ScanErrorKind::SymlinkCycle,
                            detail: "directory already visited".to_string(),
                        });
                        continue;
                    }
                }
                Err(e) => {
                    diags.push(ScanDiagnostic {
                        path: rel_of(&dir),
                        kind: ScanErrorKind::UnreadableDir,
                        detail: e.to_string(),
                    });
                    continue;
                }
            }
            let entries = match refminer_faultio::read_dir(&dir) {
                Ok(it) => it,
                Err(e) => {
                    diags.push(ScanDiagnostic {
                        path: rel_of(&dir),
                        kind: ScanErrorKind::UnreadableDir,
                        detail: e.to_string(),
                    });
                    continue;
                }
            };
            for entry in entries {
                let entry = match entry {
                    Ok(e) => e,
                    Err(e) => {
                        diags.push(ScanDiagnostic {
                            path: rel_of(&dir),
                            kind: ScanErrorKind::UnreadableDir,
                            detail: e.to_string(),
                        });
                        continue;
                    }
                };
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                    continue;
                }
                let is_c = path
                    .extension()
                    .and_then(|e| e.to_str())
                    .is_some_and(|e| e == "c" || e == "h");
                if !is_c {
                    continue;
                }
                let rel = rel_of(&path);
                match refminer_faultio::metadata(&path) {
                    Ok(m) if m.len() > opts.max_file_bytes => {
                        diags.push(ScanDiagnostic {
                            path: rel,
                            kind: ScanErrorKind::Oversize,
                            detail: format!(
                                "{} bytes exceeds the {}-byte cap",
                                m.len(),
                                opts.max_file_bytes
                            ),
                        });
                        continue;
                    }
                    Ok(_) => {}
                    Err(e) => {
                        diags.push(ScanDiagnostic {
                            path: rel,
                            kind: ScanErrorKind::UnreadableFile,
                            detail: e.to_string(),
                        });
                        continue;
                    }
                }
                let bytes = match refminer_faultio::read(&path) {
                    Ok(b) => b,
                    Err(e) => {
                        diags.push(ScanDiagnostic {
                            path: rel,
                            kind: ScanErrorKind::UnreadableFile,
                            detail: e.to_string(),
                        });
                        continue;
                    }
                };
                let text = match String::from_utf8(bytes) {
                    Ok(s) => s,
                    Err(e) => {
                        let lossy = String::from_utf8_lossy(e.as_bytes()).into_owned();
                        diags.push(ScanDiagnostic {
                            path: rel.clone(),
                            kind: ScanErrorKind::NonUtf8,
                            detail: "decoded lossily".to_string(),
                        });
                        lossy
                    }
                };
                units.push(SourceUnit { path: rel, text });
            }
        }
        units.sort_by(|a, b| a.path.cmp(&b.path));
        diags.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Project {
            units,
            scan_diags: diags,
        })
    }

    /// The files in the project.
    pub fn units(&self) -> &[SourceUnit] {
        &self.units
    }

    /// Problems recovered from during [`Project::scan_with`]; empty for
    /// in-memory projects.
    pub fn scan_diagnostics(&self) -> &[ScanDiagnostic] {
        &self.scan_diags
    }

    /// Total source lines across the project.
    pub fn total_lines(&self) -> usize {
        self.units.iter().map(|u| u.text.lines().count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_corpus::{generate_tree, TreeConfig};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("refminer_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn from_tree_mirrors_files() {
        let tree = generate_tree(&TreeConfig {
            scale: 0.02,
            ..Default::default()
        });
        let p = Project::from_tree(&tree);
        assert_eq!(p.units().len(), tree.files.len());
        assert!(p.total_lines() > 100);
    }

    #[test]
    fn scan_reads_written_tree() {
        let tree = generate_tree(&TreeConfig {
            scale: 0.02,
            ..Default::default()
        });
        let dir = std::env::temp_dir().join(format!("refminer_scan_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        tree.write_to(&dir).expect("write tree");
        let p = Project::scan(&dir).expect("scan");
        // manifest.json is ignored; every .c/.h is picked up.
        assert_eq!(p.units().len(), tree.files.len());
        assert!(p.scan_diagnostics().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_root_is_an_error() {
        let dir = std::env::temp_dir().join("refminer_definitely_missing_root");
        assert!(Project::scan(&dir).is_err());
    }

    #[test]
    fn non_utf8_is_kept_lossily_and_flagged() {
        let dir = temp_dir("nonutf8");
        std::fs::write(dir.join("ok.c"), "int f(void) { return 0; }\n").unwrap();
        std::fs::write(
            dir.join("bad.c"),
            b"int g(void) { return 0; } /* \xff\xfe */\n",
        )
        .unwrap();
        let p = Project::scan(&dir).expect("scan");
        assert_eq!(p.units().len(), 2);
        let diags = p.scan_diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, ScanErrorKind::NonUtf8);
        assert_eq!(diags[0].path, "bad.c");
        let bad = p.units().iter().find(|u| u.path == "bad.c").unwrap();
        assert!(bad.text.contains('\u{FFFD}'));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversize_files_are_skipped_and_flagged() {
        let dir = temp_dir("oversize");
        std::fs::write(dir.join("small.c"), "int f(void) { return 0; }\n").unwrap();
        std::fs::write(dir.join("huge.c"), "x".repeat(4096)).unwrap();
        let opts = ScanOptions {
            max_file_bytes: 1024,
        };
        let p = Project::scan_with(&dir, &opts).expect("scan");
        assert_eq!(p.units().len(), 1);
        assert_eq!(p.units()[0].path, "small.c");
        assert_eq!(p.scan_diagnostics().len(), 1);
        assert_eq!(p.scan_diagnostics()[0].kind, ScanErrorKind::Oversize);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(unix)]
    #[test]
    fn symlink_cycles_do_not_hang_the_scan() {
        let dir = temp_dir("symcycle");
        let sub = dir.join("sub");
        std::fs::create_dir_all(&sub).unwrap();
        std::fs::write(sub.join("a.c"), "int f(void) { return 0; }\n").unwrap();
        // sub/loop -> dir, forming a cycle.
        std::os::unix::fs::symlink(&dir, sub.join("loop")).unwrap();
        let p = Project::scan(&dir).expect("scan");
        assert_eq!(p.units().len(), 1);
        assert!(p
            .scan_diagnostics()
            .iter()
            .any(|d| d.kind == ScanErrorKind::SymlinkCycle));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(unix)]
    #[test]
    fn unreadable_file_is_diagnosed_not_fatal() {
        use std::os::unix::fs::PermissionsExt;
        let dir = temp_dir("unreadable");
        std::fs::write(dir.join("ok.c"), "int f(void) { return 0; }\n").unwrap();
        let locked = dir.join("locked.c");
        std::fs::write(&locked, "int g(void) { return 0; }\n").unwrap();
        std::fs::set_permissions(&locked, std::fs::Permissions::from_mode(0o000)).unwrap();
        let p = Project::scan(&dir).expect("scan");
        // Root can still read the file regardless of mode bits; accept
        // either outcome but require no panic and the readable file in.
        assert!(p.units().iter().any(|u| u.path == "ok.c"));
        if p.units().len() == 1 {
            assert!(p
                .scan_diagnostics()
                .iter()
                .any(|d| d.kind == ScanErrorKind::UnreadableFile));
        }
        std::fs::set_permissions(&locked, std::fs::Permissions::from_mode(0o644)).ok();
        std::fs::remove_dir_all(&dir).ok();
    }
}

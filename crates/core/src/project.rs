//! Project loading: a set of C sources to audit, from disk or from a
//! generated synthetic tree.

use std::io;
use std::path::{Path, PathBuf};

use refminer_corpus::SyntheticTree;

/// One source file queued for analysis.
#[derive(Debug, Clone)]
pub struct SourceUnit {
    /// Project-relative path.
    pub path: String,
    /// File contents.
    pub text: String,
}

/// A set of C sources.
///
/// # Examples
///
/// ```
/// use refminer::Project;
///
/// let p = Project::from_sources(vec![(
///     "drivers/foo/foo.c".to_string(),
///     "int foo_probe(void) { return 0; }".to_string(),
/// )]);
/// assert_eq!(p.units().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Project {
    units: Vec<SourceUnit>,
}

impl Project {
    /// Builds a project from in-memory sources.
    pub fn from_sources(sources: Vec<(String, String)>) -> Project {
        Project {
            units: sources
                .into_iter()
                .map(|(path, text)| SourceUnit { path, text })
                .collect(),
        }
    }

    /// Builds a project from a generated synthetic tree.
    pub fn from_tree(tree: &SyntheticTree) -> Project {
        Project {
            units: tree
                .files
                .iter()
                .map(|f| SourceUnit {
                    path: f.path.clone(),
                    text: f.content.clone(),
                })
                .collect(),
        }
    }

    /// Recursively scans a directory for `.c` and `.h` files.
    pub fn scan(root: &Path) -> io::Result<Project> {
        let mut units = Vec::new();
        let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
        while let Some(dir) = stack.pop() {
            for entry in std::fs::read_dir(&dir)? {
                let entry = entry?;
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                    continue;
                }
                let is_c = path
                    .extension()
                    .and_then(|e| e.to_str())
                    .is_some_and(|e| e == "c" || e == "h");
                if !is_c {
                    continue;
                }
                let text = std::fs::read_to_string(&path)?;
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                units.push(SourceUnit { path: rel, text });
            }
        }
        units.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Project { units })
    }

    /// The files in the project.
    pub fn units(&self) -> &[SourceUnit] {
        &self.units
    }

    /// Total source lines across the project.
    pub fn total_lines(&self) -> usize {
        self.units.iter().map(|u| u.text.lines().count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_corpus::{generate_tree, TreeConfig};

    #[test]
    fn from_tree_mirrors_files() {
        let tree = generate_tree(&TreeConfig {
            scale: 0.02,
            ..Default::default()
        });
        let p = Project::from_tree(&tree);
        assert_eq!(p.units().len(), tree.files.len());
        assert!(p.total_lines() > 100);
    }

    #[test]
    fn scan_reads_written_tree() {
        let tree = generate_tree(&TreeConfig {
            scale: 0.02,
            ..Default::default()
        });
        let dir = std::env::temp_dir().join(format!("refminer_scan_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        tree.write_to(&dir).expect("write tree");
        let p = Project::scan(&dir).expect("scan");
        // manifest.json is ignored; every .c/.h is picked up.
        assert_eq!(p.units().len(), tree.files.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Diff-aware auditing: the CI-bot workload.
//!
//! [`diff_audit`] audits two revisions of a tree through one shared
//! [`AuditCache`] — so revision B re-parses and re-checks only the
//! units the commit touched — and reports the *findings delta*:
//! findings introduced by the commit, findings it fixed, and findings
//! that merely moved (identical up to their line number, e.g. pushed
//! down by an inserted comment).
//!
//! The delta is computed as a set difference over the exact JSONL
//! lines [`render_finding_line`] produces, the same renderer the
//! one-shot `--json` CLI and the daemon share. Because a cached audit
//! is byte-identical to a cold one at any `--jobs`, the delta is
//! byte-identical to diffing two full `--json` runs — the property
//! `scripts/diff_smoke.sh` replays the simulated fix history to check.
//!
//! When a commit fixes a finding, the sweep engine abstracts the fixed
//! bug into a template and searches revision B's surviving findings
//! for unfixed clones — the incomplete-fix ("one bug, hundreds
//! behind") detector. Those surface as `left_behind` lines, additive
//! to the delta.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::path::Path;

use refminer_checkers::Finding;
use refminer_json::{obj, ToJson, Value};
use refminer_rcapi::ApiKb;
use refminer_sweep::{abstract_template, sweep, CloneMatch};

use crate::audit::{audit_with_cache, AuditConfig, AuditReport};
use crate::cache::AuditCache;
use crate::project::Project;
use crate::serve::render_finding_line;

/// Clones of a fixed bug that the fixing commit left unfixed.
#[derive(Debug, Clone)]
pub struct LeftBehind {
    /// The finding the commit fixed (revision-A side).
    pub origin: Finding,
    /// Surviving clone sites in revision B, ranked by similarity.
    pub matches: Vec<CloneMatch>,
}

/// The findings delta between two revisions — the part of a
/// [`DiffReport`] the daemon also produces (it has no revision-A
/// [`AuditReport`], only the previous snapshot's findings).
#[derive(Debug, Default)]
pub struct DiffDelta {
    /// Findings present in B but not in A, in B's canonical order.
    pub introduced: Vec<Finding>,
    /// Findings present in A but not in B, in A's canonical order.
    pub fixed: Vec<Finding>,
    /// Findings identical up to their line number, as `(A, B)` pairs
    /// in A's canonical order. Not counted as introduced or fixed.
    pub moved: Vec<(Finding, Finding)>,
    /// Unfixed clones of each fixed finding (empty when the sweep is
    /// disabled).
    pub left_behind: Vec<LeftBehind>,
}

impl DiffDelta {
    /// Whether the commit is clean: nothing introduced, nothing left
    /// behind. (Fixes and moves never block a commit.)
    pub fn is_clean(&self) -> bool {
        self.introduced.is_empty() && self.left_behind.iter().all(|l| l.matches.is_empty())
    }

    /// Surviving clone sites across all fixed findings.
    pub fn left_behind_total(&self) -> usize {
        self.left_behind.iter().map(|l| l.matches.len()).sum()
    }
}

/// The findings delta between two revisions, with both full audits.
#[derive(Debug)]
pub struct DiffReport {
    /// The delta itself.
    pub delta: DiffDelta,
    /// The full revision-A audit.
    pub report_a: AuditReport,
    /// The full revision-B audit.
    pub report_b: AuditReport,
}

/// A finding's identity with the line number masked out, for detecting
/// pure moves.
fn line_masked(f: &Finding) -> String {
    let mut g = f.clone();
    g.line = 0;
    render_finding_line(&g)
}

/// Computes the delta between two canonical finding lists.
///
/// `introduced` = B − A and `fixed` = A − B as set differences over
/// the exact [`render_finding_line`] strings; pairs equal after
/// masking the line number are then reclassified as `moved`. The
/// invariant the smoke tests script against:
/// `introduced ∪ moved.B == B − A` and `fixed ∪ moved.A == A − B`.
pub fn diff_findings(
    a: &[Finding],
    b: &[Finding],
) -> (Vec<Finding>, Vec<Finding>, Vec<(Finding, Finding)>) {
    let a_lines: HashSet<String> = a.iter().map(render_finding_line).collect();
    let b_lines: HashSet<String> = b.iter().map(render_finding_line).collect();
    let introduced: Vec<Finding> = b
        .iter()
        .filter(|f| !a_lines.contains(&render_finding_line(f)))
        .cloned()
        .collect();
    let gone: Vec<Finding> = a
        .iter()
        .filter(|f| !b_lines.contains(&render_finding_line(f)))
        .cloned()
        .collect();
    // Pair up pure moves by *ordinal within signature bucket*: the
    // k-th vanished finding with a given line-masked identity pairs
    // with the k-th appearing one, both in canonical order. With two
    // byte-identical clone findings in one file (clone groups make
    // this reachable) a first-match scan over a shared key could
    // cross-pair them; ordinal pairing keeps each pure line shift
    // matched to its own twin and never reports it introduced+fixed.
    // Masked keys are computed once per finding, not once per probe.
    let mut buckets: HashMap<String, VecDeque<usize>> = HashMap::new();
    for (i, g) in introduced.iter().enumerate() {
        buckets.entry(line_masked(g)).or_default().push_back(i);
    }
    let mut intro_slots: Vec<Option<Finding>> = introduced.into_iter().map(Some).collect();
    let mut moved = Vec::new();
    let mut fixed = Vec::new();
    for f in gone {
        let slot = buckets
            .get_mut(&line_masked(&f))
            .and_then(|bucket| bucket.pop_front());
        match slot {
            Some(i) => moved.push((f, intro_slots[i].take().expect("each slot pairs once"))),
            None => fixed.push(f),
        }
    }
    let introduced = intro_slots.into_iter().flatten().collect();
    (introduced, fixed, moved)
}

/// Sweeps revision B's findings for unfixed clones of each fixed
/// finding, reading seed sources from revision A (where the bug still
/// exists) and candidate sources from revision B.
pub fn sweep_left_behind(
    fixed: &[Finding],
    project_a: &Project,
    project_b: &Project,
    findings_b: &[Finding],
    kb: &ApiKb,
) -> Vec<LeftBehind> {
    let source_in = |p: &Project, path: &str| -> Option<String> {
        p.units()
            .iter()
            .find(|u| u.path == path)
            .map(|u| u.text.clone())
    };
    let mut out = Vec::new();
    for origin in fixed {
        let Some(seed_src) = source_in(project_a, &origin.file) else {
            continue;
        };
        let Some(template) = abstract_template(origin, &seed_src, kb) else {
            continue;
        };
        let matches = sweep(&template, findings_b, kb, |path| source_in(project_b, path));
        out.push(LeftBehind {
            origin: origin.clone(),
            matches,
        });
    }
    out
}

/// Options for [`diff_audit`].
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Run the left-behind sweep on fixed findings (the default).
    pub sweep: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions { sweep: true }
    }
}

/// Computes the full delta between two finding lists, optionally
/// sweeping for left-behind clones. `project_a` is `None` when no
/// revision-A sources exist (e.g. the daemon's very first audit):
/// the delta is still exact, only the sweep is skipped.
pub fn diff_delta(
    findings_a: &[Finding],
    findings_b: &[Finding],
    project_a: Option<&Project>,
    project_b: &Project,
    kb: &ApiKb,
    run_sweep: bool,
) -> DiffDelta {
    let (introduced, fixed, moved) = diff_findings(findings_a, findings_b);
    let left_behind = match (run_sweep, project_a) {
        (true, Some(pa)) => sweep_left_behind(&fixed, pa, project_b, findings_b, kb),
        _ => Vec::new(),
    };
    DiffDelta {
        introduced,
        fixed,
        moved,
        left_behind,
    }
}

/// Audits two in-memory revisions through one shared cache and
/// computes the findings delta.
pub fn diff_projects(
    project_a: &Project,
    project_b: &Project,
    config: &AuditConfig,
    cache: &mut AuditCache,
    opts: &DiffOptions,
) -> DiffReport {
    let report_a = audit_with_cache(project_a, config, cache);
    let report_b = audit_with_cache(project_b, config, cache);
    let delta = diff_delta(
        &report_a.findings,
        &report_b.findings,
        Some(project_a),
        project_b,
        &report_b.kb,
        opts.sweep,
    );
    DiffReport {
        delta,
        report_a,
        report_b,
    }
}

/// Audits two on-disk revision roots — the `refminer diff` CLI entry
/// point. Only an unreadable root is an error.
pub fn diff_audit(
    root_a: &Path,
    root_b: &Path,
    config: &AuditConfig,
    cache: &mut AuditCache,
    opts: &DiffOptions,
) -> io::Result<DiffReport> {
    let project_a = Project::scan(root_a)?;
    let project_b = Project::scan(root_b)?;
    Ok(diff_projects(&project_a, &project_b, config, cache, opts))
}

/// Renders the delta as JSONL lines (no trailing newlines), grouped
/// `introduced` → `fixed` → `moved` → `left_behind`. The `finding`
/// objects are the exact [`render_finding_line`] serializations, so
/// extracting them reproduces the set difference of two full `--json`
/// runs byte for byte.
pub fn render_diff_lines(d: &DiffDelta) -> Vec<String> {
    let mut out = Vec::new();
    for f in &d.introduced {
        out.push(
            obj([
                ("delta", Value::Str("introduced".to_string())),
                ("finding", f.to_json()),
            ])
            .to_string(),
        );
    }
    for f in &d.fixed {
        out.push(
            obj([
                ("delta", Value::Str("fixed".to_string())),
                ("finding", f.to_json()),
            ])
            .to_string(),
        );
    }
    for (from, to) in &d.moved {
        out.push(
            obj([
                ("delta", Value::Str("moved".to_string())),
                ("from", from.to_json()),
                ("finding", to.to_json()),
            ])
            .to_string(),
        );
    }
    for lb in &d.left_behind {
        for m in &lb.matches {
            out.push(
                obj([
                    ("delta", Value::Str("left_behind".to_string())),
                    ("origin", lb.origin.to_json()),
                    ("score", m.score.to_json()),
                    ("finding", m.finding.to_json()),
                ])
                .to_string(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_checkers::{AntiPattern, EngineId, Impact};

    fn finding_at(line: u32) -> Finding {
        Finding {
            pattern: AntiPattern::P1,
            impact: Impact::Leak,
            file: "drivers/clones/cg0_unit0.c".to_string(),
            function: "cg0_site0".to_string(),
            line,
            api: "of_find_compatible_node".to_string(),
            object: Some("np".to_string()),
            message: "missing of_node_put on the error path".to_string(),
            feasibility: Default::default(),
            checkers: vec!["return_error_no_put".to_string()],
            engines: vec![EngineId::Template],
        }
    }

    /// Two byte-identical findings in one file (same function, same
    /// API, different lines only) shifted down by a pure edit must
    /// both classify as `moved` — never cross-pair into a spurious
    /// introduced+fixed pair.
    #[test]
    fn identical_twins_shift_as_two_moves() {
        let a = vec![finding_at(10), finding_at(50)];
        let b = vec![finding_at(12), finding_at(52)];
        let (introduced, fixed, moved) = diff_findings(&a, &b);
        assert!(introduced.is_empty(), "pure shift introduced nothing");
        assert!(fixed.is_empty(), "pure shift fixed nothing");
        let pairs: Vec<(u32, u32)> = moved.iter().map(|(f, g)| (f.line, g.line)).collect();
        assert_eq!(pairs, vec![(10, 12), (50, 52)], "ordinal pairing per twin");
    }

    /// When one twin is fixed and the other shifts, exactly one move
    /// and one fix come back, and the pairing stays ordinal.
    #[test]
    fn fixed_twin_does_not_steal_the_survivors_move() {
        let a = vec![finding_at(10), finding_at(50)];
        let b = vec![finding_at(52)];
        let (introduced, fixed, moved) = diff_findings(&a, &b);
        assert!(introduced.is_empty());
        assert_eq!(fixed.len(), 1);
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].1.line, 52);
    }

    /// Findings that differ in anything but the line never pair as
    /// moves, even at identical lines.
    #[test]
    fn different_identity_is_introduced_plus_fixed() {
        let mut other = finding_at(10);
        other.function = "cg0_site1".to_string();
        let a = vec![finding_at(10)];
        let b = vec![other];
        let (introduced, fixed, moved) = diff_findings(&a, &b);
        assert!(moved.is_empty());
        assert_eq!(introduced.len(), 1);
        assert_eq!(fixed.len(), 1);
    }
}

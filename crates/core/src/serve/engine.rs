//! The resident audit engine behind `refminer serve`.
//!
//! One worker thread owns the [`AuditCache`] and runs audits off a
//! *bounded* request queue; everything else — queries, status, the
//! socket threads, the watcher — only touches the engine through a
//! clonable [`EngineHandle`]. The robustness contract:
//!
//! - **Backpressure**: the queue holds at most
//!   [`ServeConfig::queue_capacity`] jobs. A full queue sheds the
//!   request immediately with an `overloaded` error instead of
//!   buffering unbounded work.
//! - **Deadlines**: every audit request runs under a
//!   [`CancelToken`] whose deadline defaults to
//!   [`super::protocol::DEFAULT_DEADLINE_MS`]. The waiter never blocks
//!   past the deadline, and the token cancels the in-flight audit
//!   cooperatively at the next unit boundary.
//! - **Degraded serving**: findings live in an immutable [`Snapshot`]
//!   behind an atomic `Arc` swap. Queries always answer from the last
//!   consistent snapshot — a running, failing or cancelled re-audit is
//!   invisible to readers; a snapshot is replaced only by a complete
//!   newer one.
//! - **Bounded retries**: transient scan errors (which the
//!   fault-injection harness produces on purpose) retry with
//!   exponential backoff a fixed number of times, then fail the job —
//!   never an infinite retry loop.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use refminer_checkers::{AntiPattern, Feasibility, Finding};
use refminer_json::{obj, ToJson, Value};
use refminer_trace::TraceHandle;

use super::protocol::{ErrorKind, Method, QueryFilter, Request, Response, DEFAULT_DEADLINE_MS};
use super::render::{render_diagnostics_line, render_finding_line, render_unit_diagnostic};
use crate::audit::{audit_cancellable, AuditConfig, AuditReport};
use crate::cache::{AuditCache, CacheLoadOutcome};
use crate::cancel::{CancelReason, CancelToken};
use crate::diff::{diff_delta, render_diff_lines};
use crate::fixcheck::{fixcheck_project, render_fixcheck_lines};
use crate::project::{Project, ScanOptions};
use crate::{UnitDiagnostic, UnitErrorKind, UnitOutcome};

/// Configuration for a resident engine.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The source tree the daemon audits.
    pub root: PathBuf,
    /// Audit configuration (jobs, limits, discovery, …).
    pub audit: AuditConfig,
    /// Scan limits.
    pub scan: ScanOptions,
    /// Where the audit cache persists; `None` keeps it in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Bounded queue size; a full queue sheds with `overloaded`.
    pub queue_capacity: usize,
    /// Deadline for audit/reaudit requests that don't set one.
    pub default_deadline_ms: u64,
    /// Bounded retries for transient scan errors before a job fails.
    pub scan_retries: u32,
    /// Initial backoff between scan retries; doubles per retry.
    pub retry_backoff_ms: u64,
    /// Fault-harness hook: stall this long (cancellably) before each
    /// audit job, so tests can deterministically fill the queue and
    /// trip deadlines. `0` in production.
    pub inject_audit_delay_ms: u64,
    /// Trace recorder shared by every audit the engine runs.
    pub trace: TraceHandle,
}

impl ServeConfig {
    /// A config with production defaults for `root`.
    pub fn new(root: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            root: root.into(),
            audit: AuditConfig::default(),
            scan: ScanOptions::default(),
            cache_dir: None,
            queue_capacity: 8,
            default_deadline_ms: DEFAULT_DEADLINE_MS,
            scan_retries: 3,
            retry_backoff_ms: 25,
            inject_audit_delay_ms: 0,
            trace: TraceHandle::disabled(),
        }
    }
}

/// One consistent, immutable view of the audited tree: the findings
/// plus their prerendered JSON lines — the exact bytes the one-shot
/// CLI's `--json` mode would print for the same tree, so `query`
/// output can be diffed against it.
#[derive(Debug, Default)]
pub struct Snapshot {
    /// Monotonic audit generation; 0 until the first audit lands.
    pub revision: u64,
    /// All findings, canonical order.
    pub findings: Vec<Finding>,
    /// `findings[i]` rendered as its JSONL line, index-parallel.
    pub lines: Vec<String>,
    /// The trailing diagnostics line, present exactly when the audit
    /// was not clean (same rule as the CLI).
    pub diagnostics_line: Option<String>,
    /// Files audited.
    pub files: usize,
    /// Functions analyzed.
    pub functions: usize,
}

impl Snapshot {
    fn from_report(revision: u64, report: &AuditReport) -> Snapshot {
        Snapshot {
            revision,
            lines: report.findings.iter().map(render_finding_line).collect(),
            diagnostics_line: render_diagnostics_line(&report.diagnostics),
            findings: report.findings.clone(),
            files: report.files,
            functions: report.functions,
        }
    }
}

/// What an audit job is asked to cover.
#[derive(Debug, Clone)]
enum JobKind {
    /// The whole tree.
    Full,
    /// The whole tree, responding with only the findings delta against
    /// the previous snapshot (plus left-behind clone sweeps).
    Diff,
    /// A targeted re-audit after changes to the named files.
    Files(Vec<String>),
    /// A fixcheck pass: audit the tree, reverse-apply the unified
    /// diff to audit the pre-fix tree too, and report what the fix
    /// left behind.
    Fixcheck(String),
}

/// How a job ended.
#[derive(Debug)]
enum JobOutcome {
    Done {
        revision: u64,
        findings: usize,
        files: usize,
        functions: usize,
        /// Files named by a reaudit that no longer exist: diagnosed,
        /// not retried (deletion is a fact, not a transient fault).
        removed: Vec<UnitDiagnostic>,
    },
    /// An `auditdiff` job: the delta against the previous snapshot,
    /// prerendered as the same JSONL lines `refminer diff --json`
    /// prints.
    DiffDone {
        revision: u64,
        introduced: usize,
        fixed: usize,
        moved: usize,
        left_behind: usize,
        lines: Vec<String>,
    },
    /// A `fixcheck` job: the incomplete-fix report, prerendered as the
    /// same JSONL lines `refminer fixcheck --json` prints.
    FixcheckDone {
        revision: u64,
        fixed: usize,
        introduced: usize,
        incomplete: usize,
        clean: bool,
        lines: Vec<String>,
    },
    Cancelled(CancelReason),
    /// The request itself was invalid (e.g. a malformed or
    /// inapplicable fix diff) — a client error, not an engine fault.
    Rejected(String),
    Failed(String),
}

struct Job {
    kind: JobKind,
    cancel: CancelToken,
    done: Mutex<Option<JobOutcome>>,
    cond: Condvar,
}

impl Job {
    fn new(kind: JobKind, cancel: CancelToken) -> Arc<Job> {
        Arc::new(Job {
            kind,
            cancel,
            done: Mutex::new(None),
            cond: Condvar::new(),
        })
    }

    fn deliver(&self, outcome: JobOutcome) {
        *self.done.lock().unwrap() = Some(outcome);
        self.cond.notify_all();
    }
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    queries: AtomicU64,
    sheds: AtomicU64,
    deadline_misses: AtomicU64,
    audits_ok: AtomicU64,
    audits_cancelled: AtomicU64,
    audits_failed: AtomicU64,
    scan_retries: AtomicU64,
    watch_triggers: AtomicU64,
    queue_peak: AtomicU64,
    cache_save_failures: AtomicU64,
    cache_quarantined: AtomicU64,
    files_removed: AtomicU64,
}

struct Shared {
    cfg: ServeConfig,
    snapshot: Mutex<Arc<Snapshot>>,
    queue: Mutex<VecDeque<Arc<Job>>>,
    queue_cond: Condvar,
    stop: AtomicBool,
    auditing: AtomicBool,
    /// Token of the audit currently running, so shutdown can cancel it.
    current: Mutex<Option<CancelToken>>,
    counters: Counters,
}

/// The resident engine: owns the worker thread. Dropping (or calling
/// [`Engine::shutdown`]) stops the worker and cancels any in-flight
/// audit.
pub struct Engine {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl Engine {
    /// Starts the worker and enqueues the initial whole-tree audit.
    /// Returns immediately; poll [`EngineHandle::wait_for_revision`]
    /// (or `status`) for readiness.
    pub fn start(cfg: ServeConfig) -> Engine {
        let shared = Arc::new(Shared {
            cfg,
            snapshot: Mutex::new(Arc::new(Snapshot::default())),
            queue: Mutex::new(VecDeque::new()),
            queue_cond: Condvar::new(),
            stop: AtomicBool::new(false),
            auditing: AtomicBool::new(false),
            current: Mutex::new(None),
            counters: Counters::default(),
        });
        // The warm-up audit runs under the default deadline like any
        // request: it's nobody's request, but an unbounded warm-up
        // means one hung scan (a stalled NFS mount, an injected stall
        // fault) blocks the worker before it serves a single job. An
        // expired warm-up just leaves revision 0; the next audit or
        // watch trigger retries from a healthy worker.
        let warmup_deadline = Duration::from_millis(shared.cfg.default_deadline_ms);
        shared.queue.lock().unwrap().push_back(Job::new(
            JobKind::Full,
            CancelToken::with_timeout(warmup_deadline),
        ));
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::spawn(move || worker_loop(worker_shared));
        Engine {
            shared,
            worker: Some(worker),
        }
    }

    /// A clonable handle for request dispatch.
    pub fn handle(&self) -> EngineHandle {
        EngineHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stops the worker: cancels the in-flight audit, fails queued
    /// jobs, joins the thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.begin_stop();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Shared {
    fn begin_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.current.lock().unwrap().as_ref() {
            t.cancel();
        }
        self.queue_cond.notify_all();
    }
}

/// Clonable dispatch handle; every transport (TCP, Unix socket, tests,
/// the watcher) goes through [`EngineHandle::request`].
#[derive(Clone)]
pub struct EngineHandle {
    shared: Arc<Shared>,
}

impl EngineHandle {
    /// Dispatches one request and blocks until its response is ready —
    /// never longer than the request's deadline.
    pub fn request(&self, req: &Request) -> Response {
        self.shared.counters.requests.fetch_add(1, Ordering::SeqCst);
        match &req.method {
            Method::Query(filter) => self.query(req.id, filter),
            Method::Status => Response::ok(req.id, self.status_value()),
            Method::Shutdown => {
                self.shared.begin_stop();
                Response::ok(req.id, obj([("stopping", true.into())]))
            }
            Method::Audit => self.run_audit_job(req, JobKind::Full),
            Method::AuditDiff => self.run_audit_job(req, JobKind::Diff),
            Method::Reaudit { files } => self.run_audit_job(req, JobKind::Files(files.clone())),
            Method::Fixcheck { diff } => self.run_audit_job(req, JobKind::Fixcheck(diff.clone())),
        }
    }

    /// Whether the engine is stopping/stopped.
    pub fn is_stopped(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// The audited tree root.
    pub fn root(&self) -> PathBuf {
        self.shared.cfg.root.clone()
    }

    /// The current snapshot revision.
    pub fn revision(&self) -> u64 {
        self.shared.snapshot.lock().unwrap().revision
    }

    /// Polls until the snapshot reaches `min` or `timeout` passes.
    pub fn wait_for_revision(&self, min: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.revision() >= min {
                return true;
            }
            if Instant::now() >= deadline || self.is_stopped() {
                return self.revision() >= min;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Watcher entry point: enqueue a whole-tree re-audit without
    /// waiting for it. A full queue is fine — the change is picked up
    /// by the next poll. Returns whether the job was enqueued.
    pub(super) fn enqueue_watch_audit(&self) -> bool {
        self.shared
            .counters
            .watch_triggers
            .fetch_add(1, Ordering::SeqCst);
        self.enqueue(Job::new(JobKind::Full, CancelToken::new()))
            .is_ok()
    }

    /// Watcher bookkeeping for a transient scan failure during polling.
    pub(super) fn note_scan_retry(&self) {
        self.shared
            .counters
            .scan_retries
            .fetch_add(1, Ordering::SeqCst);
    }

    fn enqueue(&self, job: Arc<Job>) -> Result<(), ErrorKind> {
        if self.is_stopped() {
            return Err(ErrorKind::ShuttingDown);
        }
        let mut q = self.shared.queue.lock().unwrap();
        if q.len() >= self.shared.cfg.queue_capacity {
            self.shared.counters.sheds.fetch_add(1, Ordering::SeqCst);
            return Err(ErrorKind::Overloaded);
        }
        q.push_back(job);
        let depth = q.len() as u64;
        self.shared
            .counters
            .queue_peak
            .fetch_max(depth, Ordering::SeqCst);
        self.shared.cfg.trace.add_max("serve.queue.peak", depth);
        self.shared.queue_cond.notify_one();
        Ok(())
    }

    fn run_audit_job(&self, req: &Request, kind: JobKind) -> Response {
        let deadline_ms = req
            .deadline_ms
            .unwrap_or(self.shared.cfg.default_deadline_ms);
        let deadline = Instant::now() + Duration::from_millis(deadline_ms);
        let cancel = CancelToken::with_deadline(deadline);
        let job = Job::new(kind, cancel);
        if let Err(kind) = self.enqueue(Arc::clone(&job)) {
            let msg = match kind {
                ErrorKind::Overloaded => format!(
                    "request queue full ({} deep); retry later",
                    self.shared.cfg.queue_capacity
                ),
                _ => "daemon is shutting down".to_string(),
            };
            return Response::err(req.id, kind, msg);
        }
        // Wait for the worker, but never past the deadline: a stuck or
        // slow audit turns into a clean deadline error here while the
        // token cancels the work itself at its next unit boundary.
        let mut done = job.done.lock().unwrap();
        loop {
            if let Some(outcome) = done.take() {
                return self.render_outcome(req.id, outcome);
            }
            let now = Instant::now();
            if now >= deadline {
                self.shared
                    .counters
                    .deadline_misses
                    .fetch_add(1, Ordering::SeqCst);
                return Response::err(
                    req.id,
                    ErrorKind::DeadlineExceeded,
                    format!("deadline of {deadline_ms}ms exceeded"),
                );
            }
            let (guard, _) = job
                .cond
                .wait_timeout(done, (deadline - now).min(Duration::from_millis(50)))
                .unwrap();
            done = guard;
        }
    }

    fn render_outcome(&self, id: u64, outcome: JobOutcome) -> Response {
        match outcome {
            JobOutcome::Done {
                revision,
                findings,
                files,
                functions,
                removed,
            } => {
                let mut members = vec![
                    ("revision".to_string(), revision.to_json()),
                    ("findings".to_string(), findings.to_json()),
                    ("files".to_string(), files.to_json()),
                    ("functions".to_string(), functions.to_json()),
                ];
                if !removed.is_empty() {
                    members.push((
                        "removed".to_string(),
                        Value::Arr(removed.iter().map(render_unit_diagnostic).collect()),
                    ));
                }
                Response::ok(id, Value::Obj(members))
            }
            JobOutcome::DiffDone {
                revision,
                introduced,
                fixed,
                moved,
                left_behind,
                lines,
            } => Response::ok(
                id,
                obj([
                    ("revision", revision.to_json()),
                    ("introduced", introduced.to_json()),
                    ("fixed", fixed.to_json()),
                    ("moved", moved.to_json()),
                    ("left_behind", left_behind.to_json()),
                    (
                        "lines",
                        Value::Arr(lines.iter().map(|l| l.as_str().into()).collect()),
                    ),
                ]),
            ),
            JobOutcome::FixcheckDone {
                revision,
                fixed,
                introduced,
                incomplete,
                clean,
                lines,
            } => Response::ok(
                id,
                obj([
                    ("revision", revision.to_json()),
                    ("fixed", fixed.to_json()),
                    ("introduced", introduced.to_json()),
                    ("incomplete", incomplete.to_json()),
                    ("clean", clean.into()),
                    (
                        "lines",
                        Value::Arr(lines.iter().map(|l| l.as_str().into()).collect()),
                    ),
                ]),
            ),
            JobOutcome::Cancelled(reason) => {
                let kind = match reason {
                    CancelReason::DeadlineExceeded => {
                        self.shared
                            .counters
                            .deadline_misses
                            .fetch_add(1, Ordering::SeqCst);
                        ErrorKind::DeadlineExceeded
                    }
                    CancelReason::Explicit => ErrorKind::Cancelled,
                };
                Response::err(id, kind, format!("audit {}", reason.name()))
            }
            JobOutcome::Rejected(msg) => Response::err(id, ErrorKind::BadRequest, msg),
            JobOutcome::Failed(msg) => Response::err(id, ErrorKind::Internal, msg),
        }
    }

    fn query(&self, id: u64, filter: &QueryFilter) -> Response {
        self.shared.counters.queries.fetch_add(1, Ordering::SeqCst);
        let pattern = match &filter.pattern {
            Some(p) => match AntiPattern::all()
                .into_iter()
                .find(|ap| ap.id().eq_ignore_ascii_case(p))
            {
                Some(ap) => Some(ap),
                None => {
                    return Response::err(
                        id,
                        ErrorKind::BadRequest,
                        format!("unknown pattern `{p}`"),
                    )
                }
            },
            None => None,
        };
        let verdict = match &filter.verdict {
            Some(v) => match Feasibility::from_name(v) {
                Some(f) => Some(f),
                None => {
                    return Response::err(
                        id,
                        ErrorKind::BadRequest,
                        format!("unknown verdict `{v}`"),
                    )
                }
            },
            None => None,
        };
        let subsystem = filter
            .subsystem
            .as_deref()
            .map(|s| s.trim_end_matches('/').to_string());
        // Clone the Arc, drop the lock: the query reads a consistent
        // snapshot even while the worker swaps in a newer one.
        let snap = Arc::clone(&self.shared.snapshot.lock().unwrap());
        let mut lines: Vec<Value> = Vec::new();
        for (f, line) in snap.findings.iter().zip(&snap.lines) {
            if let Some(p) = pattern {
                if f.pattern != p {
                    continue;
                }
            }
            if let Some(v) = verdict {
                if f.feasibility != v {
                    continue;
                }
            }
            if let Some(prefix) = &subsystem {
                if f.file != *prefix && !f.file.starts_with(&format!("{prefix}/")) {
                    continue;
                }
            }
            lines.push(line.as_str().into());
        }
        let total = lines.len();
        let mut members = vec![
            ("revision".to_string(), snap.revision.to_json()),
            ("total".to_string(), total.to_json()),
            ("lines".to_string(), Value::Arr(lines)),
        ];
        // The diagnostics line belongs to the whole-tree view only; a
        // filtered slice would misattribute tree-wide degradation.
        if filter.is_empty() {
            if let Some(d) = &snap.diagnostics_line {
                members.push(("diagnostics".to_string(), d.as_str().into()));
            }
        }
        Response::ok(id, Value::Obj(members))
    }

    fn status_value(&self) -> Value {
        let c = &self.shared.counters;
        let snap = Arc::clone(&self.shared.snapshot.lock().unwrap());
        let queue_depth = self.shared.queue.lock().unwrap().len();
        obj([
            ("revision", snap.revision.to_json()),
            ("findings", snap.findings.len().to_json()),
            ("files", snap.files.to_json()),
            (
                "auditing",
                self.shared.auditing.load(Ordering::SeqCst).into(),
            ),
            ("queue_depth", queue_depth.to_json()),
            ("queue_peak", c.queue_peak.load(Ordering::SeqCst).to_json()),
            ("requests", c.requests.load(Ordering::SeqCst).to_json()),
            ("queries", c.queries.load(Ordering::SeqCst).to_json()),
            ("sheds", c.sheds.load(Ordering::SeqCst).to_json()),
            (
                "deadline_misses",
                c.deadline_misses.load(Ordering::SeqCst).to_json(),
            ),
            ("audits_ok", c.audits_ok.load(Ordering::SeqCst).to_json()),
            (
                "audits_cancelled",
                c.audits_cancelled.load(Ordering::SeqCst).to_json(),
            ),
            (
                "audits_failed",
                c.audits_failed.load(Ordering::SeqCst).to_json(),
            ),
            (
                "scan_retries",
                c.scan_retries.load(Ordering::SeqCst).to_json(),
            ),
            (
                "watch_triggers",
                c.watch_triggers.load(Ordering::SeqCst).to_json(),
            ),
            (
                "cache_save_failures",
                c.cache_save_failures.load(Ordering::SeqCst).to_json(),
            ),
            (
                "cache_quarantined",
                c.cache_quarantined.load(Ordering::SeqCst).to_json(),
            ),
            (
                "files_removed",
                c.files_removed.load(Ordering::SeqCst).to_json(),
            ),
        ])
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut cache = match &shared.cfg.cache_dir {
        Some(dir) => AuditCache::with_dir(dir),
        None => AuditCache::new(),
    };
    // A corrupt persisted cache was quarantined aside and the daemon
    // starts cold; surface that in status rather than on stderr.
    if matches!(cache.load_outcome(), CacheLoadOutcome::Quarantined(_)) {
        shared.counters.cache_quarantined.store(1, Ordering::SeqCst);
    }
    let mut revision: u64 = 0;
    // The last successfully-audited tree, kept so an `auditdiff` job
    // can read revision-A sources for its left-behind clone sweep.
    let mut last_project: Option<Project> = None;
    'outer: loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    break 'outer;
                }
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = shared.queue_cond.wait(q).unwrap();
            }
        };
        *shared.current.lock().unwrap() = Some(job.cancel.clone());
        shared.auditing.store(true, Ordering::SeqCst);
        let outcome = run_job(&shared, &mut cache, &mut revision, &mut last_project, &job);
        shared.auditing.store(false, Ordering::SeqCst);
        *shared.current.lock().unwrap() = None;
        job.deliver(outcome);
    }
    // Fail queued jobs explicitly so their waiters return now rather
    // than at their deadlines.
    let drained: Vec<Arc<Job>> = shared.queue.lock().unwrap().drain(..).collect();
    for job in drained {
        job.deliver(JobOutcome::Cancelled(CancelReason::Explicit));
    }
}

fn run_job(
    shared: &Shared,
    cache: &mut AuditCache,
    revision: &mut u64,
    last_project: &mut Option<Project>,
    job: &Job,
) -> JobOutcome {
    let cfg = &shared.cfg;
    let counters = &shared.counters;
    if let Err(c) = job.cancel.check() {
        counters.audits_cancelled.fetch_add(1, Ordering::SeqCst);
        return JobOutcome::Cancelled(c.reason);
    }
    // Fault-harness stall, in cancellable slices.
    let mut stall = cfg.inject_audit_delay_ms;
    while stall > 0 {
        if let Err(c) = job.cancel.check() {
            counters.audits_cancelled.fetch_add(1, Ordering::SeqCst);
            return JobOutcome::Cancelled(c.reason);
        }
        let step = stall.min(5);
        std::thread::sleep(Duration::from_millis(step));
        stall -= step;
    }
    // A reaudit naming a file that has vanished is a *fact to report*,
    // not a fault to retry: diagnose it and audit what remains.
    let mut removed: Vec<UnitDiagnostic> = Vec::new();
    if let JobKind::Files(files) = &job.kind {
        for f in files {
            if !cfg.root.join(f).exists() {
                counters.files_removed.fetch_add(1, Ordering::SeqCst);
                removed.push(UnitDiagnostic {
                    path: f.clone(),
                    outcome: UnitOutcome::Skipped,
                    errors: vec![UnitErrorKind::Io],
                    detail: "file removed between change notification and re-audit".to_string(),
                });
            }
        }
    }
    // Transient scan errors retry with bounded exponential backoff.
    let mut backoff = cfg.retry_backoff_ms.max(1);
    let mut attempt: u32 = 0;
    let project = loop {
        if let Err(c) = job.cancel.check() {
            counters.audits_cancelled.fetch_add(1, Ordering::SeqCst);
            return JobOutcome::Cancelled(c.reason);
        }
        match Project::scan_with(&cfg.root, &cfg.scan) {
            Ok(p) => break p,
            Err(e) => {
                if attempt >= cfg.scan_retries {
                    counters.audits_failed.fetch_add(1, Ordering::SeqCst);
                    return JobOutcome::Failed(format!("scan failed after {attempt} retries: {e}"));
                }
                attempt += 1;
                counters.scan_retries.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(backoff));
                backoff = (backoff * 2).min(1_000);
            }
        }
    };
    // A fixcheck job audits both sides of the fix itself (through the
    // same shared cache, so only the diffed units re-parse); its diff
    // errors are the client's fault and map to `bad_request`.
    if let JobKind::Fixcheck(diff_text) = &job.kind {
        return match fixcheck_project(&project, diff_text, &cfg.audit, cache) {
            Ok(fr) => {
                *revision += 1;
                let snap = Arc::new(Snapshot::from_report(*revision, &fr.report));
                *shared.snapshot.lock().unwrap() = Arc::clone(&snap);
                if cfg.cache_dir.is_some() && cache.save().is_err() {
                    counters.cache_save_failures.fetch_add(1, Ordering::SeqCst);
                }
                counters.audits_ok.fetch_add(1, Ordering::SeqCst);
                *last_project = Some(project);
                JobOutcome::FixcheckDone {
                    revision: snap.revision,
                    fixed: fr.fixed.len(),
                    introduced: fr.introduced.len(),
                    incomplete: fr.incomplete_total(),
                    clean: fr.is_clean(),
                    lines: render_fixcheck_lines(&fr),
                }
            }
            Err(msg) => JobOutcome::Rejected(msg),
        };
    }
    match audit_cancellable(&project, &cfg.audit, cache, &cfg.trace, &job.cancel) {
        Ok(report) => {
            *revision += 1;
            let snap = Arc::new(Snapshot::from_report(*revision, &report));
            // The swap is the only mutation readers can observe, and
            // it is atomic: a query sees the old complete snapshot or
            // the new complete snapshot, never a mix. For a diff job
            // the displaced snapshot *is* revision A.
            let prev = {
                let mut guard = shared.snapshot.lock().unwrap();
                std::mem::replace(&mut *guard, Arc::clone(&snap))
            };
            if cfg.cache_dir.is_some() {
                // A failed save (disk full, injected fault) degrades
                // persistence, not serving: the snapshot already
                // swapped, and the atomic tmp+rename protocol means a
                // torn save can't corrupt the existing cache file.
                if cache.save().is_err() {
                    counters.cache_save_failures.fetch_add(1, Ordering::SeqCst);
                }
            }
            counters.audits_ok.fetch_add(1, Ordering::SeqCst);
            let outcome = match &job.kind {
                JobKind::Diff => {
                    let delta = diff_delta(
                        &prev.findings,
                        &report.findings,
                        last_project.as_ref(),
                        &project,
                        &report.kb,
                        true,
                    );
                    JobOutcome::DiffDone {
                        revision: snap.revision,
                        introduced: delta.introduced.len(),
                        fixed: delta.fixed.len(),
                        moved: delta.moved.len(),
                        left_behind: delta.left_behind_total(),
                        lines: render_diff_lines(&delta),
                    }
                }
                _ => JobOutcome::Done {
                    revision: snap.revision,
                    findings: snap.findings.len(),
                    files: snap.files,
                    functions: snap.functions,
                    removed,
                },
            };
            *last_project = Some(project);
            outcome
        }
        Err(c) => {
            counters.audits_cancelled.fetch_add(1, Ordering::SeqCst);
            JobOutcome::Cancelled(c.reason)
        }
    }
}

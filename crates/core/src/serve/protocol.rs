//! The daemon's wire protocol: line-delimited JSON-RPC.
//!
//! One request per line, one response per line, over TCP or a Unix
//! socket. Requests carry an `id` the response echoes, a `method`, and
//! an optional `params` object:
//!
//! ```text
//! {"id":1,"method":"audit","params":{"deadline_ms":5000}}
//! {"id":2,"method":"reaudit","params":{"files":["drivers/a/a.c"]}}
//! {"id":3,"method":"query","params":{"subsystem":"drivers","pattern":"P1"}}
//! {"id":4,"method":"status"}
//! {"id":5,"method":"shutdown"}
//! {"id":6,"method":"auditdiff"}
//! {"id":7,"method":"fixcheck","params":{"diff":"--- a/f.c\n+++ b/f.c\n…"}}
//! ```
//!
//! Responses are `{"id":N,"ok":true,"result":{…}}` on success and
//! `{"id":N,"ok":false,"error":{"kind":"…","message":"…"}}` on
//! failure. The error `kind` is machine-matchable: backpressure sheds
//! as `overloaded`, a missed deadline as `deadline_exceeded` — clients
//! are expected to branch on it, not parse prose.

use refminer_json::{obj, ToJson, Value};

/// Deadline applied to audit/reaudit requests that don't set one.
pub const DEFAULT_DEADLINE_MS: u64 = 30_000;

/// Filter parameters for the `query` method. All fields optional;
/// empty means "everything in the snapshot".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryFilter {
    /// Path-prefix filter, e.g. `drivers/net`.
    pub subsystem: Option<String>,
    /// Anti-pattern id filter, e.g. `P1`.
    pub pattern: Option<String>,
    /// Feasibility verdict filter: `infeasible`, `assumed` or `proven`.
    pub verdict: Option<String>,
}

impl QueryFilter {
    /// `true` when no filter is set (the full-snapshot query).
    pub fn is_empty(&self) -> bool {
        self.subsystem.is_none() && self.pattern.is_none() && self.verdict.is_none()
    }
}

/// A decoded request method with its parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Method {
    /// Re-audit the whole tree.
    Audit,
    /// Re-audit the whole tree and return only the findings delta
    /// against the previous snapshot (introduced/fixed/moved, plus
    /// left-behind clone sweeps of fixed findings) — the CI-bot mode.
    AuditDiff,
    /// Re-audit after changes to the named files (project-relative).
    Reaudit {
        /// The changed files the client knows about.
        files: Vec<String>,
    },
    /// Check a fix diff for incomplete-fix clones against the current
    /// tree: infer the anti-pattern/API template the diff repairs,
    /// re-audit, and report sibling sites the fix left unfixed.
    Fixcheck {
        /// The unified fix diff text (the commit being checked).
        diff: String,
    },
    /// Read findings from the current snapshot.
    Query(QueryFilter),
    /// Daemon health and counters.
    Status,
    /// Stop the daemon.
    Shutdown,
}

/// One decoded request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// The method and its parameters.
    pub method: Method,
    /// Per-request deadline override for audit/reaudit.
    pub deadline_ms: Option<u64>,
}

/// Machine-matchable failure categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The bounded request queue is full; the request was shed. Retry
    /// later — the daemon is deliberately not buffering unbounded work.
    Overloaded,
    /// The request's deadline passed before its audit finished.
    DeadlineExceeded,
    /// The request's audit was cancelled (e.g. daemon shutdown).
    Cancelled,
    /// The request line did not decode, or a parameter was invalid.
    BadRequest,
    /// The audit itself failed (e.g. the tree became unscannable).
    Internal,
    /// The daemon is stopping and accepts no new audit work.
    ShuttingDown,
}

impl ErrorKind {
    /// Stable lower-snake name on the wire.
    pub fn name(&self) -> &'static str {
        match self {
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Internal => "internal",
            ErrorKind::ShuttingDown => "shutting_down",
        }
    }
}

/// One response line, ready to serialize.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success with a method-specific result object.
    Ok {
        /// Echo of the request id.
        id: u64,
        /// The method-specific payload.
        result: Value,
    },
    /// Failure with a machine-matchable kind.
    Err {
        /// Echo of the request id.
        id: u64,
        /// The failure category.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Success constructor.
    pub fn ok(id: u64, result: Value) -> Response {
        Response::Ok { id, result }
    }

    /// Failure constructor.
    pub fn err(id: u64, kind: ErrorKind, message: impl Into<String>) -> Response {
        Response::Err {
            id,
            kind,
            message: message.into(),
        }
    }

    /// Whether this is a success response.
    pub fn is_ok(&self) -> bool {
        matches!(self, Response::Ok { .. })
    }

    /// Serializes to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Response::Ok { id, result } => obj([
                ("id", id.to_json()),
                ("ok", true.into()),
                ("result", result.clone()),
            ])
            .to_string(),
            Response::Err { id, kind, message } => obj([
                ("id", id.to_json()),
                ("ok", false.into()),
                (
                    "error",
                    obj([
                        ("kind", kind.name().into()),
                        ("message", message.as_str().into()),
                    ]),
                ),
            ])
            .to_string(),
        }
    }
}

/// Decodes one request line. Errors are human-readable and become
/// `bad_request` responses.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Value::parse(line).map_err(|e| format!("malformed request: {e}"))?;
    let id = v.get("id").and_then(Value::as_u64).unwrap_or(0);
    let method = v
        .get("method")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing `method`".to_string())?;
    let params = v.get("params");
    let get_str = |key: &str| -> Option<String> {
        params
            .and_then(|p| p.get(key))
            .and_then(Value::as_str)
            .map(str::to_string)
    };
    let deadline_ms = params
        .and_then(|p| p.get("deadline_ms"))
        .and_then(Value::as_u64);
    let method = match method {
        "audit" => Method::Audit,
        "auditdiff" => Method::AuditDiff,
        "reaudit" => {
            let files = params
                .and_then(|p| p.get("files"))
                .and_then(Value::as_array)
                .ok_or_else(|| "reaudit needs a `files` array".to_string())?
                .iter()
                .map(|f| {
                    f.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "`files` entries must be strings".to_string())
                })
                .collect::<Result<Vec<String>, String>>()?;
            if files.is_empty() {
                return Err("reaudit needs at least one file".to_string());
            }
            Method::Reaudit { files }
        }
        "fixcheck" => Method::Fixcheck {
            diff: get_str("diff").ok_or_else(|| "fixcheck needs a `diff` string".to_string())?,
        },
        "query" => Method::Query(QueryFilter {
            subsystem: get_str("subsystem"),
            pattern: get_str("pattern"),
            verdict: get_str("verdict"),
        }),
        "status" => Method::Status,
        "shutdown" => Method::Shutdown,
        other => return Err(format!("unknown method `{other}`")),
    };
    Ok(Request {
        id,
        method,
        deadline_ms,
    })
}

/// Encodes a request as one wire line (no trailing newline) — the
/// client-side inverse of [`parse_request`].
pub fn encode_request(req: &Request) -> String {
    let mut params: Vec<(String, Value)> = Vec::new();
    let method = match &req.method {
        Method::Audit => "audit",
        Method::AuditDiff => "auditdiff",
        Method::Reaudit { files } => {
            params.push(("files".to_string(), files.to_json()));
            "reaudit"
        }
        Method::Fixcheck { diff } => {
            params.push(("diff".to_string(), diff.as_str().into()));
            "fixcheck"
        }
        Method::Query(f) => {
            if let Some(s) = &f.subsystem {
                params.push(("subsystem".to_string(), s.as_str().into()));
            }
            if let Some(p) = &f.pattern {
                params.push(("pattern".to_string(), p.as_str().into()));
            }
            if let Some(vd) = &f.verdict {
                params.push(("verdict".to_string(), vd.as_str().into()));
            }
            "query"
        }
        Method::Status => "status",
        Method::Shutdown => "shutdown",
    };
    if let Some(d) = req.deadline_ms {
        params.push(("deadline_ms".to_string(), d.to_json()));
    }
    let mut members = vec![
        ("id".to_string(), req.id.to_json()),
        ("method".to_string(), method.into()),
    ];
    if !params.is_empty() {
        members.push(("params".to_string(), Value::Obj(params)));
    }
    Value::Obj(members).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_requests() {
        let r = parse_request(r#"{"id":7,"method":"status"}"#).unwrap();
        assert_eq!(r.id, 7);
        assert_eq!(r.method, Method::Status);
        assert_eq!(r.deadline_ms, None);
    }

    #[test]
    fn parses_params() {
        let r = parse_request(
            r#"{"id":1,"method":"reaudit","params":{"files":["a.c","b.c"],"deadline_ms":250}}"#,
        )
        .unwrap();
        assert_eq!(
            r.method,
            Method::Reaudit {
                files: vec!["a.c".to_string(), "b.c".to_string()]
            }
        );
        assert_eq!(r.deadline_ms, Some(250));

        let q = parse_request(r#"{"id":2,"method":"query","params":{"pattern":"P1"}}"#).unwrap();
        match q.method {
            Method::Query(f) => {
                assert_eq!(f.pattern.as_deref(), Some("P1"));
                assert!(!f.is_empty());
            }
            other => panic!("unexpected method {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(parse_request("{not json").is_err());
        assert!(parse_request(r#"{"id":1}"#).is_err());
        assert!(parse_request(r#"{"id":1,"method":"fly"}"#).is_err());
        assert!(parse_request(r#"{"id":1,"method":"reaudit"}"#).is_err());
        assert!(parse_request(r#"{"id":1,"method":"reaudit","params":{"files":[]}}"#).is_err());
        assert!(parse_request(r#"{"id":1,"method":"reaudit","params":{"files":[3]}}"#).is_err());
        assert!(parse_request(r#"{"id":1,"method":"fixcheck"}"#).is_err());
        assert!(parse_request(r#"{"id":1,"method":"fixcheck","params":{"diff":7}}"#).is_err());
    }

    #[test]
    fn parses_fixcheck() {
        let r = parse_request(
            r#"{"id":9,"method":"fixcheck","params":{"diff":"--- a/x.c\n+++ b/x.c\n"}}"#,
        )
        .unwrap();
        assert_eq!(
            r.method,
            Method::Fixcheck {
                diff: "--- a/x.c\n+++ b/x.c\n".to_string()
            }
        );
    }

    #[test]
    fn encode_round_trips() {
        let reqs = [
            Request {
                id: 1,
                method: Method::Audit,
                deadline_ms: Some(100),
            },
            Request {
                id: 2,
                method: Method::Reaudit {
                    files: vec!["x.c".to_string()],
                },
                deadline_ms: None,
            },
            Request {
                id: 3,
                method: Method::Query(QueryFilter {
                    subsystem: Some("drivers".to_string()),
                    pattern: None,
                    verdict: Some("assumed".to_string()),
                }),
                deadline_ms: None,
            },
            Request {
                id: 4,
                method: Method::Shutdown,
                deadline_ms: None,
            },
            Request {
                id: 5,
                method: Method::AuditDiff,
                deadline_ms: Some(900),
            },
            Request {
                id: 6,
                method: Method::Fixcheck {
                    diff: "--- a/x.c\n+++ b/x.c\n@@ -1,2 +1,3 @@\n+\tput(np);\n".to_string(),
                },
                deadline_ms: Some(400),
            },
        ];
        for r in reqs {
            assert_eq!(parse_request(&encode_request(&r)).unwrap(), r);
        }
    }

    #[test]
    fn responses_serialize_stably() {
        let ok = Response::ok(3, obj([("revision", 1u64.to_json())]));
        assert_eq!(
            ok.to_line(),
            r#"{"id":3,"ok":true,"result":{"revision":1}}"#
        );
        let err = Response::err(4, ErrorKind::Overloaded, "queue full");
        assert_eq!(
            err.to_line(),
            r#"{"id":4,"ok":false,"error":{"kind":"overloaded","message":"queue full"}}"#
        );
        assert!(ok.is_ok());
        assert!(!err.is_ok());
    }
}

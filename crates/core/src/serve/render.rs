//! The one JSONL rendering used by both the one-shot CLI (`--json`)
//! and the daemon's snapshots.
//!
//! Byte-identity between `refminer --json <tree>` and `refminer rpc …
//! query` is a hard guarantee the fault-injection soak asserts; it
//! holds because both paths call these functions — there is no second
//! serializer to drift.

use refminer_checkers::Finding;
use refminer_json::{obj, ToJson, Value};

use crate::audit::{AuditDiagnostics, UnitDiagnostic};

/// One finding as its JSONL line (no trailing newline).
pub fn render_finding_line(f: &Finding) -> String {
    f.to_json().to_string()
}

/// One unit diagnostic as a JSON object value.
pub fn render_unit_diagnostic(u: &UnitDiagnostic) -> Value {
    obj([
        ("path", Value::Str(u.path.clone())),
        ("outcome", Value::Str(u.outcome.name().to_string())),
        (
            "errors",
            Value::Arr(
                u.errors
                    .iter()
                    .map(|e| Value::Str(e.name().to_string()))
                    .collect(),
            ),
        ),
        ("detail", Value::Str(u.detail.clone())),
    ])
}

/// The trailing diagnostics line, present exactly when the audit was
/// not clean — its presence is itself the signal.
pub fn render_diagnostics_line(d: &AuditDiagnostics) -> Option<String> {
    if d.is_clean() {
        return None;
    }
    let units: Vec<Value> = d.units.iter().map(render_unit_diagnostic).collect();
    let line = obj([(
        "diagnostics",
        obj([
            ("ok", Value::Num(d.ok as f64)),
            ("degraded", Value::Num(d.degraded as f64)),
            ("skipped", Value::Num(d.skipped as f64)),
            ("units", Value::Arr(units)),
        ]),
    )]);
    Some(line.to_string())
}

//! `--watch`: re-audit when the tree changes.
//!
//! A polling watcher (no OS-specific notify APIs, keeping the
//! workspace dependency-free) fingerprints the tree — every entry's
//! path, size and mtime — and, when the fingerprint moves, *debounces*
//! until it holds still before enqueueing one whole-tree re-audit
//! through the engine's normal bounded queue. Per-unit cache
//! invalidation makes that re-audit cost proportional to what actually
//! changed.
//!
//! Robustness: fingerprinting goes through the fault-injection seam,
//! and a transient scan error backs off exponentially (capped) instead
//! of spinning; a full queue just means the change is picked up on the
//! next poll. Neither can wedge the watcher.

use std::path::Path;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

use super::engine::EngineHandle;

/// Watcher tuning.
#[derive(Debug, Clone)]
pub struct WatchOptions {
    /// How often the tree is fingerprinted.
    pub poll_ms: u64,
    /// How long the fingerprint must hold still after a change before
    /// a re-audit is enqueued (absorbs multi-file save bursts).
    pub debounce_ms: u64,
    /// Backoff cap for transient fingerprint errors.
    pub max_backoff_ms: u64,
}

impl Default for WatchOptions {
    fn default() -> Self {
        WatchOptions {
            poll_ms: 300,
            debounce_ms: 150,
            max_backoff_ms: 5_000,
        }
    }
}

/// Spawns the watcher thread; it exits when the engine stops.
pub(super) fn spawn(handle: EngineHandle, opts: WatchOptions) -> JoinHandle<()> {
    std::thread::spawn(move || watch_loop(handle, opts))
}

fn watch_loop(handle: EngineHandle, opts: WatchOptions) {
    let root = handle.root();
    let poll = Duration::from_millis(opts.poll_ms.max(1));
    let mut backoff = Duration::from_millis(opts.poll_ms.max(1));
    let mut last: Option<u64> = None;
    while !handle.is_stopped() {
        match fingerprint_tree(&root) {
            Err(_) => {
                // Transient (possibly injected) scan fault: back off,
                // bounded, and keep the previous fingerprint.
                handle.note_scan_retry();
                sleep_unless_stopped(&handle, backoff);
                backoff = (backoff * 2).min(Duration::from_millis(opts.max_backoff_ms.max(1)));
                continue;
            }
            Ok(fp) => {
                backoff = Duration::from_millis(opts.poll_ms.max(1));
                match last {
                    None => last = Some(fp),
                    Some(prev) if prev != fp => {
                        // Debounce: wait for the fingerprint to settle
                        // so one save burst becomes one re-audit.
                        let mut settled = fp;
                        loop {
                            sleep_unless_stopped(&handle, Duration::from_millis(opts.debounce_ms));
                            if handle.is_stopped() {
                                return;
                            }
                            match fingerprint_tree(&root) {
                                Ok(next) if next == settled => break,
                                Ok(next) => settled = next,
                                Err(_) => {
                                    handle.note_scan_retry();
                                    break;
                                }
                            }
                        }
                        last = Some(settled);
                        handle.enqueue_watch_audit();
                    }
                    Some(_) => {}
                }
            }
        }
        sleep_unless_stopped(&handle, poll);
    }
}

/// Sleeps in short slices so shutdown isn't delayed by a poll period.
fn sleep_unless_stopped(handle: &EngineHandle, total: Duration) {
    let deadline = Instant::now() + total;
    while !handle.is_stopped() {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(20)));
    }
}

/// Order-independent-free fingerprint of the tree: a hash over every
/// entry's path, size and mtime, walked in sorted order through the
/// fault-injection seam.
fn fingerprint_tree(root: &Path) -> std::io::Result<u64> {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<std::path::PathBuf> = Vec::new();
        for entry in refminer_faultio::read_dir(&dir)? {
            entries.push(entry?.path());
        }
        entries.sort();
        for path in entries {
            let meta = refminer_faultio::metadata(&path)?;
            h = fnv_str(h, &path.to_string_lossy());
            if meta.is_dir() {
                stack.push(path);
                continue;
            }
            h = fnv_u64(h, meta.len());
            let mtime = meta
                .modified()
                .ok()
                .and_then(|m| m.duration_since(SystemTime::UNIX_EPOCH).ok())
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            h = fnv_u64(h, mtime);
        }
    }
    Ok(h)
}

fn fnv_str(mut h: u64, s: &str) -> u64 {
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("refminer-watch-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fingerprint_tracks_content_changes() {
        let dir = temp_dir("fp");
        std::fs::write(dir.join("a.c"), "int a;\n").unwrap();
        let fp1 = fingerprint_tree(&dir).unwrap();
        assert_eq!(fp1, fingerprint_tree(&dir).unwrap());
        // Adding a file moves the fingerprint; size is part of it, so
        // even same-mtime rewrites of different length register.
        std::fs::write(dir.join("b.c"), "int b;\n").unwrap();
        let fp2 = fingerprint_tree(&dir).unwrap();
        assert_ne!(fp1, fp2);
        std::fs::write(dir.join("b.c"), "int bbbb;\n").unwrap();
        assert_ne!(fp2, fingerprint_tree(&dir).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_errors_on_missing_root() {
        assert!(fingerprint_tree(Path::new("/nonexistent/refminer-watch")).is_err());
    }
}

//! `refminer serve` — the resident audit daemon.
//!
//! Holds the [`crate::Project`] scan, knowledge base and all four
//! audit-cache layers hot in one process and answers line-delimited
//! JSON-RPC (see [`protocol`]) over TCP and, on Unix, a Unix-domain
//! socket. The [`engine`] implements the robustness contract
//! (deadlines, backpressure, degraded-mode serving); [`watch`] adds
//! `--watch` re-auditing; [`render`] is the single JSONL serializer
//! shared with the one-shot CLI so `query` output is byte-identical to
//! `refminer --json` over the same tree.

mod engine;
pub mod protocol;
mod render;
mod watch;

pub use engine::{Engine, EngineHandle, ServeConfig, Snapshot};
pub use render::{render_diagnostics_line, render_finding_line, render_unit_diagnostic};
pub use watch::WatchOptions;

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use protocol::{ErrorKind, Response};

/// Transport/runtime options for [`run_serve`], next to the engine's
/// [`ServeConfig`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// TCP listen address; port 0 picks a free port. The daemon prints
    /// `listening on <addr>` once bound.
    pub listen: String,
    /// Optional Unix-domain socket path (ignored off Unix).
    pub socket: Option<PathBuf>,
    /// Watch the tree and re-audit on change.
    pub watch: Option<WatchOptions>,
    /// Write the trace log here on shutdown (when the config's trace
    /// handle records).
    pub trace_path: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            listen: "127.0.0.1:0".to_string(),
            socket: None,
            watch: None,
            trace_path: None,
        }
    }
}

/// Runs the daemon until a `shutdown` request (or listener error).
pub fn run_serve(cfg: ServeConfig, opts: &ServeOptions) -> io::Result<()> {
    let trace = cfg.trace.clone();
    let mut engine = Engine::start(cfg);
    let handle = engine.handle();

    let listener = TcpListener::bind(&opts.listen)?;
    listener.set_nonblocking(true)?;
    println!("listening on {}", listener.local_addr()?);
    io::stdout().flush()?;

    #[cfg(unix)]
    if let Some(path) = &opts.socket {
        let _ = std::fs::remove_file(path);
        let unix = std::os::unix::net::UnixListener::bind(path)?;
        unix.set_nonblocking(true)?;
        println!("socket {}", path.display());
        io::stdout().flush()?;
        let h = handle.clone();
        std::thread::spawn(move || accept_loop_unix(unix, h));
    }

    let watcher = opts.watch.clone().map(|w| watch::spawn(handle.clone(), w));

    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let h = handle.clone();
                std::thread::spawn(move || serve_tcp_conn(stream, h));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if handle.is_stopped() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                engine.shutdown();
                return Err(e);
            }
        }
    }

    engine.shutdown();
    if let Some(w) = watcher {
        let _ = w.join();
    }
    if let (Some(path), Some(log)) = (&opts.trace_path, trace.finish()) {
        let _ = std::fs::write(path, log.to_jsonl());
    }
    #[cfg(unix)]
    if let Some(path) = &opts.socket {
        let _ = std::fs::remove_file(path);
    }
    Ok(())
}

fn serve_tcp_conn(stream: TcpStream, handle: EngineHandle) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    serve_lines(reader, stream, &handle);
}

#[cfg(unix)]
fn accept_loop_unix(listener: std::os::unix::net::UnixListener, handle: EngineHandle) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let h = handle.clone();
                std::thread::spawn(move || {
                    let reader = match stream.try_clone() {
                        Ok(s) => BufReader::new(s),
                        Err(_) => return,
                    };
                    serve_lines(reader, stream, &h);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if handle.is_stopped() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => return,
        }
    }
}

/// One connection: requests in, responses out, one line each. Any
/// decode failure answers `bad_request` and keeps the connection.
fn serve_lines<R: BufRead, W: Write>(reader: R, mut writer: W, handle: &EngineHandle) {
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = match protocol::parse_request(&line) {
            Ok(req) => handle.request(&req),
            Err(msg) => Response::err(0, ErrorKind::BadRequest, msg),
        };
        let mut out = response.to_line();
        out.push('\n');
        if writer
            .write_all(out.as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
    }
}

/// Client side: one request line to `target`, one response line back.
/// `target` is `host:port` or `unix:/path/to.sock`.
pub fn rpc_roundtrip(target: &str, request_line: &str) -> io::Result<String> {
    #[cfg(unix)]
    if let Some(path) = target.strip_prefix("unix:") {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        return roundtrip_on(&stream, &stream, request_line);
    }
    let stream = TcpStream::connect(target)?;
    roundtrip_on(&stream, &stream, request_line)
}

fn roundtrip_on<R: io::Read, W: Write>(
    reader: R,
    mut writer: W,
    request_line: &str,
) -> io::Result<String> {
    writer.write_all(request_line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut line = String::new();
    BufReader::new(reader).read_line(&mut line)?;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    if line.is_empty() {
        return Err(io::Error::other("connection closed before response"));
    }
    Ok(line)
}

//! Cooperative cancellation for long-running audits.
//!
//! A [`CancelToken`] is a cheap, clonable handle combining an explicit
//! cancel flag with an optional wall-clock deadline. The audit pipeline
//! polls it at *unit boundaries* — once per unit inside each fan-out
//! stage and once between stages — so a cancelled audit stops within
//! one unit's worth of work without ever tearing a unit in half.
//!
//! Cancellation is also *cache-safe*: the pipeline checks the token
//! **before** each cache-put loop, so the cheap placeholder results
//! produced by workers that observed cancellation mid-fan-out are
//! discarded, never persisted. A cancelled audit leaves every cache
//! layer exactly as consistent as it found it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why an audit stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called.
    Explicit,
    /// The deadline attached to the token passed.
    DeadlineExceeded,
}

impl CancelReason {
    /// Stable lower-snake name, used in RPC error payloads.
    pub fn name(&self) -> &'static str {
        match self {
            CancelReason::Explicit => "cancelled",
            CancelReason::DeadlineExceeded => "deadline_exceeded",
        }
    }
}

/// The error a cancellable audit returns when it stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled {
    /// What triggered the stop.
    pub reason: CancelReason,
}

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason {
            CancelReason::Explicit => write!(f, "audit cancelled"),
            CancelReason::DeadlineExceeded => write!(f, "audit deadline exceeded"),
        }
    }
}

impl std::error::Error for Cancelled {}

/// A clonable cancel handle: an explicit flag plus an optional deadline.
///
/// Cloning shares the flag — cancelling any clone cancels them all. The
/// deadline is fixed at construction and carried by value.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that can be cancelled explicitly but has no deadline.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that never cancels — the plain-audit entry points use it.
    pub fn never() -> CancelToken {
        CancelToken::default()
    }

    /// A token that trips once `deadline` passes (and can still be
    /// cancelled explicitly before then).
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Convenience: a deadline `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + timeout)
    }

    /// Trips the explicit flag on this token and every clone of it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has tripped (flag set or deadline passed).
    pub fn is_cancelled(&self) -> bool {
        self.check().is_err()
    }

    /// Poll point: `Ok(())` while live, the reason once tripped. The
    /// explicit flag wins over the deadline when both have tripped.
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.flag.load(Ordering::Acquire) {
            return Err(Cancelled {
                reason: CancelReason::Explicit,
            });
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(Cancelled {
                    reason: CancelReason::DeadlineExceeded,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.check(), Ok(()));
    }

    #[test]
    fn cancel_trips_every_clone() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.check().unwrap_err().reason, CancelReason::Explicit,);
    }

    #[test]
    fn past_deadline_trips_with_deadline_reason() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(
            t.check().unwrap_err().reason,
            CancelReason::DeadlineExceeded,
        );
    }

    #[test]
    fn explicit_cancel_wins_over_deadline() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        t.cancel();
        assert_eq!(t.check().unwrap_err().reason, CancelReason::Explicit);
    }

    #[test]
    fn future_deadline_is_live() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
    }
}

//! Ground-truth evaluation: scoring an audit against a corpus
//! manifest (the Table 4/5 analog for the synthetic tree).
//!
//! The corpus manifest records every injected bug as
//! `(path, function, pattern)` and — when the tree was generated with
//! FP traps — every deliberate non-bug. Scoring is per anti-pattern:
//!
//! - **TP** — an injected bug matched by at least one finding in the
//!   same file and function whose checker set covers the bug's pattern.
//! - **FN** — an injected bug no finding matches.
//! - **FP** — a finding that matches no injected bug, attributed to the
//!   finding's own pattern.
//!
//! Matching goes through the finding's `checkers` list rather than its
//! pattern alone: the report layer merges same-site findings of one
//! root-cause family, so a P7 bug caught by both `DirectFreeChecker`
//! and `ErrorPathChecker` surfaces as a single P5-labelled finding
//! whose checker list still names `DirectFreeChecker`.

use std::collections::BTreeMap;

use refminer_checkers::{AntiPattern, Confidence, EngineId, Finding};
use refminer_corpus::Manifest;
use refminer_json::{obj, ToJson, Value};
use refminer_rcapi::ApiKb;
use refminer_sweep::{abstract_template, sweep};

/// TP/FP/FN counts with the derived metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Injected bugs matched by at least one finding.
    pub tp: usize,
    /// Findings matching no injected bug.
    pub fp: usize,
    /// Injected bugs no finding matched.
    pub missed: usize,
}

impl Counts {
    /// Precision `tp / (tp + fp)`; 1.0 when nothing was reported.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 1.0 when nothing was injected.
    pub fn recall(&self) -> f64 {
        if self.tp + self.missed == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.missed) as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl ToJson for Counts {
    fn to_json(&self) -> Value {
        obj([
            ("tp", self.tp.to_json()),
            ("fp", self.fp.to_json()),
            ("fn", self.missed.to_json()),
            ("precision", self.precision().to_json()),
            ("recall", self.recall().to_json()),
            ("f1", self.f1().to_json()),
        ])
    }
}

/// Per-anti-pattern scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalRow {
    /// The anti-pattern the row scores.
    pub pattern: AntiPattern,
    /// The counts and metrics.
    pub counts: Counts,
}

/// A scored audit.
#[derive(Debug, Clone, Default)]
pub struct EvalReport {
    /// One row per anti-pattern with any activity (a bug injected or a
    /// finding reported), in P1..P9 order.
    pub rows: Vec<EvalRow>,
    /// Counts summed over all patterns.
    pub totals: Counts,
    /// Findings landing on a manifest-recorded FP trap (`bug: false`).
    /// A subset of the FP count; nonzero means the feasibility traps
    /// are biting.
    pub trap_hits: usize,
}

impl ToJson for EvalReport {
    fn to_json(&self) -> Value {
        obj([
            (
                "per_pattern",
                Value::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            obj([
                                ("pattern", r.pattern.to_json()),
                                ("tp", r.counts.tp.to_json()),
                                ("fp", r.counts.fp.to_json()),
                                ("fn", r.counts.missed.to_json()),
                                ("precision", r.counts.precision().to_json()),
                                ("recall", r.counts.recall().to_json()),
                                ("f1", r.counts.f1().to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("totals", self.totals.to_json()),
            ("trap_hits", self.trap_hits.to_json()),
        ])
    }
}

/// The checker that owns each manifest pattern number.
fn checker_name_for(pattern: u8) -> &'static str {
    match pattern {
        1 => "ReturnErrorChecker",
        2 => "ReturnNullChecker",
        3 => "SmartLoopBreakChecker",
        4 => "HiddenApiChecker",
        5 => "ErrorPathChecker",
        6 => "InterUnpairedChecker",
        7 => "DirectFreeChecker",
        8 => "UadChecker",
        9 => "EscapeChecker",
        _ => "",
    }
}

/// The manifest pattern number of an [`AntiPattern`].
fn pattern_num(p: AntiPattern) -> u8 {
    AntiPattern::all()
        .into_iter()
        .position(|q| q == p)
        .map(|i| i as u8 + 1)
        .unwrap_or(0)
}

/// Whether `finding` claims the bug: same file and function, and the
/// bug's pattern is covered by the finding's checker list (or equals
/// the finding's own pattern, for findings predating checker stamping).
fn finding_claims(finding: &Finding, path: &str, function: &str, pattern: u8) -> bool {
    finding.file == path
        && finding.function == function
        && (pattern_num(finding.pattern) == pattern
            || finding
                .checkers
                .iter()
                .any(|c| c == checker_name_for(pattern)))
}

/// Scores `findings` against the manifest's ground truth. See the
/// module docs for the matching rules.
pub fn evaluate(findings: &[Finding], manifest: &Manifest) -> EvalReport {
    let mut per: BTreeMap<AntiPattern, Counts> = BTreeMap::new();

    for bug in &manifest.bugs {
        let Some(pattern) = AntiPattern::all().get(bug.pattern as usize - 1).copied() else {
            continue;
        };
        let hit = findings
            .iter()
            .any(|f| finding_claims(f, &bug.path, &bug.function, bug.pattern));
        let counts = per.entry(pattern).or_default();
        if hit {
            counts.tp += 1;
        } else {
            counts.missed += 1;
        }
    }

    let mut trap_hits = 0usize;
    for f in findings {
        let claims_some_bug = manifest
            .bugs
            .iter()
            .any(|b| finding_claims(f, &b.path, &b.function, b.pattern));
        if claims_some_bug {
            continue;
        }
        per.entry(f.pattern).or_default().fp += 1;
        if manifest
            .fp_traps
            .iter()
            .any(|t| t.path == f.file && t.function == f.function)
        {
            trap_hits += 1;
        }
    }

    let mut totals = Counts::default();
    let rows: Vec<EvalRow> = per
        .into_iter()
        .map(|(pattern, counts)| {
            totals.tp += counts.tp;
            totals.fp += counts.fp;
            totals.missed += counts.missed;
            EvalRow { pattern, counts }
        })
        .collect();

    EvalReport {
        rows,
        totals,
        trap_hits,
    }
}

/// Whether `finding` is attributed to `engine`. Findings predating
/// engine stamping (empty list) read as template findings — the only
/// engine that existed when they were produced.
pub fn finding_attributed(finding: &Finding, engine: EngineId) -> bool {
    finding.engines.contains(&engine)
        || (finding.engines.is_empty() && engine == EngineId::Template)
}

/// The combined score plus one per-engine view and the confidence
/// breakdown — `refminer eval`'s two-engine report.
#[derive(Debug, Clone, Default)]
pub struct EngineEvalReport {
    /// Score over every finding, regardless of attribution.
    pub combined: EvalReport,
    /// Score over each engine's findings alone, in canonical order.
    /// An engine's view keeps a merged finding whenever the engine
    /// contributed to it, so `Corroborated` findings count for both.
    pub per_engine: Vec<(EngineId, EvalReport)>,
    /// How many findings carry each confidence level.
    pub confidence: Vec<(Confidence, usize)>,
}

/// Scores `findings` combined and per engine. The per-engine views
/// filter by attribution and re-run the same matching, so an engine's
/// row answers "what would this engine alone have scored".
pub fn evaluate_engines(findings: &[Finding], manifest: &Manifest) -> EngineEvalReport {
    let combined = evaluate(findings, manifest);
    let per_engine = EngineId::all()
        .into_iter()
        .map(|engine| {
            let view: Vec<Finding> = findings
                .iter()
                .filter(|f| finding_attributed(f, engine))
                .cloned()
                .collect();
            (engine, evaluate(&view, manifest))
        })
        .collect();
    let confidence = [
        Confidence::Corroborated,
        Confidence::TemplateOnly,
        Confidence::DeltaOnly,
    ]
    .into_iter()
    .map(|c| (c, findings.iter().filter(|f| f.confidence() == c).count()))
    .collect();
    EngineEvalReport {
        combined,
        per_engine,
        confidence,
    }
}

impl ToJson for EngineEvalReport {
    fn to_json(&self) -> Value {
        let mut root = match self.combined.to_json() {
            Value::Obj(pairs) => pairs,
            _ => unreachable!("EvalReport serializes to an object"),
        };
        root.push((
            "engines".to_string(),
            Value::Obj(
                self.per_engine
                    .iter()
                    .map(|(e, r)| (e.name().to_string(), r.to_json()))
                    .collect(),
            ),
        ));
        root.push((
            "confidence".to_string(),
            Value::Obj(
                self.confidence
                    .iter()
                    .map(|(c, n)| (c.name().to_string(), n.to_json()))
                    .collect(),
            ),
        ));
        Value::Obj(root)
    }
}

/// Found/missed/spurious counts for the clone sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepCounts {
    /// Injected clone siblings the sweep matched.
    pub found: usize,
    /// Injected clone siblings the sweep did not match.
    pub missed: usize,
    /// Sweep matches naming no injected bug at all (a trap or a clean
    /// function) — the zero-spurious acceptance metric.
    pub spurious: usize,
}

impl SweepCounts {
    /// Clone recall `found / (found + missed)`; 1.0 when the group had
    /// no siblings to find.
    pub fn recall(&self) -> f64 {
        if self.found + self.missed == 0 {
            1.0
        } else {
            self.found as f64 / (self.found + self.missed) as f64
        }
    }

    fn add(&mut self, other: &SweepCounts) {
        self.found += other.found;
        self.missed += other.missed;
        self.spurious += other.spurious;
    }
}

impl ToJson for SweepCounts {
    fn to_json(&self) -> Value {
        obj([
            ("found", self.found.to_json()),
            ("missed", self.missed.to_json()),
            ("spurious", self.spurious.to_json()),
            ("recall", self.recall().to_json()),
        ])
    }
}

/// One clone group's sweep score.
#[derive(Debug, Clone)]
pub struct SweepGroupRow {
    /// The manifest group id (`cg0`, `cg1`, …).
    pub group: String,
    /// The group's anti-pattern.
    pub pattern: AntiPattern,
    /// The group's acquire API.
    pub api: String,
    /// Whether a seed finding existed to sweep from at all.
    pub seeded: bool,
    /// The counts.
    pub counts: SweepCounts,
}

/// `refminer eval --sweep`: sweep scores per clone group, aggregated
/// per pattern family and overall.
#[derive(Debug, Clone, Default)]
pub struct SweepEvalReport {
    /// One row per manifest clone group, in manifest order.
    pub rows: Vec<SweepGroupRow>,
    /// Counts aggregated per pattern family, in P1..P9 order.
    pub per_pattern: Vec<(AntiPattern, SweepCounts)>,
    /// Counts summed over all groups.
    pub totals: SweepCounts,
}

impl ToJson for SweepEvalReport {
    fn to_json(&self) -> Value {
        obj([
            (
                "groups",
                Value::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            let mut members = match r.counts.to_json() {
                                Value::Obj(pairs) => pairs,
                                _ => unreachable!("SweepCounts serializes to an object"),
                            };
                            members.insert(0, ("group".to_string(), r.group.as_str().into()));
                            members.insert(1, ("pattern".to_string(), r.pattern.to_json()));
                            members.insert(2, ("api".to_string(), r.api.as_str().into()));
                            members.insert(3, ("seeded".to_string(), r.seeded.into()));
                            Value::Obj(members)
                        })
                        .collect(),
                ),
            ),
            (
                "per_pattern",
                Value::Obj(
                    self.per_pattern
                        .iter()
                        .map(|(p, c)| (p.id().to_string(), c.to_json()))
                        .collect(),
                ),
            ),
            ("totals", self.totals.to_json()),
        ])
    }
}

/// Scores the sweep engine against the manifest's clone groups.
///
/// For each group, the seed is the first unfixed member a finding
/// lands on (path + function); its template is swept over `findings`
/// and the matches are scored against the group's *other* unfixed
/// members. A match naming any manifest bug — this group's or, for
/// repeated-API shapes, another group's — is never spurious; spurious
/// counts only matches on functions the corpus injected no bug into.
pub fn evaluate_sweep<F: FnMut(&str) -> Option<String>>(
    findings: &[Finding],
    manifest: &Manifest,
    kb: &ApiKb,
    mut source_of: F,
) -> SweepEvalReport {
    let is_injected = |path: &str, function: &str| -> bool {
        manifest
            .bugs
            .iter()
            .any(|b| b.path == path && b.function == function)
    };
    let mut rows = Vec::new();
    for group in &manifest.clone_groups {
        let pattern = AntiPattern::all()
            .get(group.pattern as usize - 1)
            .copied()
            .unwrap_or(AntiPattern::P1);
        let unfixed: Vec<_> = group.members.iter().filter(|m| !m.fixed).collect();
        let seed = unfixed.iter().find_map(|m| {
            findings
                .iter()
                .find(|f| f.file == m.path && f.function == m.function)
                .map(|f| (*m, f))
        });
        let mut counts = SweepCounts::default();
        let seeded = seed.is_some();
        match seed {
            None => {
                // Nothing to sweep from: every sibling is a miss.
                counts.missed = unfixed.len();
            }
            Some((seed_member, seed_finding)) => {
                let matches = source_of(&seed_finding.file)
                    .and_then(|src| abstract_template(seed_finding, &src, kb))
                    .map(|template| sweep(&template, findings, kb, &mut source_of))
                    .unwrap_or_default();
                for m in &unfixed {
                    if m.path == seed_member.path && m.function == seed_member.function {
                        continue;
                    }
                    let hit = matches
                        .iter()
                        .any(|c| c.finding.file == m.path && c.finding.function == m.function);
                    if hit {
                        counts.found += 1;
                    } else {
                        counts.missed += 1;
                    }
                }
                counts.spurious += matches
                    .iter()
                    .filter(|c| !is_injected(&c.finding.file, &c.finding.function))
                    .count();
            }
        }
        rows.push(SweepGroupRow {
            group: group.group.clone(),
            pattern,
            api: group.api.clone(),
            seeded,
            counts,
        });
    }
    let mut per: BTreeMap<AntiPattern, SweepCounts> = BTreeMap::new();
    let mut totals = SweepCounts::default();
    for row in &rows {
        per.entry(row.pattern).or_default().add(&row.counts);
        totals.add(&row.counts);
    }
    SweepEvalReport {
        rows,
        per_pattern: per.into_iter().collect(),
        totals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refminer_checkers::{Feasibility, Impact};
    use refminer_corpus::{FpTrap, InjectedBug};

    fn bug(path: &str, function: &str, pattern: u8) -> InjectedBug {
        InjectedBug {
            path: path.into(),
            function: function.into(),
            pattern,
            api: "x".into(),
            impact: "Leak".into(),
            subsystem: "drivers".into(),
            module: "m".into(),
            inter_unit: false,
        }
    }

    fn finding(path: &str, function: &str, pattern: AntiPattern, checkers: &[&str]) -> Finding {
        Finding {
            pattern,
            impact: Impact::Leak,
            file: path.into(),
            function: function.into(),
            line: 1,
            api: "x".into(),
            object: None,
            message: String::new(),
            feasibility: Feasibility::Assumed,
            checkers: checkers.iter().map(|c| c.to_string()).collect(),
            engines: vec![EngineId::Template],
        }
    }

    #[test]
    fn scores_tp_fp_fn_per_pattern() {
        let mut manifest = Manifest::default();
        manifest.bugs.push(bug("a.c", "f1", 1));
        manifest.bugs.push(bug("a.c", "f2", 1));
        manifest.bugs.push(bug("b.c", "g", 5));
        let findings = vec![
            finding("a.c", "f1", AntiPattern::P1, &["ReturnErrorChecker"]),
            finding("c.c", "h", AntiPattern::P1, &["ReturnErrorChecker"]),
            finding("b.c", "g", AntiPattern::P5, &["ErrorPathChecker"]),
        ];
        let report = evaluate(&findings, &manifest);
        let p1 = report
            .rows
            .iter()
            .find(|r| r.pattern == AntiPattern::P1)
            .unwrap();
        assert_eq!(
            p1.counts,
            Counts {
                tp: 1,
                fp: 1,
                missed: 1
            }
        );
        assert!((p1.counts.precision() - 0.5).abs() < 1e-9);
        assert!((p1.counts.recall() - 0.5).abs() < 1e-9);
        let p5 = report
            .rows
            .iter()
            .find(|r| r.pattern == AntiPattern::P5)
            .unwrap();
        assert_eq!(
            p5.counts,
            Counts {
                tp: 1,
                fp: 0,
                missed: 0
            }
        );
        assert_eq!(
            report.totals,
            Counts {
                tp: 2,
                fp: 1,
                missed: 1
            }
        );
    }

    #[test]
    fn merged_findings_claim_through_checker_list() {
        // A P7 bug surfaced inside a finding the merge relabelled P5:
        // the checker list still claims it.
        let mut manifest = Manifest::default();
        manifest.bugs.push(bug("a.c", "f", 7));
        let findings = vec![finding(
            "a.c",
            "f",
            AntiPattern::P5,
            &["ErrorPathChecker", "DirectFreeChecker"],
        )];
        let report = evaluate(&findings, &manifest);
        assert_eq!(
            report.totals,
            Counts {
                tp: 1,
                fp: 0,
                missed: 0
            }
        );
    }

    #[test]
    fn trap_hits_are_counted() {
        let mut manifest = Manifest::default();
        manifest.fp_traps.push(FpTrap {
            path: "t.c".into(),
            function: "trap".into(),
            pattern: 1,
            kind: "correlated_branch".into(),
        });
        let findings = vec![finding(
            "t.c",
            "trap",
            AntiPattern::P1,
            &["ReturnErrorChecker"],
        )];
        let report = evaluate(&findings, &manifest);
        assert_eq!(report.totals.fp, 1);
        assert_eq!(report.trap_hits, 1);
    }

    /// Parses the report back out of its JSON text, so assertions see
    /// exactly what `refminer eval --json` consumers see.
    fn json_round_trip(report: &EvalReport) -> Value {
        Value::parse(&report.to_json().to_string()).expect("eval report is valid JSON")
    }

    fn totals_metric(v: &Value, key: &str) -> f64 {
        v.get("totals")
            .and_then(|t| t.get(key))
            .and_then(|m| m.as_f64())
            .unwrap_or_else(|| panic!("totals.{key} missing"))
    }

    #[test]
    fn empty_manifest_and_no_findings_score_perfect() {
        // Nothing injected, nothing reported: both denominators are
        // empty, and the convention is 1.0, not NaN or 0/0 panic.
        let report = evaluate(&[], &Manifest::default());
        assert!(report.rows.is_empty());
        assert_eq!(report.totals, Counts::default());
        let v = json_round_trip(&report);
        let rows = v
            .get("per_pattern")
            .and_then(|p| p.as_array())
            .expect("per_pattern array");
        assert!(rows.is_empty(), "no activity → no per-pattern rows");
        assert_eq!(totals_metric(&v, "precision"), 1.0);
        assert_eq!(totals_metric(&v, "recall"), 1.0);
        assert_eq!(totals_metric(&v, "f1"), 1.0);
        assert_eq!(
            v.get("trap_hits").and_then(|t| t.as_u64()),
            Some(0),
            "no traps, no hits"
        );
    }

    #[test]
    fn zero_finding_audit_keeps_precision_but_loses_recall() {
        // A silent audit against a real manifest: precision stays 1.0
        // (nothing wrong was reported), recall collapses to 0.
        let mut manifest = Manifest::default();
        manifest.bugs.push(bug("a.c", "f", 1));
        manifest.bugs.push(bug("b.c", "g", 5));
        let report = evaluate(&[], &manifest);
        let v = json_round_trip(&report);
        assert_eq!(totals_metric(&v, "precision"), 1.0);
        assert_eq!(totals_metric(&v, "recall"), 0.0);
        assert_eq!(totals_metric(&v, "f1"), 0.0);
        let rows = v
            .get("per_pattern")
            .and_then(|p| p.as_array())
            .expect("per_pattern array");
        assert_eq!(rows.len(), 2, "each missed pattern still gets a row");
        for row in rows {
            assert_eq!(row.get("tp").and_then(|n| n.as_u64()), Some(0));
            assert_eq!(row.get("fn").and_then(|n| n.as_u64()), Some(1));
            assert_eq!(row.get("precision").and_then(|p| p.as_f64()), Some(1.0));
            assert_eq!(row.get("recall").and_then(|r| r.as_f64()), Some(0.0));
        }
    }

    #[test]
    fn trap_only_manifest_scores_clean_audit_perfect() {
        // A manifest holding only `bug: false` FP traps injects zero
        // bugs; an audit that stays silent is perfect on both axes.
        let mut manifest = Manifest::default();
        manifest.fp_traps.push(FpTrap {
            path: "t.c".into(),
            function: "trap".into(),
            pattern: 1,
            kind: "correlated_branch".into(),
        });
        let report = evaluate(&[], &manifest);
        assert!(report.rows.is_empty());
        let v = json_round_trip(&report);
        assert_eq!(totals_metric(&v, "precision"), 1.0);
        assert_eq!(totals_metric(&v, "recall"), 1.0);
        assert_eq!(v.get("trap_hits").and_then(|t| t.as_u64()), Some(0));
    }

    #[test]
    fn trap_only_manifest_charges_trap_findings_as_fp() {
        // Same trap-only manifest, but the audit bites: the finding is
        // an FP *and* a trap hit, precision drops to 0, while recall
        // stays 1.0 because nothing injected was missed.
        let mut manifest = Manifest::default();
        manifest.fp_traps.push(FpTrap {
            path: "t.c".into(),
            function: "trap".into(),
            pattern: 1,
            kind: "correlated_branch".into(),
        });
        let findings = vec![finding(
            "t.c",
            "trap",
            AntiPattern::P1,
            &["ReturnErrorChecker"],
        )];
        let v = json_round_trip(&evaluate(&findings, &manifest));
        assert_eq!(totals_metric(&v, "precision"), 0.0);
        assert_eq!(totals_metric(&v, "recall"), 1.0);
        assert_eq!(totals_metric(&v, "f1"), 0.0);
        assert_eq!(v.get("trap_hits").and_then(|t| t.as_u64()), Some(1));
        let rows = v
            .get("per_pattern")
            .and_then(|p| p.as_array())
            .expect("per_pattern array");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("fp").and_then(|n| n.as_u64()), Some(1));
        assert_eq!(
            rows[0].get("recall").and_then(|r| r.as_f64()),
            Some(1.0),
            "nothing injected → per-pattern recall stays 1.0"
        );
    }

    #[test]
    fn per_engine_views_score_independently() {
        // One bug both engines caught (merged, Corroborated), one only
        // the template saw, one delta-only FP: the combined view counts
        // everything, each engine's view only its own work.
        let mut manifest = Manifest::default();
        manifest.bugs.push(bug("a.c", "f", 1));
        manifest.bugs.push(bug("a.c", "g", 5));
        let mut corroborated = finding("a.c", "f", AntiPattern::P1, &["ReturnErrorChecker"]);
        corroborated.engines = vec![EngineId::Template, EngineId::Delta];
        let template_only = finding("a.c", "g", AntiPattern::P5, &["ErrorPathChecker"]);
        let mut delta_fp = finding("z.c", "h", AntiPattern::P5, &["DeltaEngine"]);
        delta_fp.engines = vec![EngineId::Delta];
        let report = evaluate_engines(&[corroborated, template_only, delta_fp], &manifest);

        assert_eq!(
            report.combined.totals,
            Counts {
                tp: 2,
                fp: 1,
                missed: 0
            }
        );
        let by_engine: BTreeMap<EngineId, &EvalReport> =
            report.per_engine.iter().map(|(e, r)| (*e, r)).collect();
        assert_eq!(
            by_engine[&EngineId::Template].totals,
            Counts {
                tp: 2,
                fp: 0,
                missed: 0
            }
        );
        assert_eq!(
            by_engine[&EngineId::Delta].totals,
            Counts {
                tp: 1,
                fp: 1,
                missed: 1
            }
        );
        let conf: BTreeMap<Confidence, usize> = report.confidence.iter().copied().collect();
        assert_eq!(conf[&Confidence::Corroborated], 1);
        assert_eq!(conf[&Confidence::TemplateOnly], 1);
        assert_eq!(conf[&Confidence::DeltaOnly], 1);

        let v = json_round_trip_engines(&report);
        let delta_f1 = v
            .get("engines")
            .and_then(|e| e.get("delta"))
            .and_then(|d| d.get("totals"))
            .and_then(|t| t.get("f1"))
            .and_then(|f| f.as_f64())
            .expect("engines.delta.totals.f1");
        assert!((delta_f1 - 0.5).abs() < 1e-9, "got {delta_f1}");
        assert_eq!(
            v.get("confidence")
                .and_then(|c| c.get("corroborated"))
                .and_then(|n| n.as_u64()),
            Some(1)
        );
    }

    #[test]
    fn legacy_unattributed_findings_count_as_template() {
        let mut manifest = Manifest::default();
        manifest.bugs.push(bug("a.c", "f", 1));
        let mut legacy = finding("a.c", "f", AntiPattern::P1, &["ReturnErrorChecker"]);
        legacy.engines = Vec::new();
        assert!(finding_attributed(&legacy, EngineId::Template));
        assert!(!finding_attributed(&legacy, EngineId::Delta));
        let report = evaluate_engines(&[legacy], &manifest);
        let by_engine: BTreeMap<EngineId, &EvalReport> =
            report.per_engine.iter().map(|(e, r)| (*e, r)).collect();
        assert_eq!(by_engine[&EngineId::Template].totals.tp, 1);
        assert_eq!(by_engine[&EngineId::Delta].totals.missed, 1);
    }

    fn json_round_trip_engines(report: &EngineEvalReport) -> Value {
        Value::parse(&report.to_json().to_string()).expect("engine eval report is valid JSON")
    }

    #[test]
    fn report_serializes_metrics() {
        let mut manifest = Manifest::default();
        manifest.bugs.push(bug("a.c", "f", 1));
        let findings = vec![finding(
            "a.c",
            "f",
            AntiPattern::P1,
            &["ReturnErrorChecker"],
        )];
        let json = evaluate(&findings, &manifest).to_json().to_string();
        assert!(json.contains("\"per_pattern\""));
        assert!(json.contains("\"precision\":1"));
        assert!(json.contains("\"trap_hits\":0"));
    }
}

//! Runs the `scripts/verify.sh` release gate against prebuilt binaries,
//! so the one-shot fmt → clippy → build → test → chaos → trace → serve
//! → diff → bench chain stays wired into the test suite. The cargo-based
//! steps (fmt, clippy, build, test) are skipped because this test
//! already runs under cargo — re-entering it here would recurse.

use std::path::Path;
use std::process::Command;

fn script() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../scripts/verify.sh")
        .canonicalize()
        .expect("scripts/verify.sh exists")
}

#[test]
fn verify_script_chains_chaos_and_bench_to_a_single_pass() {
    let out_file =
        std::env::temp_dir().join(format!("refminer_verify_smoke_{}.json", std::process::id()));
    let eval_file = std::env::temp_dir().join(format!(
        "refminer_verify_smoke_eval_{}.json",
        std::process::id()
    ));
    let out = Command::new("bash")
        .arg(script())
        .env("VERIFY_SKIP", "fmt clippy build test")
        .env("REFMINER_BIN", env!("CARGO_BIN_EXE_refminer"))
        .env("CHAOSGEN_BIN", env!("CARGO_BIN_EXE_chaosgen"))
        .env("HISTGEN_BIN", env!("CARGO_BIN_EXE_histgen"))
        .env("BENCHPIPE_BIN", env!("CARGO_BIN_EXE_benchpipe"))
        .env("BENCH_SCALE", "0.2")
        .env("BENCH_OUT", &out_file)
        .env("BENCH_EVAL_OUT", &eval_file)
        .output()
        .expect("run verify.sh");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "verify.sh failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("verify.sh: [fmt] skipped"),
        "stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("verify.sh: [clippy] skipped"),
        "stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("verify.sh: [build] skipped"),
        "stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("verify.sh: [test] skipped"),
        "stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("verify.sh: [chaos] ok"),
        "stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("verify.sh: [trace] ok"),
        "stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("verify.sh: [serve] ok"),
        "stdout:\n{stdout}"
    );
    assert!(stdout.contains("verify.sh: [diff] ok"), "stdout:\n{stdout}");
    assert!(
        stdout.contains("verify.sh: [bench] ok"),
        "stdout:\n{stdout}"
    );
    assert!(
        stdout.trim_end().ends_with("verify.sh: PASS"),
        "the verdict must be the last line\nstdout:\n{stdout}"
    );
    std::fs::remove_file(&out_file).ok();
    std::fs::remove_file(&eval_file).ok();
}

#[test]
fn verify_script_fails_fast_with_the_step_name() {
    let out = Command::new("bash")
        .arg(script())
        .env(
            "VERIFY_SKIP",
            "fmt clippy build test chaos trace serve diff",
        )
        .env("BENCHPIPE_BIN", "/bin/false")
        .output()
        .expect("run verify.sh");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "a failing step must fail the gate");
    assert!(
        stderr.contains("verify.sh: FAIL (bench)"),
        "stderr:\n{stderr}"
    );
    assert!(!stdout.contains("verify.sh: PASS"), "stdout:\n{stdout}");
}

//! The serve engine's warm-up audit must run under the default
//! deadline like any other job: a stalled scan (an NFS mount that
//! hangs, an injected stall fault) expires the warm-up instead of
//! wedging the worker, and the engine recovers to a healthy audit the
//! moment the I/O unsticks.
//!
//! This lives in its own integration-test binary because the fault
//! plan is process-global: no other test shares the process, so
//! `install`/`clear` cannot race a neighbour's I/O.

use std::time::{Duration, Instant};

use refminer::serve::protocol::{Method, Request, Response};
use refminer::serve::{Engine, ServeConfig};
use refminer_faultio::{FaultOp, FaultPlan};
use refminer_json::Value;

fn write_demo_tree(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "refminer_warmup_stall_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("drivers/demo")).expect("mkdir");
    std::fs::write(
        dir.join("drivers/demo/demo.c"),
        r#"
int demo_probe(struct platform_device *pdev)
{
        struct device_node *np = of_find_node_by_name(NULL, "x");
        if (!np)
                return -ENODEV;
        return 0;
}
"#,
    )
    .expect("write demo");
    dir
}

fn counter(status: &Value, name: &str) -> u64 {
    status.get(name).and_then(Value::as_u64).unwrap_or(0)
}

#[test]
fn stalled_scan_expires_the_warmup_and_the_engine_recovers() {
    let dir = write_demo_tree("scan");

    // Every scan syscall sleeps 80ms, so the warm-up's tree walk needs
    // several hundred ms of wall time against a 40ms deadline. The
    // stall *proceeds* after sleeping — only the deadline, not an I/O
    // error, can stop the job.
    refminer_faultio::install(FaultPlan {
        seed: 1,
        rate: 1,
        ops: vec![FaultOp::Scan, FaultOp::Read],
        max_failures: None,
        torn_write_permille: 0,
        stall_ms: 80,
    });

    let mut cfg = ServeConfig::new(&dir);
    cfg.default_deadline_ms = 40;
    let mut engine = Engine::start(cfg);
    let handle = engine.handle();

    // The warm-up must cancel, not wedge: poll status until the
    // counter moves. Unbounded warm-up (the old behavior) would hold
    // `auditing` through every stalled syscall and then land
    // revision 1 — the assertions below pin both differences.
    let deadline = Instant::now() + Duration::from_secs(30);
    let cancelled = loop {
        let resp = handle.request(&Request {
            id: 1,
            method: Method::Status,
            deadline_ms: None,
        });
        let Response::Ok { result: status, .. } = resp else {
            panic!("status request failed: {resp:?}");
        };
        let n = counter(&status, "audits_cancelled");
        if n >= 1 {
            break n;
        }
        assert!(
            Instant::now() < deadline,
            "warm-up neither finished nor cancelled: {status}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(cancelled >= 1, "stalled warm-up must count as cancelled");
    assert_eq!(
        handle.revision(),
        0,
        "an expired warm-up must not publish a snapshot"
    );

    // Unstick the I/O: the very next audit must succeed from the same
    // worker, no restart involved.
    refminer_faultio::clear();
    let resp = handle.request(&Request {
        id: 2,
        method: Method::Audit,
        deadline_ms: Some(30_000),
    });
    assert!(resp.is_ok(), "post-stall audit failed: {resp:?}");
    assert!(handle.revision() >= 1, "recovered audit must publish");

    engine.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

//! Runs the `scripts/chaos.sh` smoke runner against the prebuilt
//! binaries, so the script stays wired into the test suite.

use std::path::Path;
use std::process::Command;

#[test]
fn chaos_smoke_script_passes() {
    let script = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../scripts/chaos.sh")
        .canonicalize()
        .expect("scripts/chaos.sh exists");
    let out = Command::new("bash")
        .arg(&script)
        .env("REFMINER_BIN", env!("CARGO_BIN_EXE_refminer"))
        .env("CHAOSGEN_BIN", env!("CARGO_BIN_EXE_chaosgen"))
        .output()
        .expect("run chaos.sh");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "chaos.sh failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains("chaos.sh: PASS"), "stdout:\n{stdout}");
}

//! End-to-end tests of the `refminer` command-line binary.

use std::path::PathBuf;
use std::process::Command;

fn write_demo_tree() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "refminer_cli_test_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("drivers/demo")).expect("mkdir");
    std::fs::write(
        dir.join("drivers/demo/demo.c"),
        r#"
int demo_probe(struct platform_device *pdev)
{
        struct device_node *np = of_find_node_by_name(NULL, "x");
        if (!np)
                return -ENODEV;
        return 0;
}
void demo_drop(struct sock *sk)
{
        sock_put(sk);
        sk->sk_err = 0;
}
"#,
    )
    .expect("write demo");
    dir
}

fn refminer() -> Command {
    Command::new(env!("CARGO_BIN_EXE_refminer"))
}

#[test]
fn reports_findings_and_exits_one() {
    let dir = write_demo_tree();
    let out = refminer().arg(&dir).output().expect("run");
    assert_eq!(out.status.code(), Some(1), "findings → exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[P4/Leak]"), "stdout: {stdout}");
    assert!(stdout.contains("[P8/UAF]"), "stdout: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pattern_filter_narrows_output() {
    let dir = write_demo_tree();
    let out = refminer()
        .args(["--pattern", "P8"])
        .arg(&dir)
        .output()
        .expect("run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("P8"));
    assert!(!stdout.contains("P4"), "stdout: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_output_parses() {
    let dir = write_demo_tree();
    let out = refminer().arg("--json").arg(&dir).output().expect("run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut count = 0;
    for line in stdout.lines() {
        let v = refminer_json::Value::parse(line).expect("valid JSON line");
        assert!(v.get("pattern").is_some());
        assert!(v.get("file").is_some());
        count += 1;
    }
    assert_eq!(count, 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn csv_output_has_header_and_rows() {
    let dir = write_demo_tree();
    let out = refminer().arg("--csv").arg(&dir).output().expect("run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines[0], "file,line,pattern,impact,api,function,object");
    assert_eq!(lines.len(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn impact_filter_and_clean_exit() {
    let dir = write_demo_tree();
    // NPD findings do not exist in the demo: exit 0, empty output.
    let out = refminer()
        .args(["--impact", "npd"])
        .arg(&dir)
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(0));
    assert!(out.stdout.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_path_exits_two() {
    let out = refminer()
        .arg("/nonexistent/refminer/path")
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn strict_mode_flags_degraded_units() {
    let dir = write_demo_tree();
    // Add a depth bomb next to the healthy file.
    let bomb = format!(
        "int bomb(void) {{ return {}1{}; }}",
        "(".repeat(3000),
        ")".repeat(3000)
    );
    std::fs::write(dir.join("drivers/demo/bomb.c"), bomb).expect("write bomb");
    let out = refminer().arg("--strict").arg(&dir).output().expect("run");
    assert_eq!(out.status.code(), Some(3), "strict + degraded → exit 3");
    // Without --strict the same tree exits 1 (findings) and the
    // healthy file's findings are intact.
    let out = refminer().arg(&dir).output().expect("run");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[P4/Leak]"), "stdout: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn strict_mode_passes_on_clean_tree() {
    let dir = write_demo_tree();
    let out = refminer().arg("--strict").arg(&dir).output().expect("run");
    assert_eq!(out.status.code(), Some(1), "clean tree keeps findings exit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_diagnostics_line_appears_only_when_dirty() {
    let dir = write_demo_tree();
    let bomb = format!(
        "int bomb(void) {{ return {}1{}; }}",
        "(".repeat(3000),
        ")".repeat(3000)
    );
    std::fs::write(dir.join("drivers/demo/bomb.c"), bomb).expect("write bomb");
    let out = refminer().arg("--json").arg(&dir).output().expect("run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    let last = refminer_json::Value::parse(lines.last().unwrap()).expect("valid JSON");
    let diag = last.get("diagnostics").expect("diagnostics line present");
    let units = diag.get("units").expect("units array");
    let arr = match units {
        refminer_json::Value::Arr(a) => a,
        other => panic!("units not an array: {other:?}"),
    };
    assert!(arr.iter().any(|u| {
        matches!(u.get("path"), Some(refminer_json::Value::Str(p)) if p.ends_with("bomb.c"))
    }));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn max_file_bytes_skips_oversize_files() {
    let dir = write_demo_tree();
    std::fs::write(dir.join("drivers/demo/huge.c"), "int x;\n".repeat(2000)).expect("write huge");
    let out = refminer()
        .args(["--strict", "--max-file-bytes", "4096"])
        .arg(&dir)
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(3), "skipped unit trips strict mode");
    let out = refminer()
        .args(["--max-file-bytes", "1048576"])
        .arg(&dir)
        .output()
        .expect("run");
    assert_eq!(
        out.status.code(),
        Some(1),
        "under the cap nothing is skipped"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_reports_unit_outcomes() {
    let dir = write_demo_tree();
    let out = refminer().arg("--stats").arg(&dir).output().expect("run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("units: 1 ok, 0 degraded, 0 skipped"),
        "stderr: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn jobs_flag_output_is_byte_identical() {
    let dir = write_demo_tree();
    let seq = refminer()
        .args(["--json", "--jobs", "1"])
        .arg(&dir)
        .output()
        .expect("run");
    let par = refminer()
        .args(["--json", "--jobs", "8"])
        .arg(&dir)
        .output()
        .expect("run");
    assert_eq!(seq.status.code(), par.status.code());
    assert_eq!(seq.stdout, par.stdout, "--jobs 8 changed the JSON bytes");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_jobs_value_exits_two() {
    let dir = write_demo_tree();
    let out = refminer()
        .args(["--jobs", "many"])
        .arg(&dir)
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

fn write_fp_trap_tree(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "refminer_eval_test_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let tree = refminer::corpus::generate_tree(&refminer::corpus::TreeConfig {
        scale: 0.1,
        include_tricky: false,
        fp_traps: true,
        ..Default::default()
    });
    tree.write_to(&dir).expect("write tree");
    dir
}

/// Per-pattern (precision, recall) map from an eval report's JSON.
fn metrics(v: &refminer_json::Value) -> Vec<(String, f64, f64)> {
    v.get("per_pattern")
        .and_then(|p| p.as_array())
        .expect("per_pattern array")
        .iter()
        .map(|row| {
            (
                row.get("pattern")
                    .and_then(|p| p.as_str())
                    .unwrap()
                    .to_string(),
                row.get("precision").and_then(|p| p.as_f64()).unwrap(),
                row.get("recall").and_then(|r| r.as_f64()).unwrap(),
            )
        })
        .collect()
}

#[test]
fn eval_feasibility_improves_precision_without_recall_loss() {
    let dir = write_fp_trap_tree("gate");
    let run = |extra: &[&str]| {
        let out = refminer()
            .arg("eval")
            .args(extra)
            .arg("--json")
            .arg(&dir)
            .output()
            .expect("run");
        assert_eq!(out.status.code(), Some(0), "eval exits 0");
        refminer_json::Value::parse(String::from_utf8_lossy(&out.stdout).trim())
            .expect("eval report is JSON")
    };
    let on = run(&[]);
    let off = run(&["--no-feasibility"]);

    let off_traps = off.get("trap_hits").and_then(|t| t.as_u64()).unwrap();
    let on_traps = on.get("trap_hits").and_then(|t| t.as_u64()).unwrap();
    assert!(
        off_traps >= 2,
        "baseline must hit the FP traps, got {off_traps}"
    );
    assert_eq!(on_traps, 0, "feasibility must suppress every trap hit");

    // Strictly better precision on >= 2 patterns, recall never worse.
    // A pattern absent from the feasibility-on report lost all its
    // (false-positive-only) findings: precision went to 1.0.
    let on_rows = metrics(&on);
    let mut improved = 0;
    for (pattern, off_p, off_r) in metrics(&off) {
        let (on_p, on_r) = on_rows
            .iter()
            .find(|(p, _, _)| *p == pattern)
            .map(|(_, p, r)| (*p, *r))
            .unwrap_or((1.0, 1.0));
        assert!(on_r >= off_r, "{pattern}: recall dropped {off_r} -> {on_r}");
        if on_p > off_p {
            improved += 1;
        }
    }
    assert!(
        improved >= 2,
        "precision improved on {improved} pattern(s), expected >= 2"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn eval_reports_per_engine_and_combined_metrics() {
    let dir = write_fp_trap_tree("engines");
    let out = refminer()
        .arg("eval")
        .arg("--json")
        .arg(&dir)
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(0), "eval exits 0");
    let v = refminer_json::Value::parse(String::from_utf8_lossy(&out.stdout).trim())
        .expect("eval report is JSON");

    // Combined metrics keep their schema-1 shape at the top level...
    assert!(v.get("per_pattern").is_some());
    assert!(v.get("trap_hits").is_some());
    // ...and the two-engine split plus confidence histogram ride along.
    let engines = v.get("engines").expect("per-engine sub-reports");
    for e in ["template", "delta"] {
        let f1 = engines
            .get(e)
            .and_then(|s| s.get("totals"))
            .and_then(|t| t.get("f1"))
            .and_then(|f| f.as_f64())
            .unwrap_or_else(|| panic!("missing {e} F1"));
        assert!((0.0..=1.0).contains(&f1));
    }
    let conf = v.get("confidence").expect("confidence histogram");
    let mut total = 0;
    for c in ["corroborated", "template_only", "delta_only"] {
        total += conf
            .get(c)
            .and_then(|n| n.as_u64())
            .unwrap_or_else(|| panic!("missing {c}"));
    }
    assert!(total > 0, "confidence histogram is empty");

    // The text table renders one row per engine plus the histogram.
    let out = refminer().arg("eval").arg(&dir).output().expect("run");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    for needle in ["template", "delta", "confidence:"] {
        assert!(text.contains(needle), "table missing {needle:?}:\n{text}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn eval_empty_manifest_and_clean_tree_score_perfect() {
    // The degenerate eval: no bugs injected, no findings reported.
    // Both metric denominators are empty and the conventions say 1.0,
    // asserted through the same JSON the scoreboard scripts consume.
    let dir = std::env::temp_dir().join(format!(
        "refminer_eval_empty_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("drivers/clean")).expect("mkdir");
    std::fs::write(
        dir.join("drivers/clean/clean.c"),
        "int add(int a, int b)\n{\n        return a + b;\n}\n",
    )
    .expect("write clean");
    std::fs::write(
        dir.join("manifest.json"),
        r#"{"bugs":[],"tricky":[],"clean_functions":1,"fp_traps":[]}"#,
    )
    .expect("manifest");
    let out = refminer()
        .arg("eval")
        .arg("--json")
        .arg(&dir)
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(0), "eval exits 0");
    let v = refminer_json::Value::parse(String::from_utf8_lossy(&out.stdout).trim())
        .expect("eval report is JSON");
    assert!(
        v.get("per_pattern")
            .and_then(|p| p.as_array())
            .expect("per_pattern array")
            .is_empty(),
        "no activity → no rows"
    );
    let totals = v.get("totals").expect("totals");
    assert_eq!(totals.get("precision").and_then(|p| p.as_f64()), Some(1.0));
    assert_eq!(totals.get("recall").and_then(|r| r.as_f64()), Some(1.0));
    assert_eq!(v.get("trap_hits").and_then(|t| t.as_u64()), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn feasibility_json_is_byte_identical_across_jobs_and_cache() {
    let dir = write_fp_trap_tree("bytes");
    let cache_dir = dir.join(".refminer-cache");
    let run = |jobs: &str, cached: bool| {
        let mut cmd = refminer();
        cmd.args(["--json", "--jobs", jobs]);
        if cached {
            cmd.arg("--cache-dir").arg(&cache_dir);
        }
        cmd.arg(&dir).output().expect("run")
    };
    let seq = run("1", false);
    let par = run("8", false);
    assert_eq!(seq.stdout, par.stdout, "--jobs 8 changed the JSON bytes");
    let cold = run("8", true);
    let warm = run("8", true);
    assert_eq!(seq.stdout, cold.stdout, "cold cache changed the JSON bytes");
    assert_eq!(
        cold.stdout, warm.stdout,
        "warm cache changed the JSON bytes"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn only_pattern_runs_a_checker_subset() {
    let dir = write_demo_tree();
    let out = refminer()
        .args(["--only-pattern", "P8"])
        .arg(&dir)
        .output()
        .expect("run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("P8"), "stdout: {stdout}");
    assert!(
        !stdout.contains("P4"),
        "P4 checker should not have run: {stdout}"
    );
    let out = refminer()
        .args(["--only-pattern", "P0"])
        .arg(&dir)
        .output()
        .expect("run");
    assert_eq!(
        out.status.code(),
        Some(2),
        "bad pattern id is a usage error"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn subsystem_filter_narrows_the_audit() {
    let dir = write_demo_tree();
    let hit = refminer()
        .args(["--subsystem", "drivers/demo"])
        .arg(&dir)
        .output()
        .expect("run");
    assert_eq!(hit.status.code(), Some(1), "prefix matches → findings");
    let miss = refminer()
        .args(["--subsystem", "sound"])
        .arg(&dir)
        .output()
        .expect("run");
    assert_eq!(miss.status.code(), Some(0), "prefix misses → clean exit");
    assert!(miss.stdout.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn no_feasibility_restores_infeasible_findings() {
    let dir = std::env::temp_dir().join(format!(
        "refminer_nofeas_test_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("drivers/demo")).expect("mkdir");
    // The correlated branch: `ret` is proven zero at the `if`, so the
    // error return cannot execute and the P1 report is a false alarm.
    std::fs::write(
        dir.join("drivers/demo/corr.c"),
        r#"
int corr_probe(struct device *dev)
{
        int ret = pm_runtime_get_sync(dev);
        ret = 0;
        if (ret)
                return ret;
        pm_runtime_put(dev);
        return 0;
}
"#,
    )
    .expect("write corr");
    let on = refminer().arg(&dir).output().expect("run");
    assert_eq!(on.status.code(), Some(0), "infeasible finding suppressed");
    let off = refminer()
        .arg("--no-feasibility")
        .arg(&dir)
        .output()
        .expect("run");
    assert_eq!(off.status.code(), Some(1), "--no-feasibility restores it");
    let stdout = String::from_utf8_lossy(&off.stdout);
    assert!(stdout.contains("P1"), "stdout: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_dir_warm_run_is_byte_identical_and_hits() {
    let dir = write_demo_tree();
    let cache_dir = dir.join(".refminer-cache");
    let run = || {
        refminer()
            .args(["--json", "--stats", "--cache-dir"])
            .arg(&cache_dir)
            .arg(&dir)
            .output()
            .expect("run")
    };
    let cold = run();
    assert!(
        cache_dir.join(refminer::CACHE_FILE).is_file(),
        "cache file persisted"
    );
    let warm = run();
    assert_eq!(
        cold.stdout, warm.stdout,
        "warm cache changed the JSON bytes"
    );
    let stderr = String::from_utf8_lossy(&warm.stderr);
    assert!(
        stderr.contains("hit rate 100%"),
        "warm run should be all hits: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "refminer_cli_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    dir
}

fn histgen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_histgen"))
}

/// Renders the unified diff between two on-disk revision trees the way
/// a CI bot would hand it to `fixcheck` — via the library's renderer,
/// so the tests don't depend on an external `diff` binary.
fn diff_between(a: &std::path::Path, b: &std::path::Path) -> String {
    let pa = refminer::Project::scan(a).expect("scan rev a");
    let pb = refminer::Project::scan(b).expect("scan rev b");
    let old: std::collections::HashMap<&str, &str> = pa
        .units()
        .iter()
        .map(|u| (u.path.as_str(), u.text.as_str()))
        .collect();
    let mut out = String::new();
    for u in pb.units() {
        let prev = old.get(u.path.as_str()).copied().unwrap_or("");
        if let Some(d) = refminer::render_file_diff(&u.path, prev, &u.text) {
            out.push_str(&d);
        }
    }
    out
}

#[test]
fn fixcheck_nonexistent_root_exits_two() {
    let dir = scratch_dir("fixcheck_noroot");
    let patch = dir.join("fix.patch");
    std::fs::write(
        &patch,
        "--- a/x.c\n+++ b/x.c\n@@ -1 +1 @@\n-int a;\n+int b;\n",
    )
    .unwrap();
    let out = refminer()
        .arg("fixcheck")
        .arg("/nonexistent/refminer/root")
        .arg(&patch)
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("refminer fixcheck:"),
        "wanted a diagnostic, got: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fixcheck_missing_diff_file_exits_two() {
    let dir = write_demo_tree();
    let out = refminer()
        .arg("fixcheck")
        .arg(&dir)
        .arg("/nonexistent/refminer/fix.patch")
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fixcheck_malformed_diff_exits_two_with_diagnostic() {
    let dir = write_demo_tree();
    let patch = dir.join("garbage.patch");
    std::fs::write(&patch, "this is not a unified diff\n").unwrap();
    let out = refminer()
        .arg("fixcheck")
        .arg(&dir)
        .arg(&patch)
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2), "malformed diff must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("refminer fixcheck:"),
        "wanted a parse diagnostic, got: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fixcheck_stale_diff_exits_two_not_panic() {
    // A syntactically fine diff whose context does not match the tree:
    // the reverse-apply must fail with a located diagnostic.
    let dir = write_demo_tree();
    let patch = dir.join("stale.patch");
    std::fs::write(
        &patch,
        "--- a/drivers/demo/demo.c\n+++ b/drivers/demo/demo.c\n\
         @@ -1,2 +1,2 @@\n line that was never there\n-gone\n+also wrong\n",
    )
    .unwrap();
    let out = refminer()
        .arg("fixcheck")
        .arg(&dir)
        .arg(&patch)
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("refminer fixcheck:"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn history_nonexistent_root_exits_two() {
    let out = refminer()
        .arg("history")
        .arg("/nonexistent/refminer/releases")
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("refminer history:"));
}

#[test]
fn history_empty_root_exits_two_with_diagnostic() {
    let dir = scratch_dir("history_empty");
    let out = refminer().arg("history").arg(&dir).output().expect("run");
    assert_eq!(out.status.code(), Some(2), "no revisions must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("refminer history:"),
        "wanted a diagnostic, got: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn histgen_zero_releases_exits_two() {
    let dir = scratch_dir("histgen_zero");
    let out = histgen()
        .args(["--releases", "0"])
        .arg(dir.join("out"))
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--releases"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn histgen_unwritable_outdir_exits_two() {
    // The out path runs through an existing *file*, so every write
    // fails; the tool must diagnose, not panic.
    let dir = scratch_dir("histgen_badout");
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, "not a directory").unwrap();
    let out = histgen()
        .args(["--scale", "0.02"])
        .arg(blocker.join("nested"))
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("histgen:"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fixcheck_cli_reports_the_unfixed_siblings() {
    let dir = scratch_dir("fixcheck_e2e");
    let hist = dir.join("hist");
    let out = histgen()
        .args(["--scale", "0.02", "--clone-groups", "1"])
        .arg(&hist)
        .output()
        .expect("run histgen");
    assert!(out.status.success(), "histgen failed");
    let patch = dir.join("fix.patch");
    std::fs::write(
        &patch,
        diff_between(&hist.join("rev00"), &hist.join("rev01")),
    )
    .unwrap();

    let out = refminer()
        .args(["fixcheck", "--json"])
        .arg(hist.join("rev01"))
        .arg(&patch)
        .output()
        .expect("run fixcheck");
    assert_eq!(out.status.code(), Some(1), "incomplete fix must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let summary = stdout
        .lines()
        .last()
        .and_then(|l| refminer_json::Value::parse(l).ok())
        .expect("summary line");
    assert_eq!(
        summary
            .get("fixcheck")
            .and_then(|v| v.as_str().map(String::from)),
        Some("summary".to_string())
    );
    assert_eq!(
        summary.get("clean").and_then(refminer_json::Value::as_bool),
        Some(false)
    );
    assert!(
        summary
            .get("incomplete")
            .and_then(refminer_json::Value::as_u64)
            .unwrap_or(0)
            >= 1,
        "the partial fix must leave siblings behind: {summary}"
    );
    // The neutral last commit must come back clean with exit 0.
    let revs: Vec<_> = std::fs::read_dir(&hist)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .map(|e| e.path())
        .collect();
    let mut revs = revs;
    revs.sort();
    let (prev, last) = (&revs[revs.len() - 2], &revs[revs.len() - 1]);
    std::fs::write(&patch, diff_between(prev, last)).unwrap();
    let out = refminer()
        .arg("fixcheck")
        .arg(last)
        .arg(&patch)
        .output()
        .expect("run fixcheck neutral");
    assert_eq!(out.status.code(), Some(0), "neutral diff must be clean");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn eval_fixcheck_has_full_recall_and_zero_spurious() {
    let dir = scratch_dir("fixcheck_eval");
    let hist = dir.join("hist");
    let out = histgen()
        .args(["--scale", "0.02", "--clone-groups", "2"])
        .arg(&hist)
        .output()
        .expect("run histgen");
    assert!(out.status.success(), "histgen failed");
    let out = refminer()
        .args(["eval", "--fixcheck", "--json"])
        .arg(&hist)
        .output()
        .expect("run eval");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v = refminer_json::Value::parse(String::from_utf8_lossy(&out.stdout).trim())
        .expect("eval json");
    let totals = v.get("totals").expect("totals");
    let num = |k: &str| {
        totals
            .get(k)
            .and_then(refminer_json::Value::as_u64)
            .unwrap()
    };
    assert!(num("found") >= 1, "ground truth must be non-empty: {v}");
    assert_eq!(num("missed"), 0, "recall must be total: {v}");
    assert_eq!(num("spurious"), 0, "no spurious incompletes: {v}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn history_json_is_byte_identical_across_jobs_and_cache() {
    let dir = scratch_dir("history_bytes");
    let rels = dir.join("rels");
    let out = histgen()
        .args(["--releases", "3", "--scale", "0.02"])
        .arg(&rels)
        .output()
        .expect("run histgen");
    assert!(out.status.success(), "histgen failed");
    let cache = dir.join(".cache");
    let run = |extra: &[&str]| {
        let out = refminer()
            .args(["history", "--json"])
            .args(extra)
            .arg(&rels)
            .output()
            .expect("run history");
        assert_eq!(
            out.status.code(),
            Some(0),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let base = run(&[]);
    assert_eq!(base, run(&["--jobs", "8"]), "jobs changed history bytes");
    let cold = run(&["--cache-dir", cache.to_str().unwrap()]);
    let warm = run(&["--cache-dir", cache.to_str().unwrap()]);
    assert_eq!(base, cold, "cold cache changed history bytes");
    assert_eq!(base, warm, "warm cache changed history bytes");
    std::fs::remove_dir_all(&dir).ok();
}

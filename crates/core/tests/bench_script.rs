//! Runs the `scripts/bench.sh` smoke runner against the prebuilt
//! binary, so the benchmark script and its speedup gates stay wired
//! into the test suite.

use std::path::Path;
use std::process::Command;

#[test]
fn bench_smoke_script_passes() {
    let script = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../scripts/bench.sh")
        .canonicalize()
        .expect("scripts/bench.sh exists");
    let out_file =
        std::env::temp_dir().join(format!("refminer_bench_smoke_{}.json", std::process::id()));
    let eval_file = std::env::temp_dir().join(format!(
        "refminer_bench_smoke_eval_{}.json",
        std::process::id()
    ));
    let out = Command::new("bash")
        .arg(&script)
        .env("BENCHPIPE_BIN", env!("CARGO_BIN_EXE_benchpipe"))
        // A small tree keeps the smoke run fast; the gates scale down
        // with it (warm replay wins by orders of magnitude regardless).
        .env("BENCH_SCALE", "0.2")
        .env("BENCH_OUT", &out_file)
        .env("BENCH_EVAL_OUT", &eval_file)
        .output()
        .expect("run bench.sh");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "bench.sh failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains("bench.sh: PASS"), "stdout:\n{stdout}");

    // The report must exist and carry the gate inputs.
    let report = std::fs::read_to_string(&out_file).expect("report written");
    let v = refminer_json::Value::parse(&report).expect("valid JSON report");
    assert!(v.get("speedup_warm").is_some());
    assert!(v.get("speedup_parallel").is_some());
    assert!(v.get("runs").is_some());
    // Schema 8: the scaling curve, the binary-vs-JSON load comparison,
    // the per-engine phase-2 time split, the fix-history diff replay,
    // the fixcheck replay, the release-ladder history replay, and
    // explicit gate states. A skipped gate must be visible, not a
    // silent pass.
    assert_eq!(v.get("schema").and_then(|s| s.as_f64()), Some(8.0));
    let cores = v.get("cores").and_then(|c| c.as_u64()).expect("cores");
    let jobs = v.get("jobs").and_then(|c| c.as_u64()).expect("jobs");
    for gate_key in ["parallel_gate", "streaming_gate"] {
        let gate = v
            .get(gate_key)
            .and_then(|g| g.as_str())
            .unwrap_or_else(|| panic!("{gate_key} present"));
        assert!(
            gate == "enforced" || gate == "skipped",
            "unexpected {gate_key} {gate:?}"
        );
        assert_eq!(
            gate == "enforced",
            cores >= 4 && jobs >= 4,
            "{gate_key} state must match the host: cores={cores} jobs={jobs}"
        );
    }

    // The worker-count scaling curve: at least the sequential rung,
    // ascending and clamped to the host, cold and warm per rung.
    let scaling = v
        .get("scaling")
        .and_then(|s| s.as_array())
        .expect("scaling curve present");
    assert!(!scaling.is_empty());
    let mut prev = 0;
    for rung in scaling {
        let j = rung
            .get("jobs")
            .and_then(|j| j.as_u64())
            .expect("rung jobs");
        assert!(j > prev && j <= cores, "ladder must ascend within the host");
        prev = j;
        assert!(rung.get("cold_secs").and_then(|s| s.as_f64()).is_some());
        assert!(rung.get("warm_secs").and_then(|s| s.as_f64()).is_some());
    }

    // The binary-vs-JSON cache load comparison on identical content.
    // The >=3x gate itself is only enforced on kernel-scale trees, but
    // the measurement is always recorded (with its gate state).
    for key in [
        "warm_load_binary_secs",
        "warm_load_json_secs",
        "warm_load_speedup",
        "cache_binary_bytes",
        "cache_json_bytes",
    ] {
        assert!(
            v.get(key).and_then(|s| s.as_f64()).is_some(),
            "missing {key}"
        );
    }
    let load_gate = v
        .get("warm_load_gate")
        .and_then(|g| g.as_str())
        .expect("warm_load_gate present");
    let files = v.get("files").and_then(|f| f.as_u64()).expect("files");
    assert_eq!(load_gate == "enforced", files >= 1000);
    // The fix-history diff replay: every commit recorded with its diff
    // latency and sweep share, parse-miss exactness always enforced,
    // and the warm-latency gate visibly enforced or skipped.
    let diff = v.get("diff").expect("diff replay section present");
    let commits = diff
        .get("commits")
        .and_then(|c| c.as_array())
        .expect("diff commits present");
    assert!(!commits.is_empty(), "diff replay must cover commits");
    for commit in commits {
        assert!(commit.get("diff_secs").and_then(|s| s.as_f64()).is_some());
        assert!(commit.get("sweep_secs").and_then(|s| s.as_f64()).is_some());
    }
    assert_eq!(
        diff.get("parse_misses_exact").and_then(|b| b.as_bool()),
        Some(true),
        "diff replay re-parsed more than the changed units"
    );
    let diff_gate = diff
        .get("latency_gate")
        .and_then(|g| g.as_str())
        .expect("diff latency_gate present");
    assert!(diff_gate == "enforced" || diff_gate == "skipped");

    // The fixcheck replay: every commit verdict-checked, latency gate
    // visibly enforced or skipped.
    let fixcheck = v.get("fixcheck").expect("fixcheck section present");
    let fc_commits = fixcheck
        .get("commits")
        .and_then(|c| c.as_array())
        .expect("fixcheck commits present");
    assert!(!fc_commits.is_empty(), "fixcheck replay must cover commits");
    for commit in fc_commits {
        assert!(commit
            .get("fixcheck_secs")
            .and_then(|s| s.as_f64())
            .is_some());
    }
    assert_eq!(
        fixcheck.get("verdicts_correct").and_then(|b| b.as_bool()),
        Some(true),
        "fixcheck verdicts diverged from ground truth"
    );
    let fc_gate = fixcheck
        .get("latency_gate")
        .and_then(|g| g.as_str())
        .expect("fixcheck latency_gate present");
    assert!(fc_gate == "enforced" || fc_gate == "skipped");

    // The release-ladder history replay: delta-only re-parse after the
    // base release is exact, always enforced.
    let history = v.get("history").expect("history section present");
    assert!(!history
        .get("releases")
        .and_then(|r| r.as_array())
        .expect("history releases present")
        .is_empty());
    assert_eq!(
        history.get("delta_exact").and_then(|b| b.as_bool()),
        Some(true),
        "history replay re-parsed more than each release's delta"
    );

    assert!(v.get("summary_hit_rate").is_some());
    assert!(v.get("cold_phase1_secs").is_some());
    assert!(v.get("cold_phase2_secs").is_some());
    assert!(v.get("cold_parse_secs").is_some());
    assert!(v.get("cold_check_secs").is_some());
    let warm = v
        .get("runs")
        .and_then(|r| r.get("warm"))
        .expect("warm run present");
    assert!(warm.get("phase1_secs").is_some());
    assert!(warm.get("phase2_secs").is_some());
    let stages = warm.get("stages").expect("per-run stage breakdown");
    for stage in [
        "parse",
        "export",
        "merge",
        "check",
        "engine_template",
        "engine_delta",
        "report",
    ] {
        assert!(
            stages.get(&format!("{stage}_secs")).is_some(),
            "missing stage {stage}: {stages}"
        );
    }
    assert!(
        stdout.contains("summary-cache hit rate"),
        "stdout:\n{stdout}"
    );

    // The precision/recall eval gate ran and wrote its report.
    let eval = std::fs::read_to_string(&eval_file).expect("eval report written");
    let e = refminer_json::Value::parse(&eval).expect("valid eval report");
    assert!(e.get("feasibility_off").is_some());
    let feas_on = e.get("feasibility_on").expect("feasibility_on present");
    // Schema 2: the feasibility-on run carries the per-engine split
    // and the confidence histogram, and the template-only comparison
    // rides alongside.
    assert!(feas_on
        .get("engines")
        .and_then(|x| x.get("delta"))
        .is_some());
    assert!(feas_on.get("confidence").is_some());
    let f1_combined = e
        .get("f1_combined")
        .and_then(|f| f.as_f64())
        .expect("f1_combined");
    let f1_template = e
        .get("f1_template_only")
        .and_then(|f| f.as_f64())
        .expect("f1_template_only");
    assert!(
        f1_combined >= f1_template,
        "combined F1 {f1_combined} fell below template-only {f1_template}"
    );
    assert_eq!(e.get("recall_lost").and_then(|b| b.as_bool()), Some(false));
    assert!(
        e.get("patterns_improved")
            .and_then(|n| n.as_u64())
            .unwrap_or(0)
            >= 2,
        "eval gate inputs missing:\n{eval}"
    );
    assert!(stdout.contains("bench.sh: eval F1"), "stdout:\n{stdout}");
    std::fs::remove_file(&out_file).ok();
    std::fs::remove_file(&eval_file).ok();
}

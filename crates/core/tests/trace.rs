//! End-to-end tests of `refminer --trace`: the span log must parse as
//! JSON lines, cover every pipeline stage, stay consistent with its
//! meta line, and — above all — never change the findings.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::process::Command;

use refminer_json::Value;

fn refminer() -> Command {
    Command::new(env!("CARGO_BIN_EXE_refminer"))
}

fn write_corpus_tree(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "refminer_trace_test_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let tree = refminer::corpus::generate_tree(&refminer::corpus::TreeConfig {
        scale: 0.05,
        include_tricky: false,
        fp_traps: true,
        ..Default::default()
    });
    tree.write_to(&dir).expect("write tree");
    dir
}

/// Runs an audit with `--trace`, returning (stdout, parsed log lines).
fn traced_run(dir: &Path, trace_path: &Path, cache_dir: Option<&Path>) -> (Vec<u8>, Vec<Value>) {
    let mut cmd = refminer();
    cmd.arg("--json").arg("--trace").arg(trace_path);
    if let Some(cache) = cache_dir {
        cmd.arg("--cache-dir").arg(cache);
    }
    let out = cmd.arg(dir).output().expect("run");
    let text = std::fs::read_to_string(trace_path).expect("trace file written");
    let lines: Vec<Value> = text
        .lines()
        .map(|l| Value::parse(l).unwrap_or_else(|e| panic!("bad trace line {l:?}: {e:?}")))
        .collect();
    (out.stdout, lines)
}

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    v.get(key).unwrap_or_else(|| panic!("missing {key}: {v}"))
}

#[test]
fn trace_log_parses_and_covers_all_pipeline_stages() {
    let dir = write_corpus_tree("stages");
    let trace_path = dir.join("trace.jsonl");
    let cache_dir = dir.join(".refminer-cache");
    let (_, lines) = traced_run(&dir, &trace_path, Some(&cache_dir));

    // Line 0 is the meta record and its counts match the body.
    let meta = &lines[0];
    assert_eq!(field(meta, "type").as_str(), Some("meta"));
    let span_lines: Vec<&Value> = lines[1..]
        .iter()
        .filter(|v| field(v, "type").as_str() == Some("span"))
        .collect();
    let counter_lines: Vec<&Value> = lines[1..]
        .iter()
        .filter(|v| field(v, "type").as_str() == Some("counter"))
        .collect();
    assert_eq!(
        span_lines.len() + counter_lines.len(),
        lines.len() - 1,
        "every body line is a span or a counter"
    );
    assert_eq!(field(meta, "spans").as_u64(), Some(span_lines.len() as u64));
    assert_eq!(
        field(meta, "counters").as_u64(),
        Some(counter_lines.len() as u64)
    );

    // Every pipeline stage shows up: the CLI-level spans, the audit's
    // sequential top-level stages, and the per-unit fan-out spans.
    let stages: BTreeSet<&str> = span_lines
        .iter()
        .filter_map(|v| field(v, "stage").as_str())
        .collect();
    for required in [
        "scan",
        "cache.load",
        "hash",
        "parse",
        "parse.unit",
        "export",
        "export.unit",
        "merge.kb",
        "merge.progdb",
        "check",
        "check.unit",
        "feasibility",
        "report",
        "cache.save",
    ] {
        assert!(
            stages.contains(required),
            "missing stage {required}: {stages:?}"
        );
    }

    // A cold cached run records misses for every unit, and the limit /
    // unit counters carry the taxonomy.
    let counters: BTreeMap<&str, u64> = counter_lines
        .iter()
        .filter_map(|v| Some((field(v, "name").as_str()?, field(v, "value").as_u64()?)))
        .collect();
    let units = counters.get("units.total").copied().unwrap_or(0);
    assert!(units > 0, "units.total counter present: {counters:?}");
    assert_eq!(counters.get("cache.parse.miss").copied(), Some(units));
    assert!(
        counters.keys().any(|k| k.starts_with("checker.")),
        "per-checker timers present: {counters:?}"
    );

    // Per-unit spans exist for every unit.
    let parse_units = span_lines
        .iter()
        .filter(|v| field(v, "stage").as_str() == Some("parse.unit"))
        .count() as u64;
    assert_eq!(parse_units, units, "one parse.unit span per unit");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn top_level_stage_times_fit_within_the_total() {
    let dir = write_corpus_tree("times");
    let trace_path = dir.join("trace.jsonl");
    let (_, lines) = traced_run(&dir, &trace_path, None);
    let spans: Vec<(&str, u64, u64)> = lines[1..]
        .iter()
        .filter(|v| field(v, "type").as_str() == Some("span"))
        .map(|v| {
            (
                field(v, "stage").as_str().unwrap(),
                field(v, "start_us").as_u64().unwrap(),
                field(v, "dur_us").as_u64().unwrap(),
            )
        })
        .collect();
    // The top-level stages run sequentially, so their durations sum to
    // no more than the log's wall-clock extent.
    let top_level = [
        "scan",
        "hash",
        "parse",
        "export",
        "merge.kb",
        "merge.progdb",
        "check",
        "report",
    ];
    let stage_sum: u64 = spans
        .iter()
        .filter(|(stage, _, _)| top_level.contains(stage))
        .map(|(_, _, dur)| dur)
        .sum();
    let start = spans.iter().map(|(_, s, _)| *s).min().unwrap();
    let end = spans.iter().map(|(_, s, d)| s + d).max().unwrap();
    assert!(
        stage_sum <= end - start,
        "sequential stages ({stage_sum}µs) exceed the wall clock ({}µs)",
        end - start
    );
    // And they are not trivially empty: the audit spends measurable
    // time in at least the parse and check stages.
    for must_run in ["parse", "check"] {
        assert!(
            spans.iter().any(|(s, _, d)| s == &must_run && *d > 0),
            "stage {must_run} recorded no time"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tracing_never_changes_findings() {
    let dir = write_corpus_tree("bytes");
    let trace_path = dir.join("trace.jsonl");

    let plain = refminer().arg("--json").arg(&dir).output().expect("run");
    let (traced, _) = traced_run(&dir, &trace_path, None);
    assert_eq!(plain.stdout, traced, "--trace changed the findings bytes");

    // Same under parallelism and a warm cache: the trace observes the
    // run, it never steers it.
    let cache_dir = dir.join(".refminer-cache");
    let (cold, _) = traced_run(&dir, &trace_path, Some(&cache_dir));
    let (warm, warm_lines) = traced_run(&dir, &trace_path, Some(&cache_dir));
    assert_eq!(plain.stdout, cold, "cold cached trace changed the bytes");
    assert_eq!(plain.stdout, warm, "warm cached trace changed the bytes");

    // The warm run's counters flip from misses to hits — proof the
    // trace reflects the work actually performed.
    let hits = warm_lines[1..]
        .iter()
        .filter(|v| field(v, "type").as_str() == Some("counter"))
        .find(|v| field(v, "name").as_str() == Some("cache.check.hit"))
        .and_then(|v| field(v, "value").as_u64())
        .unwrap_or(0);
    assert!(hits > 0, "warm run records cache hits");

    std::fs::remove_dir_all(&dir).ok();
}

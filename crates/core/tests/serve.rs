//! End-to-end tests of the `refminer serve` daemon: deadlines,
//! backpressure, degraded-mode serving, watch mode, and recovery from
//! injected I/O faults and kill/restart cycles.
//!
//! Every test spawns the real binary and speaks the real wire
//! protocol; the headline assertion throughout is that `query` output
//! stays byte-identical to a one-shot `refminer --json` run over the
//! same tree, no matter what the daemon has been through.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use refminer::corpus::{generate_workload, WorkloadConfig, WorkloadOp};
use refminer::serve::protocol::{encode_request, Method, QueryFilter, Request};
use refminer::serve::rpc_roundtrip;
use refminer_json::Value;

fn write_demo_tree(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "refminer_serve_test_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("drivers/demo")).expect("mkdir");
    std::fs::write(
        dir.join("drivers/demo/demo.c"),
        r#"
int demo_probe(struct platform_device *pdev)
{
        struct device_node *np = of_find_node_by_name(NULL, "x");
        if (!np)
                return -ENODEV;
        return 0;
}
void demo_drop(struct sock *sk)
{
        sock_put(sk);
        sk->sk_err = 0;
}
"#,
    )
    .expect("write demo");
    dir
}

fn one_shot_json(dir: &Path) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_refminer"))
        .arg("--json")
        .arg(dir)
        .output()
        .expect("run one-shot");
    String::from_utf8(out.stdout).expect("utf8 json")
}

/// A spawned daemon process plus the TCP address it announced.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(root: &Path, extra: &[&str], envs: &[(&str, &str)]) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_refminer"));
        cmd.arg("serve")
            .args(["--listen", "127.0.0.1:0"])
            .args(extra)
            .arg(root)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn daemon");
        let mut reader = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read listen line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
            .to_string();
        // Keep draining stdout so the daemon can never block on a full
        // pipe (it prints a `socket` line and nothing else).
        std::thread::spawn(move || {
            let mut sink = String::new();
            while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
                sink.clear();
            }
        });
        Daemon { child, addr }
    }

    fn rpc(&self, req: &Request) -> Value {
        let line = rpc_roundtrip(&self.addr, &encode_request(req)).expect("rpc roundtrip");
        Value::parse(&line).unwrap_or_else(|e| panic!("malformed response {line:?}: {e:?}"))
    }

    fn status(&self) -> Value {
        let v = self.rpc(&Request {
            id: 99,
            method: Method::Status,
            deadline_ms: None,
        });
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
        v.get("result").cloned().expect("status result")
    }

    fn revision(&self) -> u64 {
        self.status()
            .get("revision")
            .and_then(Value::as_u64)
            .expect("revision")
    }

    fn wait_for_revision(&self, min: u64, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        while self.revision() < min {
            assert!(
                Instant::now() < deadline,
                "revision never reached {min} within {timeout:?}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Graceful stop: `shutdown` RPC, then wait for a clean exit.
    fn shutdown(mut self) {
        let v = self.rpc(&Request {
            id: 100,
            method: Method::Shutdown,
            deadline_ms: None,
        });
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "daemon exited {status}");
                    return;
                }
                None if Instant::now() >= deadline => {
                    let _ = self.child.kill();
                    panic!("daemon did not exit after shutdown");
                }
                None => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn query_request(id: u64, filter: QueryFilter) -> Request {
    Request {
        id,
        method: Method::Query(filter),
        deadline_ms: None,
    }
}

/// Joins a query result's prerendered lines back into the one-shot
/// `--json` byte shape (trailing newline included when nonempty).
fn joined_lines(result: &Value) -> String {
    let mut out = String::new();
    for l in result
        .get("lines")
        .and_then(Value::as_array)
        .expect("lines")
    {
        out.push_str(l.as_str().expect("line is a string"));
        out.push('\n');
    }
    if let Some(d) = result.get("diagnostics").and_then(Value::as_str) {
        out.push_str(d);
        out.push('\n');
    }
    out
}

#[test]
fn query_is_byte_identical_to_one_shot_json() {
    let dir = write_demo_tree("bytes");
    let expected = one_shot_json(&dir);
    assert!(!expected.is_empty(), "demo tree must have findings");

    let d = Daemon::start(&dir, &[], &[]);
    d.wait_for_revision(1, Duration::from_secs(30));

    // Through the library client…
    let v = d.rpc(&query_request(1, QueryFilter::default()));
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
    let result = v.get("result").expect("result");
    assert_eq!(joined_lines(result), expected, "library query diverged");

    // …and through the `refminer rpc` CLI, whose stdout is the
    // byte-diffable surface scripts use.
    let out = Command::new(env!("CARGO_BIN_EXE_refminer"))
        .args(["rpc", &d.addr, "query"])
        .output()
        .expect("run rpc query");
    assert_eq!(out.status.code(), Some(0), "rpc query exits 0");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        expected,
        "CLI query diverged"
    );

    // Filters narrow without changing the byte shape of what remains.
    let v = d.rpc(&query_request(
        2,
        QueryFilter {
            pattern: Some("P8".to_string()),
            ..Default::default()
        },
    ));
    let narrowed = joined_lines(v.get("result").expect("result"));
    assert!(!narrowed.is_empty() && expected.contains(narrowed.trim_end()));
    assert!(narrowed.len() < expected.len());

    // An unknown pattern is a bad request, not a hang or a crash.
    let v = d.rpc(&query_request(
        3,
        QueryFilter {
            pattern: Some("P99".to_string()),
            ..Default::default()
        },
    ));
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{v}");
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str),
        Some("bad_request")
    );

    d.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(unix)]
#[test]
fn unix_socket_answers_rpc() {
    let dir = write_demo_tree("unix");
    let sock = dir.join("refminer.sock");
    let d = Daemon::start(&dir, &["--socket", sock.to_str().unwrap()], &[]);
    d.wait_for_revision(1, Duration::from_secs(30));
    let target = format!("unix:{}", sock.display());
    let line = rpc_roundtrip(
        &target,
        &encode_request(&Request {
            id: 1,
            method: Method::Status,
            deadline_ms: None,
        }),
    )
    .expect("unix roundtrip");
    let v = Value::parse(&line).expect("json");
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
    d.shutdown();
    assert!(!sock.exists(), "socket file cleaned up on shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_queue_sheds_with_explicit_overloaded_error() {
    let dir = write_demo_tree("shed");
    // The injected stall keeps the worker busy on the warm-up audit
    // while the test fills the one-slot queue.
    let d = Daemon::start(&dir, &["--queue", "1", "--inject-delay-ms", "1500"], &[]);

    // First audit request parks in the queue behind the warm-up job…
    let addr = d.addr.clone();
    let parked = std::thread::spawn(move || {
        let line = rpc_roundtrip(
            &addr,
            &encode_request(&Request {
                id: 10,
                method: Method::Audit,
                deadline_ms: Some(30_000),
            }),
        )
        .expect("parked audit roundtrip");
        Value::parse(&line).expect("json")
    });
    std::thread::sleep(Duration::from_millis(300));

    // …so the next one must be shed immediately with an explicit error.
    let t0 = Instant::now();
    let v = d.rpc(&Request {
        id: 11,
        method: Method::Audit,
        deadline_ms: Some(30_000),
    });
    assert!(
        t0.elapsed() < Duration::from_secs(1),
        "shed response was not immediate: {:?}",
        t0.elapsed()
    );
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{v}");
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str),
        Some("overloaded"),
        "{v}"
    );
    assert!(d.status().get("sheds").and_then(Value::as_u64).unwrap() >= 1);

    // The parked request completes normally once the worker frees up.
    let parked = parked.join().expect("join parked");
    assert_eq!(
        parked.get("ok").and_then(Value::as_bool),
        Some(true),
        "{parked}"
    );
    d.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deadline_is_enforced_and_never_hangs() {
    let dir = write_demo_tree("deadline");
    let d = Daemon::start(&dir, &["--inject-delay-ms", "3000"], &[]);

    // The warm-up job holds the worker for 3s; an audit with a 300ms
    // deadline must come back as deadline_exceeded long before that.
    let t0 = Instant::now();
    let v = d.rpc(&Request {
        id: 1,
        method: Method::Audit,
        deadline_ms: Some(300),
    });
    let elapsed = t0.elapsed();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{v}");
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str),
        Some("deadline_exceeded"),
        "{v}"
    );
    assert!(
        elapsed >= Duration::from_millis(250) && elapsed < Duration::from_millis(2500),
        "deadline response took {elapsed:?}"
    );
    // Reads never queue behind audits: status answers while the worker
    // is still stalled.
    let t0 = Instant::now();
    assert!(
        d.status()
            .get("deadline_misses")
            .and_then(Value::as_u64)
            .unwrap()
            >= 1
    );
    assert!(t0.elapsed() < Duration::from_secs(1));
    d.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_clients_get_consistent_snapshots_under_faults() {
    let dir = write_demo_tree("torn");
    let expected = one_shot_json(&dir);
    let cache_dir = dir.join(".serve-cache");

    // Fault cache writes/renames on a seeded schedule: saves fail under
    // the clients' feet while served snapshots must stay untorn.
    let d = Daemon::start(
        &dir,
        &["--jobs", "4", "--cache-dir", cache_dir.to_str().unwrap()],
        &[("REFMINER_FAULTS", "seed=11,rate=3,ops=write+rename,max=50")],
    );
    d.wait_for_revision(1, Duration::from_secs(30));

    let clients: Vec<_> = (0..4)
        .map(|i| {
            let addr = d.addr.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let ops = generate_workload(&WorkloadConfig {
                    seed: 0xC11E47 + i,
                    ops: 16,
                    files: vec!["drivers/demo/demo.c".to_string()],
                    subsystems: vec!["drivers".to_string(), "sound".to_string()],
                });
                for (n, op) in ops.iter().enumerate() {
                    let (method, is_full_query) = match op.clone() {
                        WorkloadOp::Audit => (Method::Audit, false),
                        WorkloadOp::Reaudit(files) => (Method::Reaudit { files }, false),
                        WorkloadOp::Status => (Method::Status, false),
                        WorkloadOp::Query { subsystem, pattern } => {
                            let full = subsystem.is_none() && pattern.is_none();
                            (
                                Method::Query(QueryFilter {
                                    subsystem,
                                    pattern,
                                    verdict: None,
                                }),
                                full,
                            )
                        }
                    };
                    let req = Request {
                        id: n as u64,
                        method,
                        deadline_ms: Some(30_000),
                    };
                    let line =
                        rpc_roundtrip(&addr, &encode_request(&req)).expect("client roundtrip");
                    let v = Value::parse(&line).expect("json response");
                    if v.get("ok").and_then(Value::as_bool) == Some(true) {
                        if is_full_query {
                            // The torn-read assertion: an unfiltered
                            // query over the unchanged tree must always
                            // be the complete one-shot byte image.
                            let result = v.get("result").expect("result");
                            assert_eq!(
                                joined_lines(result),
                                expected,
                                "client {i} op {n}: torn snapshot"
                            );
                            assert!(result.get("revision").and_then(Value::as_u64).unwrap() >= 1);
                        }
                    } else {
                        // Failures must be explicit shed/deadline
                        // responses, never hangs or garbage.
                        let kind = v
                            .get("error")
                            .and_then(|e| e.get("kind"))
                            .and_then(Value::as_str)
                            .unwrap_or("missing");
                        assert!(
                            ["overloaded", "deadline_exceeded", "internal"].contains(&kind),
                            "client {i} op {n}: unexpected error {v}"
                        );
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    let status = d.status();
    assert!(status.get("requests").and_then(Value::as_u64).unwrap() >= 64);
    // The injected faults actually bit: cache persistence failed and
    // the daemon carried on serving.
    assert!(
        status
            .get("cache_save_failures")
            .and_then(Value::as_u64)
            .unwrap()
            >= 1,
        "faults never fired: {status}"
    );
    let v = d.rpc(&query_request(1000, QueryFilter::default()));
    assert_eq!(joined_lines(v.get("result").expect("result")), expected);
    d.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_restart_with_corrupt_cache_recovers_byte_identical() {
    let dir = write_demo_tree("soak");
    let expected = one_shot_json(&dir);
    let cache_dir = dir.join(".serve-cache");

    // Round one: torn cache writes on a seeded schedule, then a hard
    // kill — the daemon equivalent of dying mid-save.
    let d = Daemon::start(
        &dir,
        &["--cache-dir", cache_dir.to_str().unwrap()],
        &[(
            "REFMINER_FAULTS",
            "seed=7,rate=2,ops=write+rename,torn=500,max=100",
        )],
    );
    d.wait_for_revision(1, Duration::from_secs(30));
    for id in 0..3 {
        let v = d.rpc(&Request {
            id,
            method: Method::Audit,
            deadline_ms: Some(30_000),
        });
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
    }
    drop(d); // SIGKILL — no graceful shutdown, no final save.

    // If any save survived the torn-write faults, it must be the
    // binary container — the JSON-era `audit-cache.json` is gone.
    let live = cache_dir.join(refminer::CACHE_FILE);
    assert!(
        refminer::CACHE_FILE.ends_with(".bin"),
        "cache file is the binary container"
    );
    if let Ok(bytes) = std::fs::read(&live) {
        assert!(
            bytes.is_empty() || bytes.len() < 8 || bytes.starts_with(b"RFMCACHE"),
            "persisted cache is not the binary container"
        );
    }

    // Whatever the kill left behind, make it strictly worse: a
    // mid-write torn prefix of a *binary* cache where the live file
    // should be — the magic is valid, the rest is cut mid-header, so
    // only the checksum/framing validation can reject it.
    std::fs::create_dir_all(&cache_dir).ok();
    std::fs::write(&live, b"RFMCACHE\x04\x00\x00").expect("plant torn cache");

    // Round two: no faults. The daemon must quarantine the torn file,
    // rebuild cold, and serve the exact one-shot bytes.
    let d = Daemon::start(&dir, &["--cache-dir", cache_dir.to_str().unwrap()], &[]);
    d.wait_for_revision(1, Duration::from_secs(30));
    let status = d.status();
    assert_eq!(
        status.get("cache_quarantined").and_then(Value::as_u64),
        Some(1),
        "torn cache must be quarantined: {status}"
    );
    assert!(
        cache_dir
            .join(format!(
                "{}{}",
                refminer::CACHE_FILE,
                refminer::QUARANTINE_SUFFIX
            ))
            .exists(),
        "quarantined file kept for post-mortem"
    );
    let v = d.rpc(&query_request(1, QueryFilter::default()));
    assert_eq!(
        joined_lines(v.get("result").expect("result")),
        expected,
        "post-recovery query diverged from one-shot"
    );
    d.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_restart_reloads_binary_cache_and_bit_flips_quarantine() {
    let dir = write_demo_tree("reload");
    let expected = one_shot_json(&dir);
    let cache_dir = dir.join(".serve-cache");
    let cache_args = ["--cache-dir", cache_dir.to_str().unwrap()];
    let quarantined = cache_dir.join(format!(
        "{}{}",
        refminer::CACHE_FILE,
        refminer::QUARANTINE_SUFFIX
    ));

    // Round one persists the binary cache.
    let d = Daemon::start(&dir, &cache_args, &[]);
    d.wait_for_revision(1, Duration::from_secs(30));
    d.shutdown();
    let live = cache_dir.join(refminer::CACHE_FILE);
    let bytes = std::fs::read(&live).expect("cache persisted");
    assert!(
        bytes.starts_with(b"RFMCACHE"),
        "persisted cache is not the binary container"
    );

    // Round two warm-loads it: no quarantine, identical bytes served.
    let d = Daemon::start(&dir, &cache_args, &[]);
    d.wait_for_revision(1, Duration::from_secs(30));
    assert_eq!(
        d.status().get("cache_quarantined").and_then(Value::as_u64),
        Some(0),
        "clean cache must not be quarantined"
    );
    assert!(!quarantined.exists());
    let v = d.rpc(&query_request(1, QueryFilter::default()));
    assert_eq!(joined_lines(v.get("result").expect("result")), expected);
    d.shutdown();

    // One flipped body byte: the checksum must reject the whole file,
    // quarantine it, and the cold rebuild must serve the same bytes.
    let mut bytes = std::fs::read(&live).expect("cache still present");
    assert!(bytes.len() > 24, "container has a body to corrupt");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&live, &bytes).expect("plant bit flip");
    let d = Daemon::start(&dir, &cache_args, &[]);
    d.wait_for_revision(1, Duration::from_secs(30));
    assert_eq!(
        d.status().get("cache_quarantined").and_then(Value::as_u64),
        Some(1),
        "bit-flipped cache must be quarantined"
    );
    assert!(quarantined.exists(), "flipped file kept for post-mortem");
    let v = d.rpc(&query_request(2, QueryFilter::default()));
    assert_eq!(joined_lines(v.get("result").expect("result")), expected);
    d.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reaudit_of_deleted_file_reports_diagnostic_not_error() {
    let dir = write_demo_tree("deleted");
    let extra = dir.join("drivers/demo/extra.c");
    std::fs::write(&extra, "int extra_fn(int a)\n{\n        return a;\n}\n").expect("write extra");
    let expected_without_extra = {
        let d2 = write_demo_tree("deleted_ref");
        let e = one_shot_json(&d2);
        std::fs::remove_dir_all(&d2).ok();
        e
    };

    let d = Daemon::start(&dir, &[], &[]);
    d.wait_for_revision(1, Duration::from_secs(30));
    let rev = d.revision();

    // The file vanishes between the change notification and the
    // re-audit. That is a fact to report, not a fault to retry.
    std::fs::remove_file(&extra).expect("delete extra");
    let v = d.rpc(&Request {
        id: 1,
        method: Method::Reaudit {
            files: vec!["drivers/demo/extra.c".to_string()],
        },
        deadline_ms: Some(30_000),
    });
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
    let result = v.get("result").expect("result");
    let removed = result
        .get("removed")
        .and_then(Value::as_array)
        .expect("removed diagnostics");
    assert_eq!(removed.len(), 1);
    assert_eq!(
        removed[0].get("path").and_then(Value::as_str),
        Some("drivers/demo/extra.c")
    );
    assert_eq!(
        removed[0].get("outcome").and_then(Value::as_str),
        Some("skipped")
    );
    assert!(d.revision() > rev, "the re-audit still ran");
    assert_eq!(
        d.status().get("files_removed").and_then(Value::as_u64),
        Some(1)
    );

    // The snapshot converges on the post-deletion tree.
    let v = d.rpc(&query_request(2, QueryFilter::default()));
    assert_eq!(
        joined_lines(v.get("result").expect("result")),
        expected_without_extra
    );
    d.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn watch_mode_reaudits_on_change() {
    let dir = write_demo_tree("watch");
    let d = Daemon::start(
        &dir,
        &["--watch", "--poll-ms", "50", "--debounce-ms", "40"],
        &[],
    );
    d.wait_for_revision(1, Duration::from_secs(30));

    // A new buggy file appears; the watcher must notice, debounce, and
    // re-audit without any client asking.
    std::fs::write(
        dir.join("drivers/demo/late.c"),
        "void late_drop(struct sock *sk)\n{\n        sock_put(sk);\n        sk->sk_err = 1;\n}\n",
    )
    .expect("write late");
    d.wait_for_revision(2, Duration::from_secs(30));
    assert!(
        d.status()
            .get("watch_triggers")
            .and_then(Value::as_u64)
            .unwrap()
            >= 1
    );

    let v = d.rpc(&query_request(1, QueryFilter::default()));
    let lines = joined_lines(v.get("result").expect("result"));
    assert!(lines.contains("late.c"), "new finding not served: {lines}");
    // Byte-identity holds against a fresh one-shot over the new tree.
    assert_eq!(lines, one_shot_json(&dir));
    d.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fixcheck_rpc_reports_incomplete_fix_and_rejects_garbage() {
    // The tree on disk is the *post-fix* state: demo.c got its
    // `of_node_put` while sibling demo2.c kept the identical leak.
    let dir = std::env::temp_dir().join(format!(
        "refminer_serve_test_fixcheck_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("drivers/demo")).expect("mkdir");
    std::fs::write(
        dir.join("drivers/demo/demo.c"),
        "\nint demo_probe(struct platform_device *pdev)\n{\n\
         \tstruct device_node *np = of_find_node_by_name(NULL, \"x\");\n\
         \tif (!np)\n\t\treturn -ENODEV;\n\tof_node_put(np);\n\treturn 0;\n}\n",
    )
    .expect("write demo");
    std::fs::write(
        dir.join("drivers/demo/demo2.c"),
        "\nint demo_init(struct platform_device *pdev)\n{\n\
         \tstruct device_node *np = of_find_node_by_name(NULL, \"y\");\n\
         \tif (!np)\n\t\treturn -ENODEV;\n\treturn 0;\n}\n",
    )
    .expect("write demo2");
    let diff = "--- a/drivers/demo/demo.c\n+++ b/drivers/demo/demo.c\n\
                @@ -5,4 +5,5 @@\n \tif (!np)\n \t\treturn -ENODEV;\n\
                +\tof_node_put(np);\n \treturn 0;\n }\n";

    let d = Daemon::start(&dir, &[], &[]);
    d.wait_for_revision(1, Duration::from_secs(30));
    let before = d.revision();

    let v = d.rpc(&Request {
        id: 7,
        method: Method::Fixcheck {
            diff: diff.to_string(),
        },
        deadline_ms: Some(30_000),
    });
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
    let result = v.get("result").cloned().expect("fixcheck result");
    assert_eq!(
        result.get("fixed").and_then(Value::as_u64),
        Some(1),
        "{result}"
    );
    assert_eq!(
        result.get("clean").and_then(Value::as_bool),
        Some(false),
        "{result}"
    );
    assert!(
        result
            .get("incomplete")
            .and_then(Value::as_u64)
            .unwrap_or(0)
            >= 1,
        "the sibling leak must be reported: {result}"
    );
    let lines = result
        .get("lines")
        .and_then(Value::as_array)
        .expect("lines");
    assert!(
        lines
            .iter()
            .filter_map(|l| l.as_str())
            .any(|l| l.contains("demo2.c")),
        "an incomplete line must name the unfixed sibling: {result}"
    );
    assert!(d.revision() > before, "fixcheck publishes a snapshot");

    // A client-side bad diff is a bad_request, not a failed audit.
    let v = d.rpc(&Request {
        id: 8,
        method: Method::Fixcheck {
            diff: "not a diff at all\n".to_string(),
        },
        deadline_ms: Some(30_000),
    });
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{v}");
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str)
            .map(str::to_string),
        Some("bad_request".to_string()),
        "{v}"
    );

    // Queries after a fixcheck still serve the post-tree snapshot,
    // byte-identical to the one-shot run.
    let v = d.rpc(&query_request(9, QueryFilter::default()));
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
    d.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

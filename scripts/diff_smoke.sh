#!/usr/bin/env bash
# Diff smoke run: generate a simulated fix history with histgen, then
# replay it commit by commit through `refminer diff` against one shared
# cache dir, verifying at every commit that
#
#   1. the reported delta equals the set difference of two full
#      `refminer --json` audits of the same revisions (moved findings
#      count on both sides, left_behind lines on neither — they are
#      revision-B findings that survived the commit);
#   2. the delta bytes are identical across `--jobs` settings and cache
#      temperature (the warm shared-cache run vs a cold cache-less one);
#   3. the partial-fix commits report left-behind clones, and the
#      neutral refactor commit reports a clean (empty) delta.
#
# Env:
#   REFMINER_BIN  prebuilt refminer binary; default `cargo run`
#   HISTGEN_BIN   prebuilt histgen binary; default `cargo run`
set -u

here="$(cd "$(dirname "$0")/.." && pwd)"
outdir="$(mktemp -d "${TMPDIR:-/tmp}/refminer-diff.XXXXXX")"
trap 'rm -rf "$outdir"' EXIT

refminer() {
    if [ -n "${REFMINER_BIN:-}" ]; then
        "$REFMINER_BIN" "$@"
    else
        cargo run --quiet --manifest-path "$here/Cargo.toml" -p refminer --bin refminer -- "$@"
    fi
}

histgen() {
    if [ -n "${HISTGEN_BIN:-}" ]; then
        "$HISTGEN_BIN" "$@"
    else
        cargo run --quiet --manifest-path "$here/Cargo.toml" -p refminer --bin histgen -- "$@"
    fi
}

fail() {
    echo "diff_smoke.sh: FAIL ($1)" >&2
    exit 1
}

hist="$outdir/hist"
histgen --seed 11 --scale 0.05 --clone-groups 3 "$hist" > /dev/null \
    || fail "histgen"
[ -f "$hist/history.json" ] || fail "histgen wrote no history.json"

revs=$(cd "$hist" && ls -d rev?? | sort)
[ -n "$revs" ] || fail "histgen wrote no revisions"

cache="$outdir/cache"
prev=""
commit=0
fix_commits_with_left_behind=0
fix_commits=0
for rev in $revs; do
    cur="$hist/$rev"
    if [ -z "$prev" ]; then
        prev="$cur"
        continue
    fi
    commit=$((commit + 1))

    # The two full audits the delta must reduce to.
    refminer --json "$prev" > "$outdir/full_a.jsonl"
    refminer --json "$cur" > "$outdir/full_b.jsonl"

    # Warm incremental diff (shared cache, sequential) and a cold
    # parallel one; the delta must not depend on either knob.
    refminer diff --json --jobs 1 --cache-dir "$cache" "$prev" "$cur" \
        > "$outdir/delta_warm.jsonl"
    refminer diff --json --jobs 4 "$prev" "$cur" > "$outdir/delta_cold.jsonl"
    cmp -s "$outdir/delta_warm.jsonl" "$outdir/delta_cold.jsonl" \
        || fail "commit $commit: delta differs across jobs/cache temperature"

    python3 - "$outdir/full_a.jsonl" "$outdir/full_b.jsonl" \
        "$outdir/delta_warm.jsonl" <<'EOF' || fail "commit $commit: delta != full-audit set difference"
import json, sys

def canon(o):
    return json.dumps(o, sort_keys=True)

def lines(path):
    with open(path) as fh:
        return [json.loads(l) for l in fh if l.strip()]

a = set(canon(o) for o in lines(sys.argv[1]))
b = set(canon(o) for o in lines(sys.argv[2]))
intro, fixed, moved_from, moved_to = set(), set(), set(), set()
for d in lines(sys.argv[3]):
    kind = d["delta"]
    if kind == "introduced":
        intro.add(canon(d["finding"]))
    elif kind == "fixed":
        fixed.add(canon(d["finding"]))
    elif kind == "moved":
        moved_from.add(canon(d["from"]))
        moved_to.add(canon(d["finding"]))
    elif kind == "left_behind":
        assert canon(d["finding"]) in b, "left_behind finding not in revision B"
assert intro | moved_to == b - a, "introduced+moved != B-only findings"
assert fixed | moved_from == a - b, "fixed+moved != A-only findings"
EOF

    fixed_count=$(grep -c '"delta":"fixed"' "$outdir/delta_warm.jsonl" || true)
    left_count=$(grep -c '"delta":"left_behind"' "$outdir/delta_warm.jsonl" || true)
    if [ "$fixed_count" -gt 0 ]; then
        fix_commits=$((fix_commits + 1))
        [ "$left_count" -gt 0 ] \
            && fix_commits_with_left_behind=$((fix_commits_with_left_behind + 1))
    else
        # The neutral refactor commit: nothing fixed, nothing introduced.
        [ -s "$outdir/delta_warm.jsonl" ] \
            && fail "commit $commit: non-fix commit reported a delta"
    fi
    prev="$cur"
done

[ "$commit" -ge 2 ] || fail "history too short: $commit commit(s)"
[ "$fix_commits" -gt 0 ] || fail "no fix commits replayed"
[ "$fix_commits_with_left_behind" -gt 0 ] \
    || fail "partial-fix commits reported no left-behind clones"

echo "diff_smoke.sh: PASS ($commit commits, $fix_commits fixes, \
$fix_commits_with_left_behind with left-behind clones)"

#!/usr/bin/env bash
# Serve smoke run: start the daemon on a demo tree, drive it with the
# rpc client (status, query, reaudit, audit), inject torn cache saves,
# kill -9 the daemon mid-flight, plant a torn cache file, restart, and
# verify the recovered daemon serves query output byte-identical to a
# one-shot `refminer --json` run.
#
# Env:
#   REFMINER_BIN  prebuilt binary; default `cargo run`
set -u

here="$(cd "$(dirname "$0")/.." && pwd)"
outdir="$(mktemp -d "${TMPDIR:-/tmp}/refminer-serve.XXXXXX")"
daemon_pid=""
cleanup() {
    if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -9 "$daemon_pid" 2>/dev/null
        wait "$daemon_pid" 2>/dev/null
    fi
    rm -rf "$outdir"
}
trap cleanup EXIT

refminer() {
    if [ -n "${REFMINER_BIN:-}" ]; then
        "$REFMINER_BIN" "$@"
    else
        cargo run --quiet --manifest-path "$here/Cargo.toml" -p refminer --bin refminer -- "$@"
    fi
}

fail() {
    echo "serve_smoke.sh: FAIL ($1)" >&2
    exit 1
}

# A tiny tree with two known findings.
tree="$outdir/tree"
mkdir -p "$tree/drivers/demo"
cat > "$tree/drivers/demo/demo.c" <<'EOF'

int demo_probe(struct platform_device *pdev)
{
        struct device_node *np = of_find_node_by_name(NULL, "x");
        if (!np)
                return -ENODEV;
        return 0;
}
void demo_drop(struct sock *sk)
{
        sock_put(sk);
        sk->sk_err = 0;
}
EOF

cache="$outdir/cache"
expected="$outdir/expected.jsonl"
refminer --json "$tree" > "$expected"
[ -s "$expected" ] || fail "one-shot run produced no findings"

# start_daemon <logfile> <fault-spec-or-empty>; sets daemon_pid, addr.
start_daemon() {
    log="$1"
    faults="$2"
    REFMINER_FAULTS="$faults" refminer serve --listen 127.0.0.1:0 \
        --cache-dir "$cache" "$tree" > "$log" 2>"$log.err" &
    daemon_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^listening on //p' "$log" | head -n 1)"
        [ -n "$addr" ] && break
        kill -0 "$daemon_pid" 2>/dev/null || fail "daemon died on startup: $(cat "$log.err")"
        sleep 0.1
    done
    [ -n "$addr" ] || fail "daemon never announced its address"
}

# wait_revision <min>: poll status until the snapshot reaches <min>.
wait_revision() {
    min="$1"
    for _ in $(seq 1 300); do
        rev="$(refminer rpc "$addr" status | sed -n 's/.*"revision":\([0-9]*\).*/\1/p')"
        [ -n "$rev" ] && [ "$rev" -ge "$min" ] && return 0
        sleep 0.1
    done
    fail "revision never reached $min"
}

# Round one: torn cache writes injected on a seeded schedule.
start_daemon "$outdir/serve1.log" "seed=7,rate=2,ops=write+rename,torn=500,max=100"
wait_revision 1

refminer rpc "$addr" status > /dev/null || fail "status rpc"
refminer rpc "$addr" query > "$outdir/query1.jsonl" || fail "query rpc"
cmp -s "$expected" "$outdir/query1.jsonl" || fail "query != one-shot (round one)"
refminer rpc "$addr" reaudit drivers/demo/demo.c > /dev/null || fail "reaudit rpc"
refminer rpc "$addr" audit > /dev/null || fail "audit rpc"

# Kill -9 mid-flight: enqueue an audit (its save will be in the
# daemon's near future) and kill without waiting for it.
refminer rpc "$addr" audit > /dev/null &
rpc_bg=$!
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null
wait "$rpc_bg" 2>/dev/null
daemon_pid=""

# Make the crash strictly worse than reality: plant a torn prefix of
# a binary cache — a valid magic, then garbage cut mid-header — where
# the live cache file should be.
mkdir -p "$cache"
printf 'RFMCACHE\004\000\000' > "$cache/audit-cache.bin"

# Round two: clean environment. The daemon must quarantine the torn
# cache, rebuild cold, and serve the exact one-shot bytes.
start_daemon "$outdir/serve2.log" ""
wait_revision 1

[ -f "$cache/audit-cache.bin.corrupt" ] || fail "torn cache not quarantined"
refminer rpc "$addr" status | grep -q '"cache_quarantined":1' \
    || fail "quarantine not reported in status"
refminer rpc "$addr" query > "$outdir/query2.jsonl" || fail "query rpc (round two)"
cmp -s "$expected" "$outdir/query2.jsonl" || fail "query != one-shot after recovery"

refminer rpc "$addr" shutdown > /dev/null || fail "shutdown rpc"
for _ in $(seq 1 100); do
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$daemon_pid" 2>/dev/null; then
    fail "daemon did not exit after shutdown"
fi
daemon_pid=""

echo "serve_smoke.sh: PASS"

#!/usr/bin/env bash
# One-shot release gate: fmt → clippy → build → test → chaos → trace →
# serve → diff → fixcheck → bench, fail fast, and end with a single
# "verify.sh: PASS" or "verify.sh: FAIL (<step>)" verdict line.
#
# Env:
#   VERIFY_SKIP     space-separated step names to skip
#                   (any of: fmt clippy build test chaos trace serve diff
#                   fixcheck bench bigbench)
#   VERIFY_BIG      1 = add a kernel-scale corpus smoke (benchpipe --big
#                   gates on a ~10k-file / ~1 MLoC tree; minutes, not
#                   seconds, so off by default)
#   CHAOSGEN_BIN / REFMINER_BIN / HISTGEN_BIN / BENCHPIPE_BIN,
#   BENCH_SCALE / BENCH_JOBS
#   / BENCH_OUT / BENCH_REPLICAS — forwarded to the underlying scripts,
#   so a harness can point every step at prebuilt binaries.
set -u

here="$(cd "$(dirname "$0")/.." && pwd)"

skipped() {
    case " ${VERIFY_SKIP:-} " in
        *" $1 "*) return 0 ;;
        *) return 1 ;;
    esac
}

step() {
    name="$1"
    shift
    if skipped "$name"; then
        echo "verify.sh: [$name] skipped"
        return 0
    fi
    echo "verify.sh: [$name] running"
    if "$@"; then
        echo "verify.sh: [$name] ok"
    else
        echo "verify.sh: FAIL ($name)" >&2
        exit 1
    fi
}

step fmt cargo fmt --all --check --manifest-path "$here/Cargo.toml"
step clippy cargo clippy --all-targets --quiet --manifest-path "$here/Cargo.toml" -- -D warnings
step build cargo build --release --quiet --manifest-path "$here/Cargo.toml" --workspace
step test cargo test --quiet --manifest-path "$here/Cargo.toml" --workspace
step chaos bash "$here/scripts/chaos.sh"
step trace bash "$here/scripts/trace_smoke.sh"
step serve bash "$here/scripts/serve_smoke.sh"
step diff bash "$here/scripts/diff_smoke.sh"
step fixcheck bash "$here/scripts/fixcheck_smoke.sh"
step bench bash "$here/scripts/bench.sh"
if [ "${VERIFY_BIG:-0}" = "1" ]; then
    # The big-corpus smoke: bench.sh with its big mode on, the small
    # smoke/eval trees scaled down so the added cost is the big run
    # itself. The big report goes to a scratch path so the committed
    # BENCH_pipeline.json is only ever updated deliberately.
    big_out="${BENCH_BIG_OUT:-$(mktemp "${TMPDIR:-/tmp}/refminer-bigbench.XXXXXX.json")}"
    step bigbench env BENCH_BIG=1 BENCH_BIG_OUT="$big_out" \
        BENCH_SCALE="${BENCH_SCALE:-0.2}" BENCH_EVAL_SCALE=0.1 \
        BENCH_REPLICAS="${BENCH_REPLICAS:-100}" \
        bash "$here/scripts/bench.sh"
fi

echo "verify.sh: PASS"

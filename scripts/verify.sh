#!/usr/bin/env bash
# One-shot release gate: fmt → clippy → build → test → chaos → trace →
# serve → bench, fail fast, and end with a single "verify.sh: PASS" or
# "verify.sh: FAIL (<step>)" verdict line.
#
# Env:
#   VERIFY_SKIP     space-separated step names to skip
#                   (any of: fmt clippy build test chaos trace serve bench)
#   CHAOSGEN_BIN / REFMINER_BIN / BENCHPIPE_BIN, BENCH_SCALE / BENCH_JOBS
#   / BENCH_OUT — forwarded to the underlying scripts, so a harness can
#   point every step at prebuilt binaries.
set -u

here="$(cd "$(dirname "$0")/.." && pwd)"

skipped() {
    case " ${VERIFY_SKIP:-} " in
        *" $1 "*) return 0 ;;
        *) return 1 ;;
    esac
}

step() {
    name="$1"
    shift
    if skipped "$name"; then
        echo "verify.sh: [$name] skipped"
        return 0
    fi
    echo "verify.sh: [$name] running"
    if "$@"; then
        echo "verify.sh: [$name] ok"
    else
        echo "verify.sh: FAIL ($name)" >&2
        exit 1
    fi
}

step fmt cargo fmt --all --check --manifest-path "$here/Cargo.toml"
step clippy cargo clippy --all-targets --quiet --manifest-path "$here/Cargo.toml" -- -D warnings
step build cargo build --release --quiet --manifest-path "$here/Cargo.toml" --workspace
step test cargo test --quiet --manifest-path "$here/Cargo.toml" --workspace
step chaos bash "$here/scripts/chaos.sh"
step trace bash "$here/scripts/trace_smoke.sh"
step serve bash "$here/scripts/serve_smoke.sh"
step bench bash "$here/scripts/bench.sh"

echo "verify.sh: PASS"

#!/usr/bin/env bash
# Trace smoke run: audit a small generated tree with `--trace` and check
# the span log is well-formed JSON lines covering every pipeline stage.
#
# Env:
#   CHAOSGEN_BIN / REFMINER_BIN  prebuilt binaries; default `cargo run`
set -u

here="$(cd "$(dirname "$0")/.." && pwd)"
outdir="$(mktemp -d "${TMPDIR:-/tmp}/refminer-trace.XXXXXX")"
trap 'rm -rf "$outdir"' EXIT

chaosgen() {
    if [ -n "${CHAOSGEN_BIN:-}" ]; then
        "$CHAOSGEN_BIN" "$@"
    else
        cargo run --quiet --manifest-path "$here/Cargo.toml" -p refminer --bin chaosgen -- "$@"
    fi
}

refminer() {
    if [ -n "${REFMINER_BIN:-}" ]; then
        "$REFMINER_BIN" "$@"
    else
        cargo run --quiet --manifest-path "$here/Cargo.toml" -p refminer --bin refminer -- "$@"
    fi
}

tree="$outdir/tree"
trace="$outdir/trace.jsonl"
cache="$outdir/cache"

# An uncorrupted tree: the smoke run exercises tracing, not the fault
# boundary (chaos.sh owns that).
chaosgen --ratio 0 "$tree" || {
    echo "trace_smoke.sh: chaosgen failed" >&2
    exit 1
}

refminer --json --stats --trace "$trace" --cache-dir "$cache" "$tree" > /dev/null
status=$?
case "$status" in
    0|1) ;;
    *) echo "trace_smoke.sh: FAIL (audit exit $status)" >&2; exit 1;;
esac

if [ ! -s "$trace" ]; then
    echo "trace_smoke.sh: FAIL (no trace written)" >&2
    exit 1
fi

# Well-formed JSON lines: every line is one object tagged with a type,
# and line 1 is the meta record.
if grep -qv '^{"type":.*}$' "$trace"; then
    echo "trace_smoke.sh: FAIL (malformed trace line)" >&2
    grep -v '^{"type":.*}$' "$trace" | head -3 >&2
    exit 1
fi
if ! head -1 "$trace" | grep -q '^{"type":"meta"'; then
    echo "trace_smoke.sh: FAIL (first line is not the meta record)" >&2
    exit 1
fi

# Every pipeline stage left spans: CLI-level scan/cache, the audit's
# sequential stages, the per-unit fan-out, and feasibility.
for stage in scan cache.load cache.save hash parse parse.unit export \
    export.unit merge.kb merge.progdb check check.unit feasibility report; do
    if ! grep -q "\"stage\":\"$stage\"" "$trace"; then
        echo "trace_smoke.sh: FAIL (stage $stage missing from trace)" >&2
        exit 1
    fi
done

# The cold cached run records a miss counter per unit.
if ! grep -q '"name":"cache.parse.miss"' "$trace"; then
    echo "trace_smoke.sh: FAIL (cache counters missing)" >&2
    exit 1
fi

spans=$(grep -c '"type":"span"' "$trace")
echo "trace_smoke.sh: PASS ($spans spans)"

#!/usr/bin/env bash
# Chaos smoke run: generate a corrupted synthetic tree, audit it in
# strict mode, and check the process degrades instead of crashing.
#
# Env:
#   CHAOSGEN_BIN / REFMINER_BIN  prebuilt binaries; default `cargo run`
#   CHAOS_SEED                   chaos seed (default 0xC4A05 in chaosgen)
set -u

here="$(cd "$(dirname "$0")/.." && pwd)"
outdir="$(mktemp -d "${TMPDIR:-/tmp}/refminer-chaos.XXXXXX")"
trap 'rm -rf "$outdir"' EXIT

chaosgen() {
    if [ -n "${CHAOSGEN_BIN:-}" ]; then
        "$CHAOSGEN_BIN" "$@"
    else
        cargo run --quiet --manifest-path "$here/Cargo.toml" -p refminer --bin chaosgen -- "$@"
    fi
}

refminer() {
    if [ -n "${REFMINER_BIN:-}" ]; then
        "$REFMINER_BIN" "$@"
    else
        cargo run --quiet --manifest-path "$here/Cargo.toml" -p refminer --bin refminer -- "$@"
    fi
}

seed_args=()
if [ -n "${CHAOS_SEED:-}" ]; then
    seed_args=(--seed "$CHAOS_SEED")
fi

chaosgen "${seed_args[@]}" --ratio 0.4 "$outdir" || {
    echo "chaos.sh: chaosgen failed" >&2
    exit 1
}

refminer --strict --stats "$outdir"
status=$?

# A corrupted tree must end in a controlled exit: findings (1) or a
# strict-mode diagnostic failure (3). Crashes (codes >= 128) and scan
# errors (2) mean the fault boundary leaked.
case "$status" in
    1|3) echo "chaos.sh: PASS (exit $status)";;
    *)   echo "chaos.sh: FAIL (exit $status)" >&2; exit 1;;
esac

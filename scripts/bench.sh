#!/usr/bin/env bash
# Pipeline benchmark smoke run: audit a synthetic tree cold/warm and at
# jobs in {1, N}, write BENCH_pipeline.json, and enforce the speedup
# gates (warm >= 5x always; parallel >= 2x only on machines with at
# least four hardware threads).
#
# Env:
#   BENCHPIPE_BIN   prebuilt binary; default `cargo run --release`
#   BENCH_SCALE     tree scale factor (default 1.0, ~350 files)
#   BENCH_JOBS      worker count for the parallel runs (default: CPUs)
#   BENCH_OUT       report path (default BENCH_pipeline.json)
set -u

here="$(cd "$(dirname "$0")/.." && pwd)"
out="${BENCH_OUT:-$here/BENCH_pipeline.json}"

benchpipe() {
    if [ -n "${BENCHPIPE_BIN:-}" ]; then
        "$BENCHPIPE_BIN" "$@"
    else
        cargo run --quiet --release --manifest-path "$here/Cargo.toml" \
            -p refminer --bin benchpipe -- "$@"
    fi
}

args=(--check --out "$out" --scale "${BENCH_SCALE:-1.0}")
if [ -n "${BENCH_JOBS:-}" ]; then
    args+=(--jobs "$BENCH_JOBS")
fi

if ! benchpipe "${args[@]}"; then
    echo "bench.sh: FAIL" >&2
    exit 1
fi

# Surface the schema-2 phase split and summary-cache hit rate from the
# report; the keys appear exactly once at the top level.
top_key() {
    sed -n "s/^ *\"$1\": *\([0-9.eE+-]*\),*$/\1/p" "$out" | head -n 1
}
echo "bench.sh: cold phases $(top_key cold_phase1_secs)s parse+export + $(top_key cold_phase2_secs)s check"
echo "bench.sh: warm summary-cache hit rate $(top_key summary_hit_rate)"
echo "bench.sh: PASS ($out)"

#!/usr/bin/env bash
# Pipeline benchmark smoke run: audit a synthetic tree cold/warm and at
# jobs in {1, N}, write BENCH_pipeline.json, and enforce the speedup
# gates (warm >= 5x always; parallel >= 2x only on machines with at
# least four hardware threads — below that benchpipe prints an explicit
# SKIP and records parallel_gate="skipped" in the report).
#
# A second run in `--eval` mode scores the checkers against an FP-trap
# tree and regresses the corpus F1 against the committed baseline
# below: the run fails unless feasibility pruning still improves
# precision on >= 2 anti-patterns with zero recall loss and the total
# F1 stays at or above the baseline.
#
# Env:
#   BENCHPIPE_BIN    prebuilt binary; default `cargo run --release`
#   BENCH_SCALE      tree scale factor (default 1.0, ~350 files)
#   BENCH_JOBS       worker count for the parallel runs (default: CPUs)
#   BENCH_OUT        report path (default BENCH_pipeline.json)
#   BENCH_EVAL_SCALE eval-tree scale factor (default 0.2)
#   BENCH_EVAL_OUT   eval report path (default BENCH_eval.json)
set -u

here="$(cd "$(dirname "$0")/.." && pwd)"
out="${BENCH_OUT:-$here/BENCH_pipeline.json}"
eval_out="${BENCH_EVAL_OUT:-$here/BENCH_eval.json}"

# Committed baseline: total F1 of the feasibility-on run on the
# default eval tree. Update deliberately, never to paper over a
# regression.
eval_f1_baseline=0.99

benchpipe() {
    if [ -n "${BENCHPIPE_BIN:-}" ]; then
        "$BENCHPIPE_BIN" "$@"
    else
        cargo run --quiet --release --manifest-path "$here/Cargo.toml" \
            -p refminer --bin benchpipe -- "$@"
    fi
}

args=(--check --out "$out" --scale "${BENCH_SCALE:-1.0}")
if [ -n "${BENCH_JOBS:-}" ]; then
    args+=(--jobs "$BENCH_JOBS")
fi

if ! benchpipe "${args[@]}"; then
    echo "bench.sh: FAIL" >&2
    exit 1
fi

# Surface the schema-2 phase split and summary-cache hit rate from the
# report; the keys appear exactly once at the top level.
top_key() {
    sed -n "s/^ *\"$1\": *\([0-9.eE+-]*\),*$/\1/p" "$out" | head -n 1
}
echo "bench.sh: cold phases $(top_key cold_phase1_secs)s parse+export + $(top_key cold_phase2_secs)s check"
echo "bench.sh: warm summary-cache hit rate $(top_key summary_hit_rate)"

# Precision/recall regression gate against the committed F1 baseline.
eval_args=(--eval --check --baseline "$eval_f1_baseline" \
    --out "$eval_out" --scale "${BENCH_EVAL_SCALE:-0.2}")
if [ -n "${BENCH_JOBS:-}" ]; then
    eval_args+=(--jobs "$BENCH_JOBS")
fi
if ! benchpipe "${eval_args[@]}"; then
    echo "bench.sh: FAIL (eval gate)" >&2
    exit 1
fi
eval_top_key() {
    sed -n "s/^ *\"$1\": *\([0-9.eE+-]*\),*$/\1/p" "$eval_out" | head -n 1
}
echo "bench.sh: eval F1 $(eval_top_key f1_off) -> $(eval_top_key f1_on) with feasibility, $(eval_top_key patterns_improved) pattern(s) improved"
echo "bench.sh: PASS ($out, $eval_out)"

#!/usr/bin/env bash
# Pipeline benchmark smoke run: audit a synthetic tree cold/warm over
# the {1, 2, 4, N} worker ladder, write BENCH_pipeline.json (schema 6),
# and enforce the speedup gates (warm >= 5x always; parallel >= 2x and
# streaming-beats-barrier only on machines with at least four hardware
# threads; binary cache load >= 3x vs JSON only on >= 1000-file trees —
# everywhere else benchpipe prints an explicit SKIP and records the
# gate as "skipped" in the report).
#
# A second run in `--eval` mode scores the two-engine audit against an
# FP-trap tree and regresses the corpus F1 against the committed
# baseline below: the run fails unless feasibility pruning still
# improves precision on >= 2 anti-patterns with zero recall loss, the
# combined two-engine F1 is no worse than the template-only run's, and
# the combined F1 stays at or above the baseline.
#
# With BENCH_BIG=1, a third run audits the kernel-scale replicated
# corpus (~10k files / ~1 MLoC with the default replica count). At that
# size the binary >= 3x load gate is always enforced, and on >= 4-core
# hosts so is the streaming-beats-barrier cold-path gate.
#
# Env:
#   BENCHPIPE_BIN    prebuilt binary; default `cargo run --release`
#   BENCH_SCALE      tree scale factor (default 1.0, ~350 files)
#   BENCH_JOBS       worker count for the parallel runs (default: CPUs)
#   BENCH_OUT        report path (default BENCH_pipeline.json)
#   BENCH_EVAL_SCALE eval-tree scale factor (default 0.2)
#   BENCH_EVAL_OUT   eval report path (default BENCH_eval.json)
#   BENCH_BIG        1 = also run the kernel-scale corpus gates
#   BENCH_REPLICAS   replica count for the big run (default 100)
#   BENCH_BIG_OUT    big-run report path (default BENCH_OUT, i.e. the
#                    big run's numbers replace the smoke run's)
set -u

here="$(cd "$(dirname "$0")/.." && pwd)"
out="${BENCH_OUT:-$here/BENCH_pipeline.json}"
eval_out="${BENCH_EVAL_OUT:-$here/BENCH_eval.json}"

# Committed baseline: total F1 of the template-only feasibility-on
# run on the default eval tree. The combined two-engine run must meet
# it — the delta engine has to pay for its recall without costing
# precision. Update deliberately, never to paper over a regression.
eval_f1_baseline=0.99

benchpipe() {
    if [ -n "${BENCHPIPE_BIN:-}" ]; then
        "$BENCHPIPE_BIN" "$@"
    else
        cargo run --quiet --release --manifest-path "$here/Cargo.toml" \
            -p refminer --bin benchpipe -- "$@"
    fi
}

args=(--check --out "$out" --scale "${BENCH_SCALE:-1.0}")
if [ -n "${BENCH_JOBS:-}" ]; then
    args+=(--jobs "$BENCH_JOBS")
fi

if ! benchpipe "${args[@]}"; then
    echo "bench.sh: FAIL" >&2
    exit 1
fi

# Surface the phase split, cache hit rate, and the schema-6 format
# comparison from the report; the keys appear exactly once at the top
# level.
top_key() {
    sed -n "s/^ *\"$1\": *\([0-9.eE+-]*\),*$/\1/p" "$out" | head -n 1
}
echo "bench.sh: cold phases $(top_key cold_phase1_secs)s parse + $(top_key cold_phase2_secs)s export+check"
echo "bench.sh: warm summary-cache hit rate $(top_key summary_hit_rate)"
echo "bench.sh: binary-vs-JSON warm cache load $(top_key warm_load_speedup)x"

# Precision/recall regression gate against the committed F1 baseline.
eval_args=(--eval --check --baseline "$eval_f1_baseline" \
    --out "$eval_out" --scale "${BENCH_EVAL_SCALE:-0.2}")
if [ -n "${BENCH_JOBS:-}" ]; then
    eval_args+=(--jobs "$BENCH_JOBS")
fi
if ! benchpipe "${eval_args[@]}"; then
    echo "bench.sh: FAIL (eval gate)" >&2
    exit 1
fi
eval_top_key() {
    sed -n "s/^ *\"$1\": *\([0-9.eE+-]*\),*$/\1/p" "$eval_out" | head -n 1
}
echo "bench.sh: eval F1 $(eval_top_key f1_off) -> $(eval_top_key f1_on) with feasibility, $(eval_top_key patterns_improved) pattern(s) improved"
echo "bench.sh: combined two-engine F1 $(eval_top_key f1_combined) vs template-only $(eval_top_key f1_template_only)"

# Kernel-scale corpus gates: the ~10k-file replicated tree, where the
# binary >= 3x load gate always applies (and the streaming cold-path
# gate applies on >= 4-core hosts). One rep — a cold MLoC audit per
# ladder rung is the expensive part, and the gates compare medians of
# seconds, not microseconds.
if [ "${BENCH_BIG:-0}" = "1" ]; then
    big_out="${BENCH_BIG_OUT:-$out}"
    big_args=(--big --replicas "${BENCH_REPLICAS:-100}" --reps 1 \
        --check --out "$big_out")
    if [ -n "${BENCH_JOBS:-}" ]; then
        big_args+=(--jobs "$BENCH_JOBS")
    fi
    if ! benchpipe "${big_args[@]}"; then
        echo "bench.sh: FAIL (big-corpus gate)" >&2
        exit 1
    fi
    big_key() {
        sed -n "s/^ *\"$1\": *\([0-9.eE+-]*\),*$/\1/p" "$big_out" | head -n 1
    }
    echo "bench.sh: big corpus $(big_key files) files, binary-vs-JSON load $(big_key warm_load_speedup)x"
fi

echo "bench.sh: PASS ($out, $eval_out)"

#!/usr/bin/env bash
# Fixcheck smoke run: generate a simulated fix history with histgen,
# then hand each commit's unified diff (plain GNU `diff -ru` output,
# exactly what a CI bot would capture from a patch) to
# `refminer fixcheck` against the post-commit tree, verifying that
#
#   1. every partial-fix commit exits 1 and names at least one
#      left-unfixed sibling from the same clone group;
#   2. the neutral refactor commit exits 0 with nothing fixed, nothing
#      introduced, nothing left behind;
#   3. the JSONL bytes are identical across `--jobs` settings and cache
#      temperature (warm shared cache vs cold cache-less run);
#   4. a malformed diff exits 2 with a diagnostic, not a panic.
#
# Env:
#   REFMINER_BIN  prebuilt refminer binary; default `cargo run`
#   HISTGEN_BIN   prebuilt histgen binary; default `cargo run`
set -u

here="$(cd "$(dirname "$0")/.." && pwd)"
outdir="$(mktemp -d "${TMPDIR:-/tmp}/refminer-fixcheck.XXXXXX")"
trap 'rm -rf "$outdir"' EXIT

refminer() {
    if [ -n "${REFMINER_BIN:-}" ]; then
        "$REFMINER_BIN" "$@"
    else
        cargo run --quiet --manifest-path "$here/Cargo.toml" -p refminer --bin refminer -- "$@"
    fi
}

histgen() {
    if [ -n "${HISTGEN_BIN:-}" ]; then
        "$HISTGEN_BIN" "$@"
    else
        cargo run --quiet --manifest-path "$here/Cargo.toml" -p refminer --bin histgen -- "$@"
    fi
}

fail() {
    echo "fixcheck_smoke.sh: FAIL ($1)" >&2
    exit 1
}

hist="$outdir/hist"
histgen --seed 23 --scale 0.05 --clone-groups 2 "$hist" > /dev/null \
    || fail "histgen"
[ -f "$hist/history.json" ] || fail "histgen wrote no history.json"

revs=$(cd "$hist" && ls -d rev?? | sort)
[ -n "$revs" ] || fail "histgen wrote no revisions"

cache="$outdir/cache"
prev=""
commit=0
fix_commits=0
neutral_commits=0
for rev in $revs; do
    cur="$hist/$rev"
    if [ -z "$prev" ]; then
        prev="$cur"
        continue
    fi
    commit=$((commit + 1))

    # The real-world artifact: a recursive GNU diff between snapshots.
    # (Exit 1 just means "files differ".)
    diff -ru "$prev" "$cur" > "$outdir/fix.patch" || true
    [ -s "$outdir/fix.patch" ] || fail "commit $commit: empty diff"

    refminer fixcheck --json --jobs 1 --cache-dir "$cache" \
        "$cur" "$outdir/fix.patch" > "$outdir/fc_warm.jsonl"
    warm_status=$?
    refminer fixcheck --json --jobs 4 "$cur" "$outdir/fix.patch" \
        > "$outdir/fc_cold.jsonl"
    cold_status=$?
    [ "$warm_status" -eq "$cold_status" ] \
        || fail "commit $commit: exit codes differ across jobs/cache"
    cmp -s "$outdir/fc_warm.jsonl" "$outdir/fc_cold.jsonl" \
        || fail "commit $commit: fixcheck bytes differ across jobs/cache temperature"

    # The groups this commit repaired, per the generator's ground truth.
    groups=$(python3 - "$hist/history.json" "$rev" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for rev in doc["revisions"]:
    if rev["dir"] == sys.argv[2]:
        print(" ".join(sorted({f["group"] for f in rev["fixed"]})))
EOF
)
    if [ -n "$groups" ]; then
        fix_commits=$((fix_commits + 1))
        [ "$warm_status" -eq 1 ] \
            || fail "commit $commit: partial fix must exit 1 (got $warm_status)"
        grep -q '"fixcheck":"fixed"' "$outdir/fc_warm.jsonl" \
            || fail "commit $commit: fixed finding not reported"
        # Every repaired group must have an incomplete report naming a
        # *different* member of the group — a sibling, not the fixed
        # site itself.
        python3 - "$hist/history.json" "$rev" "$outdir/fc_warm.jsonl" <<'EOF' \
            || fail "commit $commit: no left-unfixed sibling reported"
import json, sys
doc = json.load(open(sys.argv[1]))
rev = next(r for r in doc["revisions"] if r["dir"] == sys.argv[2])
incompletes = [json.loads(l) for l in open(sys.argv[3]) if '"fixcheck":"incomplete"' in l]
for f in rev["fixed"]:
    group, fixed_file = f["group"], f["path"].rsplit("/", 1)[-1]
    siblings = [
        i for i in incompletes
        if group + "_" in i["line"] and fixed_file not in i["line"]
    ]
    assert siblings, f"group {group}: fixed {fixed_file} but no sibling reported"
EOF
    else
        neutral_commits=$((neutral_commits + 1))
        [ "$warm_status" -eq 0 ] \
            || fail "commit $commit: neutral diff must be clean (got $warm_status)"
        grep -q '"fixcheck":"fixed"' "$outdir/fc_warm.jsonl" \
            && fail "commit $commit: neutral diff reported a fix"
        grep -q '"fixcheck":"incomplete"' "$outdir/fc_warm.jsonl" \
            && fail "commit $commit: neutral diff reported incompletes"
    fi
    prev="$cur"
done

[ "$fix_commits" -gt 0 ] || fail "no fix commits replayed"
[ "$neutral_commits" -gt 0 ] || fail "no neutral commit replayed"

# Malformed input must be a diagnostic, never a panic.
echo "this is not a diff" > "$outdir/garbage.patch"
refminer fixcheck "$hist/rev01" "$outdir/garbage.patch" \
    > /dev/null 2> "$outdir/garbage.err"
[ $? -eq 2 ] || fail "malformed diff must exit 2"
grep -q "refminer fixcheck:" "$outdir/garbage.err" \
    || fail "malformed diff produced no diagnostic"

echo "fixcheck_smoke.sh: PASS ($commit commits, $fix_commits partial fixes \
caught, $neutral_commits neutral)"

//! Semantic similarity: train the from-scratch CBOW word2vec on the
//! simulated commit logs and explore the keyword space of Table 3 —
//! why "find"-named APIs hide refcounting from developers.
//!
//! ```sh
//! cargo run --release --example semantic_similarity
//! ```

use refminer::corpus::{generate_history, HistoryConfig};
use refminer::w2v::{W2vConfig, Word2Vec};

fn main() {
    let history = generate_history(&HistoryConfig {
        n_bugs: 600,
        n_noise: 300,
        n_reverts: 6,
        n_neutral: 6_000,
        ..Default::default()
    });
    let corpus: String = history
        .commits
        .iter()
        .map(|c| {
            format!(
                "{} {}",
                c.message.replace('\n', " "),
                c.diff.replace('\n', " ")
            )
        })
        .collect::<Vec<_>>()
        .join("\n");
    let cfg = W2vConfig {
        dim: 48,
        window: 6,
        epochs: 6,
        min_count: 3,
        subsample: 5e-3,
        ..Default::default()
    };
    println!("training CBOW on {} commits ...", history.commits.len());
    let model = Word2Vec::train_text(&corpus, &cfg);
    println!("vocabulary: {} words\n", model.vocab().len());

    for word in ["find", "put", "get", "foreach", "leak"] {
        let neighbours = model.most_similar(word, 6);
        let pretty: Vec<String> = neighbours
            .iter()
            .map(|(w, s)| format!("{w} ({s:.2})"))
            .collect();
        println!("{word:<8} ≈ {}", pretty.join(", "));
    }

    let analogy = model.analogy("get", "put", "hold", 3);
    let pretty: Vec<String> = analogy
        .iter()
        .map(|(w, s)| format!("{w} ({s:.2})"))
        .collect();
    println!("\nget - put + hold ≈ {}", pretty.join(", "));

    println!(
        "\nthe hidden-refcounting story (§5.2): find~put = {:?}, foreach~put = {:?} — \
         iteration and lookup keywords sit measurably apart from the \
         refcounting vocabulary, which is why developers miss the pairing.",
        model.similarity("find", "put"),
        model.similarity("foreach", "put"),
    );
}

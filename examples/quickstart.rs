//! Quickstart: audit a buggy C snippet with the nine anti-pattern
//! checkers and print the findings.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use refminer::{audit, AuditConfig, Project};

const DRIVER: &str = r#"
// A little platform driver with three classic refcounting bugs.
#include <linux/of.h>

static int demo_probe(struct platform_device *pdev)
{
        /* Bug 1 (P1): pm_runtime_get_sync() increments the usage
         * counter even when it fails; the early return leaks it. */
        int ret = pm_runtime_get_sync(pdev->dev.parent);
        if (ret < 0)
                return ret;

        /* Bug 2 (P4): the node returned by of_find_node_by_name()
         * carries a hidden reference that nobody ever drops. */
        struct device_node *np = of_find_node_by_name(NULL, "codec");
        if (!np)
                goto out;
        configure_codec(np);

out:
        pm_runtime_put(pdev->dev.parent);
        return 0;
}

static void demo_unhash(struct sock *sk)
{
        /* Bug 3 (P8): sk is dereferenced after the put may have
         * dropped the last reference (use-after-decrease). */
        sock_put(sk);
        sk->sk_state = 0;
}
"#;

fn main() {
    let project = Project::from_sources(vec![(
        "drivers/demo/demo.c".to_string(),
        DRIVER.to_string(),
    )]);
    let report = audit(&project, &AuditConfig::default());

    println!(
        "scanned {} file(s), {} function(s), {} line(s)\n",
        report.files, report.functions, report.lines
    );
    for finding in &report.findings {
        println!("{finding}");
        println!(
            "    anti-pattern {} ({}), template: {}",
            finding.pattern,
            finding.pattern.root_cause(),
            finding.pattern.template_text()
        );
    }
    assert_eq!(report.findings.len(), 3, "the demo has exactly three bugs");
    println!("\nall three planted bugs found.");
}

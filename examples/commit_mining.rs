//! Commit mining: run the paper's two-level filtering over the
//! simulated 2005–2022 history, classify the confirmed bugs into the
//! Table 2 taxonomy, and print the headline findings.
//!
//! ```sh
//! cargo run --example commit_mining
//! ```

use refminer::corpus::{generate_history, HistoryConfig};
use refminer::dataset::{classify_history, mine, DistributionStats, ImpactStats, LifetimeStats};
use refminer::rcapi::ApiKb;

fn main() {
    let history = generate_history(&HistoryConfig::default());
    println!("simulated history: {} commits", history.commits.len());

    let kb = ApiKb::builtin();
    let mined = mine(&history.commits, &kb);
    println!(
        "stage 1 candidates: {}; stage 2 confirmed: {}; wrong patches removed: {}",
        mined.candidates.len(),
        mined.confirmed.len(),
        mined.reverted.len()
    );

    let bugs = classify_history(&history.commits, &kb);
    let impacts = ImpactStats::compute(&bugs);
    println!(
        "\nFinding 1: {:.1}% of {} bugs lead to memory leaks (paper: 71.7% of 1,033)",
        impacts.pct(impacts.leaks),
        impacts.total
    );
    println!(
        "Finding 2: {:.1}% lead to use-after-free (paper: 28.3%)",
        impacts.pct(impacts.uafs)
    );

    let dist = DistributionStats::compute(&bugs);
    println!(
        "Finding 3: top-3 subsystems hold {:.1}% (paper: 82.4%); densest: {}",
        100.0 * dist.top_share(3),
        dist.density.first().map(|(s, _)| s.as_str()).unwrap_or("?")
    );

    let life = LifetimeStats::compute(&bugs);
    println!(
        "Finding 4: {}/{} tagged bugs needed more than a year (paper: 429/567)",
        life.over_one_year, life.tagged
    );
    println!(
        "Finding 5: {} bugs span v2.6 → v5/v6 (paper: 23); {} lived >10 years (paper: 19)",
        life.ancient, life.over_ten_years
    );
}

//! Kernel-scale audit: generate the synthetic "latest release" tree
//! (the paper's Table 4/5 substrate), write it to a temp directory,
//! scan it back from disk, run all nine checkers, and evaluate the
//! findings against the injection ground truth.
//!
//! ```sh
//! cargo run --example kernel_audit            # full 351-bug plan
//! cargo run --example kernel_audit -- --quick # ~10% scale
//! ```

use refminer::corpus::{generate_tree, TreeConfig};
use refminer::dataset::triage;
use refminer::report::Table;
use refminer::{audit, AuditConfig, Project};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let tree = generate_tree(&TreeConfig {
        scale: if quick { 0.1 } else { 1.0 },
        ..Default::default()
    });

    // Round-trip through the filesystem to exercise the scanner.
    let dir = std::env::temp_dir().join(format!("refminer_audit_{}", std::process::id()));
    tree.write_to(&dir).expect("write tree");
    println!(
        "generated {} files / {} lines into {}",
        tree.files.len(),
        tree.total_lines(),
        dir.display()
    );

    let project = Project::scan(&dir).expect("scan tree");
    let report = audit(&project, &AuditConfig::default());
    println!(
        "audited {} functions; knowledge base holds {} APIs ({} smartloops)",
        report.functions,
        report.kb.len(),
        report.kb.smartloops().count()
    );

    let t = triage(&report.findings, &tree.manifest);
    let mut table = Table::new(vec!["Pattern", "Findings"]).numeric();
    for (pattern, count) in report.by_pattern() {
        table.row(vec![
            format!("{pattern} ({})", pattern.root_cause()),
            count.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nagainst ground truth: recall {:.3}, precision {:.3} ({} injected bugs, {} findings)",
        t.recall(&tree.manifest),
        t.precision(),
        tree.manifest.bugs.len(),
        report.findings.len()
    );

    std::fs::remove_dir_all(&dir).ok();
}
